//! A small deterministic property-test harness.
//!
//! Replaces the external `proptest` dev-dependency (hermetic build: no
//! registry crates). Each property runs a fixed number of cases; every
//! case gets a fresh `SmallRng` whose seed is derived from the property
//! name and the case index, so failures are reproducible bit-for-bit on
//! any machine — there is no shrinking, but the failure report names the
//! case index and seed, and `check_seed` replays a single case under a
//! debugger.
//!
//! ```no_run
//! use gs_tests::prop::{check, Gen};
//!
//! check("addition_commutes", 256, |g| {
//!     let (a, b) = (g.u64(0..1000), g.u64(0..1000));
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default case count, matching the `ProptestConfig` the replaced suites
/// used most often.
pub const DEFAULT_CASES: usize = 256;

/// Per-case random source with ergonomic draw helpers. `Deref`s to the
/// underlying [`SmallRng`], so `rand::Rng` methods work directly too.
pub struct Gen {
    rng: SmallRng,
}

impl Gen {
    /// Uniform `u8` in `range`.
    pub fn u8(&mut self, range: std::ops::Range<u8>) -> u8 {
        self.rng.gen_range(range)
    }

    /// Uniform `u16` in `range`.
    pub fn u16(&mut self, range: std::ops::Range<u16>) -> u16 {
        self.rng.gen_range(range)
    }

    /// Uniform `u32` in `range`.
    pub fn u32(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.rng.gen_range(range)
    }

    /// Uniform `u64` in `range`.
    pub fn u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        self.rng.gen_range(range)
    }

    /// Uniform `usize` in `range`.
    pub fn usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.rng.gen_range(range)
    }

    /// A value over the whole domain (`any::<T>()` equivalent).
    pub fn any<T: rand::Standard>(&mut self) -> T {
        self.rng.gen()
    }

    /// `true` with probability 1/2.
    pub fn bool(&mut self) -> bool {
        self.rng.gen()
    }

    /// A `Vec` with length drawn from `len` and elements from `f`
    /// (`proptest::collection::vec` equivalent).
    pub fn vec_with<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// A `Vec<u8>` of arbitrary bytes with length drawn from `len`.
    pub fn bytes(&mut self, len: std::ops::Range<usize>) -> Vec<u8> {
        self.vec_with(len, |g| g.any())
    }

    /// One uniformly chosen element of `options`.
    pub fn choice<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.rng.gen_range(0..options.len())]
    }

    /// A string of `len` characters drawn uniformly from `alphabet`.
    pub fn string_of(&mut self, alphabet: &[u8], len: std::ops::Range<usize>) -> String {
        let n = self.usize(len);
        (0..n).map(|_| *self.choice(alphabet) as char).collect()
    }

    /// `Some(f(..))` with probability 1/2 (`proptest::option::of`).
    pub fn option<T>(&mut self, mut f: impl FnMut(&mut Gen) -> T) -> Option<T> {
        if self.bool() {
            Some(f(self))
        } else {
            None
        }
    }

    /// The raw generator, for `rand::Rng` calls the helpers don't cover.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// Stable 64-bit FNV-1a over the property name: case seeds must not move
/// when unrelated properties are added or reordered.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The seed for one case of one property.
pub fn case_seed(name: &str, case: usize) -> u64 {
    fnv1a(name) ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Run `cases` deterministic cases of property `f`; panics with the
/// property name, case index, and replay seed on the first failure.
pub fn check(name: &str, cases: usize, mut f: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let seed = case_seed(name, case);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut g = Gen { rng: SmallRng::seed_from_u64(seed) };
            f(&mut g);
        }));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property `{name}` failed at case {case}/{cases} \
                 (replay: gs_tests::prop::check_seed({seed:#018x}, ..)):\n{msg}"
            );
        }
    }
}

/// Replay a single case from a seed reported by [`check`].
pub fn check_seed(seed: u64, mut f: impl FnMut(&mut Gen)) {
    let mut g = Gen { rng: SmallRng::seed_from_u64(seed) };
    f(&mut g);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(case_seed("p", 3), case_seed("p", 3));
        assert_ne!(case_seed("p", 3), case_seed("p", 4));
        assert_ne!(case_seed("p", 3), case_seed("q", 3));
    }

    #[test]
    fn failure_reports_name_case_and_seed() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            check("always_fails", 5, |_| panic!("boom"));
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("case 0/5"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn cases_vary_and_replay_identically() {
        let mut first = Vec::new();
        check("varies", 10, |g| first.push(g.u64(0..1_000_000)));
        let mut second = Vec::new();
        check("varies", 10, |g| second.push(g.u64(0..1_000_000)));
        assert_eq!(first, second, "same property, same draws");
        first.dedup();
        assert!(first.len() > 5, "cases draw different values");
    }

    #[test]
    fn helpers_cover_domains() {
        check("helpers", 64, |g| {
            assert!(g.u8(1..5) < 5);
            let v = g.vec_with(0..4, |g| g.u16(0..10));
            assert!(v.len() < 4);
            let s = g.string_of(b"ab", 1..4);
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
            let _ = g.option(|g| g.bool());
            let b = g.bytes(0..16);
            assert!(b.len() < 16);
        });
    }
}
