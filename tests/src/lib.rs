//! Shared helpers for the cross-crate integration tests: straightforward
//! *oracle* implementations the engine's output is compared against, and a
//! reference backtracking regex matcher for property tests.

use gs_packet::{CapPacket, PacketView};
use std::collections::BTreeMap;

pub mod daemon;
pub mod prop;

/// Oracle: per-second counts of TCP packets to `port`, computed by direct
/// iteration (no query engine involved).
pub fn oracle_port_counts(pkts: &[CapPacket], port: u16) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    for p in pkts {
        let v = PacketView::parse(p.clone());
        if v.tcp().is_some_and(|t| t.dst_port == port) {
            *out.entry(u64::from(p.time_sec())).or_insert(0) += 1;
        }
    }
    out
}

/// Oracle: per-second `(count, byte sum)` of TCP packets to `port`.
pub fn oracle_port_count_bytes(pkts: &[CapPacket], port: u16) -> BTreeMap<u64, (u64, u64)> {
    let mut out: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for p in pkts {
        let v = PacketView::parse(p.clone());
        if v.tcp().is_some_and(|t| t.dst_port == port) {
            let e = out.entry(u64::from(p.time_sec())).or_insert((0, 0));
            e.0 += 1;
            e.1 += u64::from(p.wire_len);
        }
    }
    out
}

/// Oracle: per-(second, srcIP) packet counts over IPv4 traffic.
pub fn oracle_src_counts(pkts: &[CapPacket]) -> BTreeMap<(u64, u32), u64> {
    let mut out = BTreeMap::new();
    for p in pkts {
        let v = PacketView::parse(p.clone());
        if let Some(ih) = v.ipv4() {
            *out.entry((u64::from(p.time_sec()), ih.src)).or_insert(0) += 1;
        }
    }
    out
}

/// Reference regex matcher: a transparent exponential backtracker over the
/// same restricted syntax subset used by the property tests (literals,
/// `.`, `*`, `?`, `|`, groups, `^`/`$`). Slow but obviously correct.
pub fn backtrack_match(pattern: &str, hay: &[u8]) -> bool {
    let pat: Vec<char> = pattern.chars().collect();
    let (anchored_start, pat) = match pat.split_first() {
        Some(('^', rest)) => (true, rest.to_vec()),
        _ => (false, pat),
    };
    let (anchored_end, pat) = match pat.split_last() {
        Some(('$', rest)) => (true, rest.to_vec()),
        _ => (false, pat),
    };
    let starts: Vec<usize> = if anchored_start { vec![0] } else { (0..=hay.len()).collect() };
    for s in starts {
        let mut ends = Vec::new();
        alt_ends(&pat, 0, pat.len(), hay, s, &mut ends);
        if ends.iter().any(|&e| !anchored_end || e == hay.len()) {
            return true;
        }
    }
    false
}

/// All `hay` positions reachable by matching `pat[lo..hi]` starting at `at`
/// (top-level alternation).
fn alt_ends(pat: &[char], lo: usize, hi: usize, hay: &[u8], at: usize, out: &mut Vec<usize>) {
    // Split on top-level `|`.
    let mut depth = 0usize;
    let mut start = lo;
    let mut branches = Vec::new();
    let mut i = lo;
    while i < hi {
        match pat[i] {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            '|' if depth == 0 => {
                branches.push((start, i));
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    branches.push((start, hi));
    for (blo, bhi) in branches {
        concat_ends(pat, blo, bhi, hay, at, out);
    }
}

fn concat_ends(pat: &[char], lo: usize, hi: usize, hay: &[u8], at: usize, out: &mut Vec<usize>) {
    if lo >= hi {
        out.push(at);
        return;
    }
    // Parse one atom.
    let (atom_lo, atom_hi, next) = match pat[lo] {
        '(' => {
            let mut depth = 1;
            let mut j = lo + 1;
            while j < hi && depth > 0 {
                match pat[j] {
                    '(' => depth += 1,
                    ')' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            (lo + 1, j - 1, j)
        }
        _ => (lo, lo + 1, lo + 1),
    };
    let (op, rest) = if next < hi && (pat[next] == '*' || pat[next] == '?') {
        (Some(pat[next]), next + 1)
    } else {
        (None, next)
    };

    let one = |at: usize, out: &mut Vec<usize>| {
        if atom_hi - atom_lo == 1 && pat[atom_lo] != '(' {
            let c = pat[atom_lo];
            if at < hay.len() && (c == '.' && hay[at] != b'\n' || c as u32 == u32::from(hay[at])) {
                out.push(at + 1);
            }
        } else {
            alt_ends(pat, atom_lo, atom_hi, hay, at, out);
        }
    };

    let mut mids: Vec<usize> = Vec::new();
    match op {
        None => one(at, &mut mids),
        Some('?') => {
            mids.push(at);
            one(at, &mut mids);
        }
        Some('*') => {
            // Reachability closure: zero or more atom applications.
            let mut seen = vec![at];
            let mut frontier = vec![at];
            while let Some(p) = frontier.pop() {
                let mut next_pos = Vec::new();
                one(p, &mut next_pos);
                for n in next_pos {
                    if !seen.contains(&n) {
                        seen.push(n);
                        frontier.push(n);
                    }
                }
            }
            mids = seen;
        }
        _ => unreachable!(),
    }
    mids.sort_unstable();
    mids.dedup();
    for m in mids {
        concat_ends(pat, rest, hi, hay, m, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backtracker_basics() {
        assert!(backtrack_match("abc", b"xxabc"));
        assert!(!backtrack_match("abc", b"ab"));
        assert!(backtrack_match("^ab", b"abc"));
        assert!(!backtrack_match("^ab", b"xab"));
        assert!(backtrack_match("bc$", b"abc"));
        assert!(!backtrack_match("bc$", b"bcd"));
        assert!(backtrack_match("a*b", b"b"));
        assert!(backtrack_match("a*b", b"aaab"));
        assert!(backtrack_match("a?b", b"ab"));
        assert!(backtrack_match("(ab)*c", b"ababc"));
        assert!(backtrack_match("cat|dog", b"hotdog"));
        assert!(!backtrack_match("^(cat|dog)$", b"cow"));
        assert!(backtrack_match("a.c", b"abc"));
        assert!(!backtrack_match("^a.c$", b"a\nc"));
    }

    #[test]
    fn oracle_counts_count() {
        use gs_packet::builder::FrameBuilder;
        use gs_packet::capture::LinkType;
        let pkts: Vec<CapPacket> = (0..10u64)
            .map(|i| {
                let f = FrameBuilder::tcp(1, 2, 9, if i % 2 == 0 { 80 } else { 25 })
                    .build_ethernet();
                CapPacket::full(i * 500_000_000, 0, LinkType::Ethernet, f)
            })
            .collect();
        let counts = oracle_port_counts(&pkts, 80);
        assert_eq!(counts.values().sum::<u64>(), 5);
    }
}
