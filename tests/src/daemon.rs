//! Shared helpers for the `gsqd` protocol test battery.
//!
//! The daemon's core invariant is *epoch equivalence*: the frames a
//! subscriber receives for epoch `k` must equal a one-shot
//! `run_threaded` over [`PacketSource::epoch_packets`]`(k)` with an
//! identically-configured system. These helpers build that one-shot
//! reference and normalize outputs for comparison (threaded runs
//! interleave producers, so cross-group emission order is not pinned —
//! rows compare as sorted multisets).

use gigascope::manager::run_threaded;
use gigascope::server::{DaemonConfig, PacketSource};
use gigascope::{Gigascope, Tuple};
use gs_packet::capture::LinkType;
use std::collections::HashMap;
use std::time::Duration;

/// A low-rate synthetic source that keeps per-epoch runs fast: ~20 ms
/// of mixed traffic per epoch, seeded per test case.
pub fn small_source(seed: u64) -> PacketSource {
    PacketSource::Synthetic { mbps: 20.0, epoch_ms: 20, seed }
}

/// A daemon config for tests: loopback auto-port, no pacing, the given
/// source.
pub fn test_config(source: PacketSource) -> DaemonConfig {
    DaemonConfig { source, epoch_gap_ms: 0, ..DaemonConfig::default() }
}

/// The read timeout used by every test client: long enough for a busy
/// CI machine, short enough that a daemon bug can't hang the suite.
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// One-shot reference: run `program` over epoch `epoch` of `source`
/// with the same engine knobs [`test_config`] uses (the
/// `Gigascope::new` defaults), returning each subscription's rows.
pub fn one_shot_epoch(
    program: &str,
    source: &PacketSource,
    epoch: u64,
    subscriptions: &[&str],
) -> HashMap<String, Vec<Tuple>> {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.add_program(program).expect("reference program must deploy");
    let out = run_threaded(&gs, source.epoch_packets(epoch).into_iter(), subscriptions)
        .expect("reference run must succeed");
    out.streams
}

/// Order-insensitive normal form of a row set.
pub fn norm(rows: &[Tuple]) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|t| t.to_string()).collect();
    v.sort();
    v
}
