//! Property: the threaded manager with batched transport computes the
//! same result as the deterministic synchronous engine, for every batch
//! size — including 1, which must reproduce item-at-a-time transport
//! exactly.
//!
//! Randomized query mixes (selection, split aggregation, two-interface
//! merge, and all three at once) over randomized packet traces; outputs
//! are compared under normalization (multiset of rows — the threaded run
//! interleaves producers, so cross-group emission order is not pinned).
//!
//! Runs on the in-repo deterministic harness ([`gs_tests::prop`]). Case
//! counts are modest: every case spawns the node/collector threads of up
//! to three concurrent runs.

use gigascope::manager::run_threaded;
use gigascope::{Gigascope, Tuple};
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use gs_tests::prop::{check, Gen};

/// Batch sizes under test: degenerate (item-at-a-time), tiny (forces
/// partial batches and mid-batch punctuation), and the default.
const BATCH_SIZES: [usize; 3] = [1, 3, 256];

struct Template {
    program: &'static str,
    subscriptions: &'static [&'static str],
}

const TEMPLATES: [Template; 4] = [
    // Pure selection: LFTA-only query, the capture loop is the producer.
    Template {
        program: "DEFINE { query_name sel; } \
                  Select time, len From eth0.tcp Where destPort = 80",
        subscriptions: &["sel"],
    },
    // Split aggregation over a named stream: LFTA projection feeds an
    // HFTA group-by through the batched channel.
    Template {
        program: "DEFINE { query_name raw; } Select time, len From eth0.tcp; \
                  DEFINE { query_name agg; } \
                  Select time, count(*), sum(len) From raw Group By time",
        subscriptions: &["agg"],
    },
    // Order-preserving merge of two interfaces.
    Template {
        program: "DEFINE { query_name a; } Select time From eth0.tcp; \
                  DEFINE { query_name b; } Select time From eth1.tcp; \
                  DEFINE { query_name m; } Merge a.time : b.time From a, b",
        subscriptions: &["m"],
    },
    // The mix: all of the above deployed at once, with the raw stream
    // fanned out to both its aggregate consumer and a subscription.
    Template {
        program: "DEFINE { query_name sel; } \
                  Select time, len From eth0.tcp Where destPort = 80; \
                  DEFINE { query_name raw; } Select time, len From eth0.tcp; \
                  DEFINE { query_name agg; } \
                  Select time, count(*), sum(len) From raw Group By time; \
                  DEFINE { query_name a; } Select time From eth0.tcp; \
                  DEFINE { query_name b; } Select time From eth1.tcp; \
                  DEFINE { query_name m; } Merge a.time : b.time From a, b",
        subscriptions: &["sel", "raw", "agg", "m"],
    },
];

fn system(batch: usize, program: &str) -> Gigascope {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.add_interface("eth1", 1, LinkType::Ethernet);
    gs.batch_size = batch;
    gs.add_program(program).unwrap();
    gs
}

/// A time-ordered trace with random inter-arrival gaps (multi-second
/// jumps exercise heartbeat flushes), interface choice, port mix, and
/// payload sizes.
fn trace(g: &mut Gen) -> Vec<CapPacket> {
    let n = g.usize(20..400);
    let mut ts_ns = 0u64;
    (0..n)
        .map(|i| {
            ts_ns += g.u64(0..3_000_000_000);
            let dport = *g.choice(&[80u16, 80, 443, 25]);
            let iface = g.u16(0..2);
            let payload = vec![0u8; g.usize(0..64)];
            let f = FrameBuilder::tcp(0x0a000000 + i as u32, 0xc0a80001, 1024, dport)
                .payload(&payload)
                .build_ethernet();
            CapPacket::full(ts_ns, iface, LinkType::Ethernet, f)
        })
        .collect()
}

/// Multiset normalization: every tuple as its row of uints, sorted.
fn norm(tuples: &[Tuple]) -> Vec<Vec<u64>> {
    let mut rows: Vec<Vec<u64>> = tuples
        .iter()
        .map(|t| t.values().iter().filter_map(|v| v.as_uint()).collect())
        .collect();
    rows.sort();
    rows
}

#[test]
fn threaded_batched_transport_matches_synchronous_engine() {
    check("manager_batch_equivalence", 24, |g| {
        let t = g.choice(&TEMPLATES);
        let pkts = trace(g);

        let gs = system(256, t.program);
        let sync_out = gs.run_capture(pkts.iter().cloned(), t.subscriptions).unwrap();

        for batch in BATCH_SIZES {
            let gs = system(batch, t.program);
            let thr_out = run_threaded(&gs, pkts.iter().cloned(), t.subscriptions).unwrap();
            assert_eq!(thr_out.packets, pkts.len() as u64);
            for name in t.subscriptions {
                assert_eq!(
                    norm(sync_out.stream(name)),
                    norm(thr_out.stream(name)),
                    "stream `{name}` diverged at batch size {batch}"
                );
            }
        }
    });
}

/// Columnar (SoA) transport is a pure representation change: for every
/// template and batch size, a threaded run with [`Gigascope::columnar`]
/// on produces the same multiset as the pre-columnar row transport
/// (`columnar = false`) and as the synchronous engine. Batch size 1
/// additionally pins byte-identical output — the columnar gate is off
/// there, so the run must reproduce item-at-a-time transport exactly.
#[test]
fn columnar_transport_matches_row_transport_and_sync() {
    check("manager_columnar_equivalence", 16, |g| {
        let t = g.choice(&TEMPLATES);
        let pkts = trace(g);

        let sync_out =
            system(256, t.program).run_capture(pkts.iter().cloned(), t.subscriptions).unwrap();

        for batch in BATCH_SIZES {
            let mut row_gs = system(batch, t.program);
            row_gs.columnar = false;
            let row_out = run_threaded(&row_gs, pkts.iter().cloned(), t.subscriptions).unwrap();
            let col_gs = system(batch, t.program); // columnar defaults on
            let col_out = run_threaded(&col_gs, pkts.iter().cloned(), t.subscriptions).unwrap();
            for name in t.subscriptions {
                assert_eq!(
                    norm(row_out.stream(name)),
                    norm(col_out.stream(name)),
                    "columnar != row transport on `{name}` at batch {batch}"
                );
                assert_eq!(
                    norm(sync_out.stream(name)),
                    norm(col_out.stream(name)),
                    "columnar != sync on `{name}` at batch {batch}"
                );
                if batch == 1 {
                    assert_eq!(
                        row_out.stream(name),
                        col_out.stream(name),
                        "batch size 1 must be byte-identical on `{name}`"
                    );
                }
            }
        }
    });
}

/// The merge template's output must stay time-ordered under threading at
/// every batch size — ordering, not just the multiset, is the contract.
#[test]
fn threaded_merge_stays_ordered_at_every_batch_size() {
    check("manager_batch_merge_order", 12, |g| {
        let pkts = trace(g);
        for batch in BATCH_SIZES {
            let gs = system(batch, TEMPLATES[2].program);
            let out = run_threaded(&gs, pkts.iter().cloned(), &["m"]).unwrap();
            let times: Vec<u64> =
                out.stream("m").iter().filter_map(|t| t.get(0).as_uint()).collect();
            assert!(
                times.windows(2).all(|w| w[0] <= w[1]),
                "merge output out of order at batch size {batch}: {times:?}"
            );
        }
    });
}
