//! Properties of operator-state checkpoint/restore through the threaded
//! manager — the engine half of the daemon's carry-state mode.
//!
//! **Continuity**: splitting one time-ordered trace into consecutive
//! chunks and running them as capture→restore→…→flush produces exactly
//! the output of a single continuous `run_threaded` over the whole
//! trace — windows spanning chunk boundaries aggregate as if the run
//! never stopped. At parallelism 1 the comparison pins exact tuples
//! *and order*; partitioned runs compare as multisets (cross-shard tie
//! order is not pinned even without checkpoints).
//!
//! **Recovery**: a seeded fault (panic on the target's first batch)
//! killing one chunk's run, followed by a retry of the same chunk from
//! the previous checkpoint with faults disarmed, yields the same total
//! output as the uninterrupted fault-free run. The fault fires before
//! any output escapes, so discard-and-retry is exact — the same
//! contract the daemon's catch-up replay relies on.
//!
//! Both properties run across parallelism {1, 4} × batch {1, 256}.

use gigascope::manager::{run_threaded, run_threaded_opts, ThreadedOptions};
use gigascope::{FaultPlan, Gigascope, Tuple};
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use gs_tests::prop::{check, Gen};
use std::collections::HashMap;
use std::sync::Arc;

const PARALLELISM: [usize; 2] = [1, 4];
const BATCH_SIZES: [usize; 2] = [1, 256];

struct Template {
    program: &'static str,
    subscriptions: &'static [&'static str],
}

const TEMPLATES: [Template; 3] = [
    // Split aggregation over a shared stream: hash-agg HFTA state (and
    // at parallelism 4, per-shard state reunified by a merge).
    Template {
        program: "DEFINE { query_name raw; } \
                  Select time, destPort, len From eth0.tcp; \
                  DEFINE { query_name agg; } \
                  Select time, destPort, count(*), sum(len) From raw \
                  Group By time, destPort; \
                  DEFINE { query_name sib; } \
                  Select time, count(*), sum(len) From raw Group By time",
        subscriptions: &["agg", "sib", "raw"],
    },
    // Interface-direct aggregate: the LFTA's direct-mapped sub-agg
    // table checkpoints below a super-aggregate HFTA.
    Template {
        program: "DEFINE { query_name tot; } \
                  Select time, count(*), sum(len) From eth0.tcp Group By time",
        subscriptions: &["tot"],
    },
    // Order-preserving merge: held rows and per-input watermarks must
    // survive the boundary or the reunified order breaks.
    Template {
        program: "DEFINE { query_name a; } Select time From eth0.tcp; \
                  DEFINE { query_name b; } Select time From eth1.tcp; \
                  DEFINE { query_name m; } Merge a.time : b.time From a, b",
        subscriptions: &["m", "a", "b"],
    },
];

fn system(program: &str, batch: usize, parallelism: usize) -> Gigascope {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.add_interface("eth1", 1, LinkType::Ethernet);
    gs.batch_size = batch;
    gs.parallelism = parallelism;
    gs.add_program(program).unwrap();
    gs
}

/// A time-ordered trace with multi-second jumps (so group windows both
/// close mid-chunk and span chunk boundaries), two interfaces, and a
/// port mix wide enough to spread partition shards.
fn trace(g: &mut Gen) -> Vec<CapPacket> {
    let n = g.usize(30..250);
    let mut ts_ns = 0u64;
    (0..n)
        .map(|i| {
            ts_ns += g.u64(0..2_500_000_000);
            let dport = *g.choice(&[80u16, 443, 25, 53, 8080, 993]);
            let iface = g.u16(0..2);
            let payload = vec![0u8; g.usize(0..64)];
            let f = FrameBuilder::tcp(0x0a000000 + i as u32, 0xc0a80001, 1024, dport)
                .payload(&payload)
                .build_ethernet();
            CapPacket::full(ts_ns, iface, LinkType::Ethernet, f)
        })
        .collect()
}

/// Split a trace into `k` consecutive chunks at random cut points
/// (empty chunks allowed: an idle epoch must be a no-op).
fn split(g: &mut Gen, pkts: &[CapPacket], k: usize) -> Vec<Vec<CapPacket>> {
    let mut cuts: Vec<usize> = (0..k - 1).map(|_| g.usize(0..pkts.len() + 1)).collect();
    cuts.sort_unstable();
    let mut chunks = Vec::with_capacity(k);
    let mut at = 0;
    for c in cuts {
        chunks.push(pkts[at..c].to_vec());
        at = c;
    }
    chunks.push(pkts[at..].to_vec());
    chunks
}

/// Multiset normalization: every tuple as its row of uints, sorted.
fn norm(tuples: &[Tuple]) -> Vec<Vec<u64>> {
    let mut rows: Vec<Vec<u64>> = tuples
        .iter()
        .map(|t| t.values().iter().filter_map(|v| v.as_uint()).collect())
        .collect();
    rows.sort();
    rows
}

fn assert_matches(
    got: &HashMap<String, Vec<Tuple>>,
    want: &HashMap<String, Vec<Tuple>>,
    subs: &[&str],
    parallelism: usize,
    what: &str,
) {
    static EMPTY: Vec<Tuple> = Vec::new();
    for name in subs {
        let g = got.get(*name).unwrap_or(&EMPTY);
        let w = want.get(*name).unwrap_or(&EMPTY);
        if parallelism == 1 {
            assert_eq!(g, w, "{what}: stream `{name}` diverged (exact order, parallelism 1)");
        } else {
            assert_eq!(norm(g), norm(w), "{what}: stream `{name}` diverged (multiset)");
        }
    }
}

#[test]
fn chunked_capture_restore_equals_continuous_run() {
    check("checkpoint_continuity", 10, |g| {
        let t = g.choice(&TEMPLATES);
        let pkts = trace(g);
        let k = g.usize(2..5);
        let chunks = split(g, &pkts, k);

        for parallelism in PARALLELISM {
            for batch in BATCH_SIZES {
                let reference =
                    run_threaded(&system(t.program, batch, parallelism), pkts.iter().cloned(), t.subscriptions)
                        .expect("continuous run")
                        .streams;

                let mut acc: HashMap<String, Vec<Tuple>> = HashMap::new();
                let mut carry: Option<Arc<HashMap<String, Vec<u8>>>> = None;
                for (i, chunk) in chunks.iter().enumerate() {
                    let last = i + 1 == chunks.len();
                    let opts = ThreadedOptions {
                        capture: !last,
                        restore: carry.take(),
                        ..ThreadedOptions::default()
                    };
                    let out = run_threaded_opts(
                        &system(t.program, batch, parallelism),
                        chunk.iter().cloned(),
                        t.subscriptions,
                        opts,
                    )
                    .expect("chunk run");
                    assert!(out.health.all_ok(), "chunk {i} must run clean");
                    assert!(
                        out.health.notes().is_empty(),
                        "an intact checkpoint must restore without notes: {:?}",
                        out.health.notes()
                    );
                    if !last {
                        assert!(!out.snapshots.is_empty(), "capture must produce snapshots");
                        carry = Some(Arc::new(out.snapshots));
                    }
                    for (k, v) in out.streams {
                        acc.entry(k).or_default().extend(v);
                    }
                }
                assert_matches(
                    &acc,
                    &reference,
                    t.subscriptions,
                    parallelism,
                    &format!("par {parallelism} batch {batch}"),
                );
            }
        }
    });
}

/// Seeded-fault recovery: the `agg` chunk run is killed on its first
/// batch (both the unpartitioned node and shard 0 are targeted so the
/// fault fires at every parallelism), the whole attempt is discarded,
/// and the chunk is retried from the prior checkpoint with faults
/// disarmed. Total output ≡ the uninterrupted fault-free run.
#[test]
fn fault_retry_from_checkpoint_equals_uninterrupted_run() {
    const PROGRAM: &str = TEMPLATES[0].program;
    const SUBS: [&str; 1] = ["agg"];
    check("checkpoint_fault_retry", 8, |g| {
        let pkts = trace(g);
        let chunks = split(g, &pkts, 3);
        let fault_chunk = g.usize(0..chunks.len());

        for parallelism in PARALLELISM {
            for batch in BATCH_SIZES {
                let reference =
                    run_threaded(&system(PROGRAM, batch, parallelism), pkts.iter().cloned(), &SUBS)
                        .expect("continuous run")
                        .streams;

                let mut acc: HashMap<String, Vec<Tuple>> = HashMap::new();
                let mut carry: Option<Arc<HashMap<String, Vec<u8>>>> = None;
                for (i, chunk) in chunks.iter().enumerate() {
                    let last = i + 1 == chunks.len();
                    let opts = ThreadedOptions {
                        capture: !last,
                        restore: carry.clone(),
                        ..ThreadedOptions::default()
                    };
                    if i == fault_chunk && !chunk.is_empty() {
                        // Faulted attempt: discarded wholesale. Panic on
                        // batch 1 means nothing escaped to subscribers.
                        let mut gs = system(PROGRAM, batch, parallelism);
                        gs.faults =
                            Some(FaultPlan::new().panic_at("agg", 1).panic_at("agg#0", 1));
                        let out = run_threaded_opts(
                            &gs,
                            chunk.iter().cloned(),
                            &SUBS,
                            opts.clone(),
                        )
                        .expect("faulted run still returns");
                        assert!(out.health.failed("agg"), "the injected fault must fire");
                        // The faulted node (and the reunifying merge
                        // downstream of it) must not checkpoint
                        // mid-panic state; healthy sibling shards may,
                        // but the whole attempt is discarded anyway.
                        assert!(
                            !out.snapshots.contains_key("hfta:agg")
                                && !out.snapshots.contains_key("hfta:agg#0"),
                            "a faulted node must not checkpoint mid-panic state"
                        );
                    }
                    // The (re)try: same chunk, same prior checkpoint,
                    // faults off.
                    let out = run_threaded_opts(
                        &system(PROGRAM, batch, parallelism),
                        chunk.iter().cloned(),
                        &SUBS,
                        opts,
                    )
                    .expect("retry run");
                    assert!(out.health.all_ok(), "retry must run clean");
                    if !last {
                        carry = Some(Arc::new(out.snapshots));
                    }
                    for (k, v) in out.streams {
                        acc.entry(k).or_default().extend(v);
                    }
                }
                assert_matches(
                    &acc,
                    &reference,
                    &SUBS,
                    parallelism,
                    &format!("fault chunk {fault_chunk}, par {parallelism} batch {batch}"),
                );
            }
        }
    });
}
