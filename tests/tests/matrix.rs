//! Robustness matrix: a grid of query shapes × traffic profiles, each run
//! end-to-end. The assertions are intentionally loose (no panics, schema
//! respected, conservation where it must hold) — the point is coverage of
//! combinations no single scenario test exercises.

use gigascope::{Gigascope, Value};
use gs_netgen::{MixConfig, PacketMix, SizeDist};
use gs_packet::capture::{CapPacket, LinkType};
use gs_runtime::punct::HeartbeatMode;

const QUERIES: &[(&str, &str)] = &[
    ("sel_all", "Select time, len From eth0.pkt"),
    ("sel_ip", "Select time, srcIP, destIP, ttl From eth0.ip Where ttl > 0"),
    ("sel_tcp", "Select time, destPort, payloadLen From eth0.tcp"),
    ("sel_udp", "Select time, destPort From eth0.udp"),
    ("agg_sec", "Select time, count(*), sum(len), min(len), max(len) From eth0.ip Group By time"),
    ("agg_bucket", "Select tb, avg(len) From eth0.ip Group By time/2 as tb"),
    ("agg_flow", "Select time, srcIP, destPort, count(*) From eth0.tcp Group By time, srcIP, destPort"),
    ("agg_having", "Select time, count(*) From eth0.ip Group By time Having count(*) > 1"),
    (
        "regex_split",
        "Select time, count(*) From eth0.tcp \
         Where destPort = 80 and str_match_regex(payload, 'HTTP/1') Group By time",
    ),
    ("bits", "Select time, flags & 18, len % 7 From eth0.tcp Where flags & 2 = 2"),
    ("ip_lit", "Select time From eth0.ip Where srcIP <> 255.255.255.255"),
    ("bool_expr", "Select time From eth0.tcp Where NOT (destPort = 80 OR destPort = 443)"),
];

fn profiles() -> Vec<(&'static str, Vec<CapPacket>)> {
    let mk = |cfg: MixConfig| PacketMix::new(cfg).collect::<Vec<_>>();
    vec![
        (
            "smooth",
            mk(MixConfig { seed: 1, duration_ms: 400, ..MixConfig::default() }),
        ),
        (
            "bursty",
            mk(MixConfig {
                seed: 2,
                duration_ms: 400,
                bursty_background: true,
                background_rate_mbps: 150.0,
                ..MixConfig::default()
            }),
        ),
        (
            "http_only",
            mk(MixConfig {
                seed: 3,
                duration_ms: 400,
                background_rate_mbps: 0.0,
                http_match_fraction: 1.0,
                ..MixConfig::default()
            }),
        ),
        (
            "tiny_packets",
            mk(MixConfig {
                seed: 4,
                duration_ms: 300,
                sizes: SizeDist::new(&[(64, 1.0)]),
                ..MixConfig::default()
            }),
        ),
        (
            "jumbo",
            mk(MixConfig {
                seed: 5,
                duration_ms: 300,
                sizes: SizeDist::new(&[(1500, 1.0)]),
                flows: 10,
                flow_skew: 0.0,
                ..MixConfig::default()
            }),
        ),
        ("empty", Vec::new()),
        (
            "single_packet",
            mk(MixConfig { seed: 6, duration_ms: 1, background_rate_mbps: 0.0, ..MixConfig::default() })
                .into_iter()
                .take(1)
                .collect(),
        ),
    ]
}

#[test]
fn every_query_shape_runs_on_every_profile() {
    for (profile_name, pkts) in profiles() {
        for (qname, body) in QUERIES {
            for hb in [HeartbeatMode::Off, HeartbeatMode::Periodic { interval: 1 }] {
                let mut gs = Gigascope::new();
                gs.heartbeat = hb;
                gs.add_interface("eth0", 0, LinkType::Ethernet);
                gs.add_program(&format!("DEFINE {{ query_name {qname}; }} {body}"))
                    .unwrap_or_else(|e| panic!("{qname} failed to compile: {e}"));
                let out = gs
                    .run_capture(pkts.iter().cloned(), &[qname])
                    .unwrap_or_else(|e| panic!("{qname} on {profile_name}: {e}"));
                // Schema respected on every tuple.
                let schema = gs.schema(qname).expect("registered").clone();
                for t in out.stream(qname) {
                    assert_eq!(
                        t.arity(),
                        schema.len(),
                        "{qname} on {profile_name}: arity mismatch"
                    );
                    for (v, c) in t.values().iter().zip(&schema) {
                        assert_eq!(
                            v.ty(),
                            c.ty,
                            "{qname} on {profile_name}: column {} type",
                            c.name
                        );
                    }
                }
                assert_eq!(out.stats.packets as usize, pkts.len());
            }
        }
    }
}

#[test]
fn aggregation_conserves_counts_on_every_profile() {
    for (profile_name, pkts) in profiles() {
        let ip_packets = pkts
            .iter()
            .filter(|p| gs_packet::PacketView::parse((*p).clone()).ipv4().is_some())
            .count() as u64;
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.add_program("DEFINE { query_name c; } Select time, count(*) From eth0.ip Group By time")
            .unwrap();
        let out = gs.run_capture(pkts.iter().cloned(), &["c"]).unwrap();
        let total: u64 = out.stream("c").iter().map(|t| t.get(1).as_uint().unwrap()).sum();
        assert_eq!(total, ip_packets, "profile {profile_name}: no packet lost or duplicated");
    }
}

#[test]
fn merge_of_split_traffic_conserves_on_every_profile() {
    for (profile_name, pkts) in profiles() {
        // Route packets alternately to two interfaces, then merge back.
        let routed: Vec<CapPacket> = pkts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut p = p.clone();
                p.iface = (i % 2) as u16;
                p
            })
            .collect();
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.add_interface("eth1", 1, LinkType::Ethernet);
        gs.add_program(
            "DEFINE { query_name a; } Select time From eth0.pkt; \
             DEFINE { query_name b; } Select time From eth1.pkt; \
             DEFINE { query_name m; } Merge a.time : b.time From a, b",
        )
        .unwrap();
        let out = gs.run_capture(routed.iter().cloned(), &["m"]).unwrap();
        assert_eq!(
            out.stream("m").len(),
            routed.len(),
            "profile {profile_name}: merge must be a lossless union"
        );
        let times: Vec<u64> =
            out.stream("m").iter().map(|t| t.get(0).as_uint().unwrap()).collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "profile {profile_name}: merge output must stay ordered"
        );
    }
}

#[test]
fn parameters_flow_through_every_shape() {
    let pkts: Vec<CapPacket> =
        PacketMix::new(MixConfig { seed: 9, duration_ms: 300, ..MixConfig::default() }).collect();
    for (qname, body, param, value) in [
        ("p_sel", "Select time From eth0.tcp Where destPort = $p", "p", 80u64),
        ("p_arith", "Select time From eth0.ip Where len > $p", "p", 100),
        (
            "p_having",
            "Select time, count(*) From eth0.ip Group By time Having count(*) > $p",
            "p",
            3,
        ),
    ] {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.add_program(&format!("DEFINE {{ query_name {qname}; }} {body}")).unwrap();
        gs.set_params(qname, gigascope::ParamBindings::new().with(param, Value::UInt(value)))
            .unwrap();
        gs.run_capture(pkts.iter().cloned(), &[qname])
            .unwrap_or_else(|e| panic!("{qname}: {e}"));
    }
}
