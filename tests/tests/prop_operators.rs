//! Property tests on operator invariants: merge sortedness, LFTA/HFTA
//! aggregation equivalence, LPM-vs-linear-scan agreement, and shedder
//! conservation.
//!
//! Runs on the in-repo deterministic harness ([`gs_tests::prop`]); the
//! property assertions are unchanged from the original proptest suite.

use gs_gsql::ast::AggFunc;
use gs_gsql::plan::PExpr;
use gs_gsql::types::DataType;
use gs_netgen::prefixes::{generate_prefixes, reference_lpm, render_table};
use gs_runtime::expr::Program;
use gs_runtime::ops::agg::{AggCore, DirectMappedAggregator, GroupAggregator};
use gs_runtime::ops::merge::MergeOp;
use gs_runtime::ops::Operator;
use gs_runtime::qos::{DropPolicy, Shedder};
use gs_runtime::tuple::{tuples_of, StreamItem, Tuple};
use gs_runtime::udf::lpm::LpmTrie;
use gs_runtime::udf::{FileStore, UdfRegistry};
use gs_runtime::{ParamBindings, Value};
use gs_tests::prop::{check, Gen, DEFAULT_CASES};
use std::collections::BTreeMap;

fn col_prog(i: usize) -> Program {
    Program::compile(
        &PExpr::Col { index: i, ty: DataType::UInt },
        &ParamBindings::new(),
        &UdfRegistry::with_builtins(),
        &FileStore::new(),
    )
    .unwrap()
}

/// Sorted input stream for the merge.
fn arb_sorted(g: &mut Gen, max_len: usize) -> Vec<u64> {
    let mut v = g.vec_with(0..max_len, |g| g.u64(0..500));
    v.sort_unstable();
    v
}

#[test]
fn merge_output_is_sorted_union() {
    check("merge_output_is_sorted_union", DEFAULT_CASES, |g| {
        let a = arb_sorted(g, 60);
        let b = arb_sorted(g, 60);
        let c = arb_sorted(g, 60);
        let mut m = MergeOp::new(3, 0, vec![0, 0, 0]);
        let mut out = Vec::new();
        // Round-robin feed preserving each stream's internal order.
        let streams = [&a, &b, &c];
        let mut idx = [0usize; 3];
        loop {
            let mut progressed = false;
            for (port, s) in streams.iter().enumerate() {
                if idx[port] < s.len() {
                    m.push(
                        port,
                        StreamItem::Tuple(Tuple::new(vec![Value::UInt(s[idx[port]])])),
                        &mut out,
                    );
                    idx[port] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        m.finish(&mut out);
        let got: Vec<u64> =
            tuples_of(out).iter().map(|t| t.get(0).as_uint().unwrap()).collect();
        let mut expected = [a.clone(), b.clone(), c.clone()].concat();
        expected.sort_unstable();
        assert_eq!(got, expected, "merge must be a sorted union");
    });
}

#[test]
fn split_aggregation_equals_exact() {
    check("split_aggregation_equals_exact", DEFAULT_CASES, |g| {
        // Input rows (bucket, key, weight), bucket nondecreasing after sort.
        let mut rows = g.vec_with(0..300, |g| (g.u64(0..20), g.u64(0..8), g.u64(1..100)));
        let table_bits = g.u32(0..6);
        rows.sort_by_key(|r| r.0);

        let mk_core = || {
            AggCore::new(
                vec![col_prog(0), col_prog(1)],
                vec![
                    (AggFunc::Count, None, DataType::UInt),
                    (AggFunc::Sum, Some(col_prog(2)), DataType::UInt),
                    (AggFunc::Min, Some(col_prog(2)), DataType::UInt),
                    (AggFunc::Max, Some(col_prog(2)), DataType::UInt),
                ],
                Some(0),
                0,
            )
        };
        // Combine partials: count->sum(col2), sum->sum(col3), min->min(col4), max->max(col5).
        let combine = AggCore::new(
            vec![col_prog(0), col_prog(1)],
            vec![
                (AggFunc::Sum, Some(col_prog(2)), DataType::UInt),
                (AggFunc::Sum, Some(col_prog(3)), DataType::UInt),
                (AggFunc::Min, Some(col_prog(4)), DataType::UInt),
                (AggFunc::Max, Some(col_prog(5)), DataType::UInt),
            ],
            Some(0),
            0,
        );

        let mut dm = DirectMappedAggregator::new(mk_core(), 1usize << table_bits);
        let mut exact = GroupAggregator::new(mk_core());
        let mut comb = GroupAggregator::new(combine);

        let mut partials = Vec::new();
        let mut direct = Vec::new();
        for &(b, k, w) in &rows {
            let t = Tuple::new(vec![Value::UInt(b), Value::UInt(k), Value::UInt(w)]);
            dm.update(&t, &mut partials);
            exact.update(&t, &mut direct);
        }
        dm.finish(&mut partials);
        exact.finish(&mut direct);
        let mut combined = Vec::new();
        for p in tuples_of(partials) {
            comb.update(&p, &mut combined);
        }
        comb.finish(&mut combined);

        let as_map = |items: Vec<StreamItem>| -> BTreeMap<(u64, u64), (u64, u64, u64, u64)> {
            tuples_of(items)
                .into_iter()
                .map(|t| {
                    (
                        (t.get(0).as_uint().unwrap(), t.get(1).as_uint().unwrap()),
                        (
                            t.get(2).as_uint().unwrap(),
                            t.get(3).as_uint().unwrap(),
                            t.get(4).as_uint().unwrap(),
                            t.get(5).as_uint().unwrap(),
                        ),
                    )
                })
                .collect()
        };
        assert_eq!(
            as_map(combined),
            as_map(direct),
            "LFTA partials + HFTA combine must equal exact aggregation"
        );
    });
}

#[test]
fn lpm_trie_agrees_with_linear_scan() {
    check("lpm_trie_agrees_with_linear_scan", DEFAULT_CASES, |g| {
        let seed: u64 = g.any();
        let addrs = g.vec_with(1..64, |g| g.any::<u32>());
        let entries = generate_prefixes(seed, 25);
        let trie = LpmTrie::parse_table(&render_table(&entries)).unwrap();
        for a in addrs {
            assert_eq!(trie.lookup(a), reference_lpm(&entries, a), "addr {a:#x}");
        }
    });
}

#[test]
fn shedder_conserves_items() {
    check("shedder_conserves_items", DEFAULT_CASES, |g| {
        let offers = g.vec_with(0..200, |g| (g.u32(0..6), g.any::<u8>()));
        let cap = g.usize(1..32);
        let lpf: bool = g.bool();
        let policy = if lpf { DropPolicy::LeastProcessedFirst } else { DropPolicy::TailDrop };
        let mut s: Shedder<u8> = Shedder::new(cap, policy);
        let mut popped = 0u64;
        for (i, &(d, v)) in offers.iter().enumerate() {
            s.offer(d, v);
            if i % 3 == 0
                && s.pop().is_some() {
                    popped += 1;
                }
        }
        let mut rest = 0u64;
        while s.pop().is_some() {
            rest += 1;
        }
        assert_eq!(
            popped + rest + s.total_dropped(),
            offers.len() as u64,
            "every offered item is delivered or counted dropped"
        );
    });
}

#[test]
fn banded_merge_never_out_of_band() {
    check("banded_merge_never_out_of_band", DEFAULT_CASES, |g| {
        let base = arb_sorted(g, 80);
        let jitter = g.vec_with(0..80, |g| g.u64(0..5));
        // Input 0 is banded(5): values may lag the watermark by up to 5.
        let banded: Vec<u64> = base
            .iter()
            .zip(jitter.iter().chain(std::iter::repeat(&0)))
            .map(|(&v, &j)| v.saturating_sub(j))
            .collect();
        let mut m = MergeOp::new(2, 0, vec![5, 0]);
        let mut out = Vec::new();
        for &v in &banded {
            m.push(0, StreamItem::Tuple(Tuple::new(vec![Value::UInt(v)])), &mut out);
        }
        for &v in &base {
            m.push(1, StreamItem::Tuple(Tuple::new(vec![Value::UInt(v)])), &mut out);
        }
        m.finish(&mut out);
        let got: Vec<u64> =
            tuples_of(out).iter().map(|t| t.get(0).as_uint().unwrap()).collect();
        // Output is the sorted multiset union.
        let mut expected = [banded, base].concat();
        expected.sort_unstable();
        assert_eq!(got, expected);
    });
}

use gs_runtime::ops::join::{EmitMode, JoinConfig, JoinOp};

#[test]
fn sorted_join_always_monotone_banded_join_same_multiset() {
    check("sorted_join_always_monotone_banded_join_same_multiset", 128, |g| {
        let base = g.vec_with(1..120, |g| g.u64(0..200));
        let jitter = g.vec_with(1..120, |g| g.u64(0..4));
        // Both inputs banded(4): values lag a sorted walk by up to 4.
        let mut sorted_base = base.clone();
        sorted_base.sort_unstable();
        let seq: Vec<u64> = sorted_base
            .iter()
            .zip(jitter.iter().chain(std::iter::repeat(&0)))
            .map(|(&v, &j)| v.saturating_sub(j))
            .collect();
        let mk = |emit| {
            JoinOp::new(
                JoinConfig {
                    left_col: 0,
                    right_col: 0,
                    lo: -1,
                    hi: 1,
                    left_slack: 4,
                    right_slack: 4,
                    eq_keys: vec![],
                    emit,
                    sort_out_col: 0,
                },
                None,
                vec![col_prog(0)],
            )
        };
        let run = |mut j: JoinOp| {
            let mut out = Vec::new();
            for &v in &seq {
                j.push(0, StreamItem::Tuple(Tuple::new(vec![Value::UInt(v)])), &mut out);
                j.push(1, StreamItem::Tuple(Tuple::new(vec![Value::UInt(v)])), &mut out);
            }
            j.finish(&mut out);
            tuples_of(out)
                .iter()
                .map(|t| t.get(0).as_uint().unwrap())
                .collect::<Vec<u64>>()
        };
        let banded = run(mk(EmitMode::Banded));
        let sorted = run(mk(EmitMode::Sorted));
        assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "sorted emission must be monotone: {sorted:?}"
        );
        let norm = |mut v: Vec<u64>| {
            v.sort_unstable();
            v
        };
        assert_eq!(norm(banded), norm(sorted), "emit mode must not change results");
    });
}
