//! Property tests: the runtime's Thompson-NFA regex engine agrees with a
//! transparent backtracking reference on a generated pattern subset, and
//! never panics on arbitrary input.
//!
//! Runs on the in-repo deterministic harness ([`gs_tests::prop`]); the
//! property assertions are unchanged from the original proptest suite.

use gs_runtime::udf::regex::Regex;
use gs_tests::backtrack_match;
use gs_tests::prop::{check, Gen};

/// Patterns over {a, b, ., *, ?, |, (), ^, $} — the subset the reference
/// matcher implements. Recursive with bounded depth, mirroring the
/// original `prop_recursive(3, 16, 4, ..)` tree.
fn arb_pattern_body(g: &mut Gen, depth: usize) -> String {
    if depth == 0 || g.usize(0..4) == 0 {
        return (*g.choice(&["a", "b", "c", "."])).to_string();
    }
    match g.usize(0..4) {
        0 => {
            // concat
            let a = arb_pattern_body(g, depth - 1);
            let b = arb_pattern_body(g, depth - 1);
            format!("{a}{b}")
        }
        1 => {
            // alternation (grouped to keep precedence unambiguous)
            let a = arb_pattern_body(g, depth - 1);
            let b = arb_pattern_body(g, depth - 1);
            format!("({a}|{b})")
        }
        2 => format!("({})*", arb_pattern_body(g, depth - 1)),
        _ => format!("({})?", arb_pattern_body(g, depth - 1)),
    }
}

fn arb_pattern(g: &mut Gen) -> String {
    let anchor_s = g.bool();
    let body = arb_pattern_body(g, 3);
    let anchor_e = g.bool();
    format!("{}{}{}", if anchor_s { "^" } else { "" }, body, if anchor_e { "$" } else { "" })
}

fn arb_hay(g: &mut Gen) -> Vec<u8> {
    g.vec_with(0..12, |g| *g.choice(&[b'a', b'b', b'c', b'x']))
}

#[test]
fn nfa_agrees_with_backtracker() {
    check("nfa_agrees_with_backtracker", 512, |g| {
        let pat = arb_pattern(g);
        let hay = arb_hay(g);
        let re = Regex::compile(&pat).expect("generated patterns are valid");
        let nfa = re.is_match(&hay);
        let reference = backtrack_match(&pat, &hay);
        assert_eq!(
            nfa,
            reference,
            "pattern `{}` over {:?}",
            pat,
            String::from_utf8_lossy(&hay)
        );
    });
}

#[test]
fn compile_never_panics() {
    check("compile_never_panics", 512, |g| {
        let pat = g.string_of(b"ab.()|*?+[]^$\\", 0..17);
        let _ = Regex::compile(&pat);
    });
}

#[test]
fn match_never_panics_on_arbitrary_bytes() {
    check("match_never_panics_on_arbitrary_bytes", 512, |g| {
        let pat = arb_pattern(g);
        let hay = g.bytes(0..64);
        let re = Regex::compile(&pat).expect("generated patterns are valid");
        let _ = re.is_match(&hay);
    });
}

#[test]
fn anchored_is_stricter() {
    check("anchored_is_stricter", 512, |g| {
        // ^p (resp. p$) can only match where p matches.
        let pat_core = arb_pattern(g);
        let pat = pat_core.trim_start_matches('^').trim_end_matches('$').to_string();
        let anchored = Regex::compile(&format!("^{pat}")).unwrap();
        let free = Regex::compile(&pat).unwrap();
        for hay in [&b"abcx"[..], b"xabc", b"", b"aaa", b"cba"] {
            if anchored.is_match(hay) {
                assert!(free.is_match(hay), "`^{pat}` matched but `{pat}` did not");
            }
        }
    });
}

#[test]
fn literal_patterns_equal_substring_search() {
    check("literal_patterns_equal_substring_search", 512, |g| {
        let lit = g.string_of(b"abc", 1..9);
        let hay = arb_hay(g);
        let re = Regex::compile(&lit).unwrap();
        let expected = hay.windows(lit.len()).any(|w| w == lit.as_bytes());
        assert_eq!(re.is_match(&hay), expected);
    });
}
