//! Property tests: the runtime's Thompson-NFA regex engine agrees with a
//! transparent backtracking reference on a generated pattern subset, and
//! never panics on arbitrary input.

use gs_runtime::udf::regex::Regex;
use gs_tests::backtrack_match;
use proptest::prelude::*;

/// Patterns over {a, b, ., *, ?, |, (), ^, $} — the subset the reference
/// matcher implements.
fn arb_pattern() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just(".".to_string()),
    ];
    let node = leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            // concat
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a}{b}")),
            // alternation (grouped to keep precedence unambiguous)
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}|{b})")),
            // star / quest over a group
            inner.clone().prop_map(|a| format!("({a})*")),
            inner.clone().prop_map(|a| format!("({a})?")),
        ]
    });
    (any::<bool>(), node, any::<bool>()).prop_map(|(anchor_s, body, anchor_e)| {
        format!(
            "{}{}{}",
            if anchor_s { "^" } else { "" },
            body,
            if anchor_e { "$" } else { "" }
        )
    })
}

fn arb_hay() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'x')], 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn nfa_agrees_with_backtracker(pat in arb_pattern(), hay in arb_hay()) {
        let re = Regex::compile(&pat).expect("generated patterns are valid");
        let nfa = re.is_match(&hay);
        let reference = backtrack_match(&pat, &hay);
        prop_assert_eq!(
            nfa,
            reference,
            "pattern `{}` over {:?}",
            pat,
            String::from_utf8_lossy(&hay)
        );
    }

    #[test]
    fn compile_never_panics(pat in "[ab.()|*?+\\[\\]^$\\\\]{0,16}") {
        let _ = Regex::compile(&pat);
    }

    #[test]
    fn match_never_panics_on_arbitrary_bytes(
        pat in arb_pattern(),
        hay in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let re = Regex::compile(&pat).expect("generated patterns are valid");
        let _ = re.is_match(&hay);
    }

    #[test]
    fn anchored_is_stricter(pat_core in arb_pattern()) {
        // ^p (resp. p$) can only match where p matches.
        let pat = pat_core.trim_start_matches('^').trim_end_matches('$').to_string();
        let anchored = Regex::compile(&format!("^{pat}")).unwrap();
        let free = Regex::compile(&pat).unwrap();
        for hay in [&b"abcx"[..], b"xabc", b"", b"aaa", b"cba"] {
            if anchored.is_match(hay) {
                prop_assert!(free.is_match(hay), "`^{}` matched but `{}` did not", pat, pat);
            }
        }
    }

    #[test]
    fn literal_patterns_equal_substring_search(lit in "[abc]{1,8}", hay in arb_hay()) {
        let re = Regex::compile(&lit).unwrap();
        let expected = hay.windows(lit.len()).any(|w| w == lit.as_bytes());
        prop_assert_eq!(re.is_match(&hay), expected);
    }
}
