//! Properties of the durable checkpoint store under injected disk
//! crashes — the storage half of `gsqd --state-dir`.
//!
//! The driver below speaks the daemon's exact boundary protocol at the
//! library level: run an epoch, merge the cut, `checkpoint` (segment
//! published crash-consistently), `log_markers` (the durable commit
//! point), and only then count the epoch's rows as delivered — the same
//! accounting as a marker-counting `gsq` client, whose `read_epoch`
//! completes only on the end-of-epoch marker frame sent after the
//! commit. A crash anywhere in that protocol ends the incarnation: the
//! store is dropped (everything in memory dies with the process), the
//! same directory is reopened, and the session resumes from whatever
//! `Recovery` hands back.
//!
//! **Exactly-once**: for every injected crash point — before and after
//! each of the six protocol steps, plus short writes to both files —
//! the total confirmed output equals the uninterrupted run (exact rows
//! and order at parallelism 1, multisets at 4), every `(stream, epoch)`
//! marker is committed exactly once, and the recovered carry map is
//! byte-identical to a cut the session actually published.
//!
//! **Truncation**: for *every byte prefix* of the emission log, and
//! every byte prefix of the newest segment, recovery is never fatal and
//! resuming yields exactly the reference output (recovery falls back
//! past any boundary it can no longer prove was confirmed, and re-runs
//! it).
//!
//! **Dead-letter**: a checkpoint that keeps failing with ENOSPC never
//! stops the session — output continues on the in-memory cut and the
//! failures are counted in `write_failed`.

use gigascope::manager::{run_threaded, run_threaded_opts, ThreadedOptions};
use gigascope::{Gigascope, Tuple};
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use gs_runtime::durable::{DiskIo, DurableStats, DurableStore, FaultyDisk, RealDisk, Recovery};
use gs_runtime::faults::{DiskFaultKind, DiskFaultPlan, DiskOp};
use gs_tests::prop::{check, Gen};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const PROGRAM: &str = "DEFINE { query_name raw; } \
                       Select time, destPort, len From eth0.tcp; \
                       DEFINE { query_name agg; } \
                       Select time, destPort, count(*), sum(len) From raw \
                       Group By time, destPort; \
                       DEFINE { query_name sib; } \
                       Select time, count(*), sum(len) From raw Group By time";
const SUBS: [&str; 3] = ["agg", "sib", "raw"];

const ALL_OPS: [DiskOp; 6] = [
    DiskOp::TempWrite,
    DiskOp::TempFsync,
    DiskOp::Rename,
    DiskOp::DirFsync,
    DiskOp::LogAppend,
    DiskOp::LogFsync,
];

static DIR_ID: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gs_prop_durable_{tag}_{}_{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn system(batch: usize, parallelism: usize) -> Gigascope {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.add_interface("eth1", 1, LinkType::Ethernet);
    gs.batch_size = batch;
    gs.parallelism = parallelism;
    gs.add_program(PROGRAM).unwrap();
    gs
}

/// A time-ordered trace with multi-second jumps (windows close mid-epoch
/// and span boundaries) — the same shape the checkpoint properties use.
fn trace(g: &mut Gen) -> Vec<CapPacket> {
    let n = g.usize(30..160);
    let mut ts_ns = 0u64;
    (0..n)
        .map(|i| {
            ts_ns += g.u64(0..2_500_000_000);
            let dport = *g.choice(&[80u16, 443, 25, 53, 8080, 993]);
            let payload = vec![0u8; g.usize(0..64)];
            let f = FrameBuilder::tcp(0x0a000000 + i as u32, 0xc0a80001, 1024, dport)
                .payload(&payload)
                .build_ethernet();
            CapPacket::full(ts_ns, 0, LinkType::Ethernet, f)
        })
        .collect()
}

fn split(g: &mut Gen, pkts: &[CapPacket], k: usize) -> Vec<Vec<CapPacket>> {
    let mut cuts: Vec<usize> = (0..k - 1).map(|_| g.usize(0..pkts.len() + 1)).collect();
    cuts.sort_unstable();
    let mut chunks = Vec::with_capacity(k);
    let mut at = 0;
    for c in cuts {
        chunks.push(pkts[at..c].to_vec());
        at = c;
    }
    chunks.push(pkts[at..].to_vec());
    chunks
}

fn norm(tuples: &[Tuple]) -> Vec<Vec<u64>> {
    let mut rows: Vec<Vec<u64>> = tuples
        .iter()
        .map(|t| t.values().iter().filter_map(|v| v.as_uint()).collect())
        .collect();
    rows.sort();
    rows
}

fn assert_matches(
    got: &HashMap<String, Vec<Tuple>>,
    want: &HashMap<String, Vec<Tuple>>,
    parallelism: usize,
    what: &str,
) {
    static EMPTY: Vec<Tuple> = Vec::new();
    for name in SUBS {
        let g = got.get(name).unwrap_or(&EMPTY);
        let w = want.get(name).unwrap_or(&EMPTY);
        if parallelism == 1 {
            assert_eq!(g, w, "{what}: stream `{name}` diverged (exact order, parallelism 1)");
        } else {
            assert_eq!(norm(g), norm(w), "{what}: stream `{name}` diverged (multiset)");
        }
    }
}

/// What one durable session produced, in the marker-counting client's
/// accounting.
struct SessionOut {
    /// Confirmed rows per stream, in confirmation order.
    acc: HashMap<String, Vec<Tuple>>,
    /// Every `(stream, epoch)` marker durably committed, in order.
    ledger: Vec<(String, u64)>,
    /// How many times the session reopened the store after a crash.
    recoveries: u64,
}

/// Drive one full chunked session through the daemon's durable boundary
/// protocol, surviving at most one injected crash (the plan latches).
/// Panics if the session cannot converge.
fn run_session(
    dir: &Path,
    mut plan: Option<DiskFaultPlan>,
    chunks: &[Vec<CapPacket>],
    batch: usize,
    parallelism: usize,
) -> SessionOut {
    let k = chunks.len();
    let streams: Vec<String> = SUBS.iter().map(|s| s.to_string()).collect();
    let mut acc: HashMap<String, Vec<Tuple>> = HashMap::new();
    let mut ledger: Vec<(String, u64)> = Vec::new();
    // Every cut this session published, by boundary: the recovered
    // carry must be byte-identical to one of these.
    let mut cuts: HashMap<u64, HashMap<String, Vec<u8>>> = HashMap::new();
    cuts.insert(0, HashMap::new());
    // Rows computed by an epoch whose commit crashed: confirmed
    // retroactively iff the marker turns out to be durable.
    let mut limbo: Option<(u64, HashMap<String, Vec<Tuple>>, bool)> = None;
    let mut recoveries = 0u64;

    for incarnation in 0..3 {
        let io: Arc<dyn DiskIo> = match plan.take() {
            Some(p) => Arc::new(FaultyDisk::new(p)),
            None => Arc::new(RealDisk),
        };
        let stats = Arc::new(DurableStats::default());
        let (mut store, rec): (DurableStore, Recovery) =
            DurableStore::open(dir, io, 3, stats).expect("open/recovery is never fatal");
        if incarnation > 0 {
            recoveries += 1;
            assert_eq!(
                &rec.carry,
                cuts.get(&rec.next_epoch).unwrap_or_else(|| panic!(
                    "recovered to boundary {} which this session never published",
                    rec.next_epoch
                )),
                "recovered carry must be byte-identical to the published cut"
            );
        }
        // Retroactive commit: the crashed epoch counts iff its marker
        // record is durable (the frames follow the marker atomically in
        // this model; a real client that never got them also never got
        // a marker to count).
        if let Some((e, rows, was_flush)) = limbo.take() {
            let durable = if was_flush {
                rec.clean_shutdown
            } else {
                rec.markers.iter().any(|(_, me)| *me == e)
            };
            if durable {
                if !was_flush {
                    assert_eq!(
                        rec.next_epoch,
                        e + 1,
                        "a durably marked epoch must not be re-run"
                    );
                    for s in &streams {
                        assert!(
                            rec.markers.contains(&(s.clone(), e)),
                            "markers commit atomically per epoch"
                        );
                        ledger.push((s.clone(), e));
                    }
                }
                for (s, rows) in rows {
                    acc.entry(s).or_default().extend(rows);
                }
                if was_flush {
                    return SessionOut { acc, ledger, recoveries };
                }
            } else if !was_flush {
                assert!(
                    rec.next_epoch <= e,
                    "an unmarked epoch must be re-run, not skipped (resume {} > epoch {e})",
                    rec.next_epoch
                );
            }
        }

        let mut carry: HashMap<String, Vec<u8>> = rec.carry;
        let mut crashed = false;
        for e in rec.next_epoch..k as u64 {
            let opts = ThreadedOptions {
                capture: true,
                restore: (!carry.is_empty()).then(|| Arc::new(carry.clone())),
                ..ThreadedOptions::default()
            };
            let out = run_threaded_opts(
                &system(batch, parallelism),
                chunks[e as usize].iter().cloned(),
                &SUBS,
                opts,
            )
            .expect("epoch run");
            assert!(out.health.all_ok(), "epoch {e} must run clean");
            carry = out.snapshots;
            let cursors: HashMap<String, u64> =
                streams.iter().map(|q| (q.clone(), e + 1)).collect();
            cuts.insert(e + 1, carry.clone());
            let commit = store
                .checkpoint(e + 1, &carry, &cursors, &streams)
                .and_then(|()| store.log_markers(e, &streams));
            match commit {
                Ok(()) => {
                    for (s, rows) in out.streams {
                        acc.entry(s).or_default().extend(rows);
                    }
                    for s in &streams {
                        ledger.push((s.clone(), e));
                    }
                }
                Err(err) => {
                    assert!(err.is_crash(), "only injected crashes expected here: {err}");
                    limbo = Some((e, out.streams, false));
                    crashed = true;
                    break;
                }
            }
        }
        if crashed {
            continue;
        }
        // Shutdown flush: emit the held tails; the shutdown record is
        // the flush's commit point (the daemon logs no markers for it).
        let opts = ThreadedOptions {
            capture: false,
            restore: (!carry.is_empty()).then(|| Arc::new(carry.clone())),
            ..ThreadedOptions::default()
        };
        let out = run_threaded_opts(
            &system(batch, parallelism),
            std::iter::empty::<CapPacket>(),
            &SUBS,
            opts,
        )
        .expect("flush run");
        match store.log_shutdown(k as u64 + 1) {
            Ok(()) => {
                for (s, rows) in out.streams {
                    acc.entry(s).or_default().extend(rows);
                }
                return SessionOut { acc, ledger, recoveries };
            }
            Err(err) => {
                assert!(err.is_crash(), "only injected crashes expected here: {err}");
                limbo = Some((k as u64, out.streams, true));
            }
        }
    }
    panic!("session failed to converge in 3 incarnations");
}

fn reference(
    pkts: &[CapPacket],
    batch: usize,
    parallelism: usize,
) -> HashMap<String, Vec<Tuple>> {
    run_threaded(&system(batch, parallelism), pkts.iter().cloned(), &SUBS)
        .expect("continuous run")
        .streams
}

/// The crash matrix: every interleaving point of the boundary protocol,
/// at parallelism {1, 4} × batch {1, 256}. Each session takes exactly
/// one crash, recovers, resumes, and must reproduce the uninterrupted
/// run with each `(stream, epoch)` marker committed exactly once.
#[test]
fn every_crash_point_recovers_exactly_once() {
    check("durable_crash_matrix", 2, |g| {
        let pkts = trace(g);
        let k = 3usize;
        let chunks = split(g, &pkts, k);
        // Boundary b is the b-th checkpoint, i.e. the commit of epoch
        // b-1; b = k lands the Log* faults on the last pre-flush epoch.
        let b = g.u64(1..k as u64 + 1);

        let mut plans: Vec<(String, DiskFaultPlan)> = Vec::new();
        for op in ALL_OPS {
            plans.push((
                format!("crash_before({op:?})@{b}"),
                DiskFaultPlan::new().crash_before(b, op),
            ));
            plans.push((
                format!("crash_after({op:?})@{b}"),
                DiskFaultPlan::new().crash_after(b, op),
            ));
        }
        for op in [DiskOp::TempWrite, DiskOp::LogAppend] {
            plans.push((
                format!("short_write({op:?})@{b}"),
                DiskFaultPlan::new().with(b, op, DiskFaultKind::ShortWrite { keep: 3 }),
            ));
        }

        for parallelism in [1usize, 4] {
            for batch in [1usize, 256] {
                let want = reference(&pkts, batch, parallelism);
                for (name, plan) in &plans {
                    let dir = scratch_dir("matrix");
                    let out =
                        run_session(&dir, Some(plan.clone()), &chunks, batch, parallelism);
                    let what = format!("{name}, par {parallelism} batch {batch}");
                    assert_eq!(out.recoveries, 1, "{what}: the injected crash must fire");
                    assert_matches(&out.acc, &want, parallelism, &what);
                    // Marker ledger: every (stream, epoch) exactly once.
                    let mut seen = out.ledger.clone();
                    seen.sort();
                    let mut expect: Vec<(String, u64)> = SUBS
                        .iter()
                        .flat_map(|s| (0..k as u64).map(move |e| (s.to_string(), e)))
                        .collect();
                    expect.sort();
                    assert_eq!(
                        seen, expect,
                        "{what}: duplicated or missing (stream, epoch) markers"
                    );
                    let _ = std::fs::remove_dir_all(&dir);
                }
            }
        }
    });
}

/// Every byte prefix of the on-disk state recovers and resumes to the
/// reference output. The log prefixes model torn appends (recovery
/// falls back past boundaries it can no longer prove were confirmed);
/// the segment prefixes model a torn publish (checksum fails, recovery
/// falls back to the older cut and flags possible duplicates).
#[test]
fn every_truncation_prefix_recovers_and_resumes() {
    check("durable_truncation_prefixes", 2, |g| {
        let pkts = trace(g);
        let k = 4usize;
        let chunks = split(g, &pkts, k);
        let (batch, parallelism) = (256usize, 1usize);
        let want = reference(&pkts, batch, parallelism);

        // Build a fully-committed state dir, remembering each epoch's
        // rows: stop before the flush, as a kill -9 would.
        let dir = scratch_dir("prefix");
        let streams: Vec<String> = SUBS.iter().map(|s| s.to_string()).collect();
        let mut carry: HashMap<String, Vec<u8>> = HashMap::new();
        let mut per_epoch: Vec<HashMap<String, Vec<Tuple>>> = Vec::new();
        {
            let (mut store, _) = DurableStore::open(
                &dir,
                Arc::new(RealDisk),
                3,
                Arc::new(DurableStats::default()),
            )
            .expect("open");
            for (e, chunk) in chunks.iter().enumerate() {
                let opts = ThreadedOptions {
                    capture: true,
                    restore: (!carry.is_empty()).then(|| Arc::new(carry.clone())),
                    ..ThreadedOptions::default()
                };
                let out = run_threaded_opts(
                    &system(batch, parallelism),
                    chunk.iter().cloned(),
                    &SUBS,
                    opts,
                )
                .expect("epoch run");
                carry = out.snapshots;
                let cursors: HashMap<String, u64> =
                    streams.iter().map(|q| (q.clone(), e as u64 + 1)).collect();
                store
                    .checkpoint(e as u64 + 1, &carry, &cursors, &streams)
                    .expect("checkpoint");
                store.log_markers(e as u64, &streams).expect("markers");
                per_epoch.push(out.streams);
            }
        }

        // Resume a damaged copy and check the combined output.
        let resume_and_check = |damaged: &Path, what: &str| {
            let (_store, rec) = DurableStore::open(
                damaged,
                Arc::new(RealDisk),
                3,
                Arc::new(DurableStats::default()),
            )
            .unwrap_or_else(|e| panic!("{what}: recovery must never be fatal: {e}"));
            assert!(
                rec.next_epoch <= k as u64,
                "{what}: recovery invented boundary {}",
                rec.next_epoch
            );
            let mut acc: HashMap<String, Vec<Tuple>> = HashMap::new();
            for epoch in per_epoch.iter().take(rec.next_epoch as usize) {
                for (s, rows) in epoch {
                    acc.entry(s.clone()).or_default().extend(rows.iter().cloned());
                }
            }
            let mut carry = rec.carry;
            for e in rec.next_epoch..k as u64 {
                let opts = ThreadedOptions {
                    capture: true,
                    restore: (!carry.is_empty()).then(|| Arc::new(carry.clone())),
                    ..ThreadedOptions::default()
                };
                let out = run_threaded_opts(
                    &system(batch, parallelism),
                    chunks[e as usize].iter().cloned(),
                    &SUBS,
                    opts,
                )
                .expect("resumed epoch");
                carry = out.snapshots;
                for (s, rows) in out.streams {
                    acc.entry(s).or_default().extend(rows);
                }
            }
            let opts = ThreadedOptions {
                capture: false,
                restore: (!carry.is_empty()).then(|| Arc::new(carry.clone())),
                ..ThreadedOptions::default()
            };
            let out = run_threaded_opts(
                &system(batch, parallelism),
                std::iter::empty::<CapPacket>(),
                &SUBS,
                opts,
            )
            .expect("resumed flush");
            for (s, rows) in out.streams {
                acc.entry(s).or_default().extend(rows);
            }
            assert_matches(&acc, &want, parallelism, what);
        };

        let copy_dir = |suffix: &str| -> PathBuf {
            let d = scratch_dir(suffix);
            std::fs::create_dir_all(&d).unwrap();
            for entry in std::fs::read_dir(&dir).unwrap() {
                let entry = entry.unwrap();
                std::fs::copy(entry.path(), d.join(entry.file_name())).unwrap();
            }
            d
        };

        // Every byte prefix of the emission log.
        let log = dir.join("emit.log");
        let log_len = std::fs::metadata(&log).unwrap().len() as usize;
        for cut in 0..log_len {
            let d = copy_dir("prefix_log");
            let bytes = std::fs::read(&log).unwrap();
            std::fs::write(d.join("emit.log"), &bytes[..cut]).unwrap();
            resume_and_check(&d, &format!("log truncated to {cut}/{log_len}"));
            let _ = std::fs::remove_dir_all(&d);
        }

        // Every byte prefix of the newest segment file.
        let mut segs: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let n = e.unwrap().file_name().into_string().unwrap();
                n.ends_with(".gsck").then_some(n)
            })
            .collect();
        segs.sort();
        let newest = segs.last().expect("segments exist").clone();
        let seg_len = std::fs::metadata(dir.join(&newest)).unwrap().len() as usize;
        for cut in 0..seg_len {
            let d = copy_dir("prefix_seg");
            let bytes = std::fs::read(dir.join(&newest)).unwrap();
            std::fs::write(d.join(&newest), &bytes[..cut]).unwrap();
            resume_and_check(&d, &format!("segment {newest} truncated to {cut}/{seg_len}"));
            let _ = std::fs::remove_dir_all(&d);
        }

        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// ENOSPC on every checkpoint write from boundary 2 on: the store
/// dead-letters each failure (counted in `write_failed`), the session
/// keeps emitting on its in-memory cut, and total output is unchanged.
#[test]
fn enospc_dead_letters_and_keeps_running() {
    check("durable_enospc_dead_letter", 3, |g| {
        let pkts = trace(g);
        let k = 3usize;
        let chunks = split(g, &pkts, k);
        let (batch, parallelism) = (256usize, 1usize);
        let want = reference(&pkts, batch, parallelism);

        let dir = scratch_dir("enospc");
        let streams: Vec<String> = SUBS.iter().map(|s| s.to_string()).collect();
        let stats = Arc::new(DurableStats::default());
        let plan = DiskFaultPlan::new().enospc(2, DiskOp::TempWrite, 99);
        let (mut store, _) =
            DurableStore::open(&dir, Arc::new(FaultyDisk::new(plan)), 3, stats.clone())
                .expect("open");

        let mut acc: HashMap<String, Vec<Tuple>> = HashMap::new();
        let mut carry: HashMap<String, Vec<u8>> = HashMap::new();
        for (e, chunk) in chunks.iter().enumerate() {
            let opts = ThreadedOptions {
                capture: true,
                restore: (!carry.is_empty()).then(|| Arc::new(carry.clone())),
                ..ThreadedOptions::default()
            };
            let out = run_threaded_opts(
                &system(batch, parallelism),
                chunk.iter().cloned(),
                &SUBS,
                opts,
            )
            .expect("epoch run");
            carry = out.snapshots;
            let cursors: HashMap<String, u64> =
                streams.iter().map(|q| (q.clone(), e as u64 + 1)).collect();
            match store.checkpoint(e as u64 + 1, &carry, &cursors, &streams) {
                Ok(()) => store.log_markers(e as u64, &streams).expect("markers"),
                Err(err) => {
                    // Dead-letter: not a crash, the session keeps
                    // running on its in-memory cut and the frames still
                    // go out (the daemon does exactly this).
                    assert!(!err.is_crash(), "ENOSPC must not read as a crash: {err}");
                }
            }
            for (s, rows) in out.streams {
                acc.entry(s).or_default().extend(rows);
            }
        }
        let opts = ThreadedOptions {
            capture: false,
            restore: (!carry.is_empty()).then(|| Arc::new(carry.clone())),
            ..ThreadedOptions::default()
        };
        let out = run_threaded_opts(
            &system(batch, parallelism),
            std::iter::empty::<CapPacket>(),
            &SUBS,
            opts,
        )
        .expect("flush");
        for (s, rows) in out.streams {
            acc.entry(s).or_default().extend(rows);
        }

        assert_matches(&acc, &want, parallelism, "enospc dead-letter");
        assert!(
            stats.write_failed.get() >= (k as u64) - 1,
            "every exhausted retry loop is counted: {}",
            stats.write_failed.get()
        );
        assert_eq!(store.segment_count(), 1, "only the pre-fault checkpoint landed");
        let _ = std::fs::remove_dir_all(&dir);
    });
}
