//! Carry-state daemon tests: with `--carry-state` the epoch scheme is a
//! *pause*, not a restart. Operator state checkpoints at every epoch
//! boundary and restores into the next, so a window spanning epoch
//! boundaries aggregates exactly as one continuous run; a faulted epoch
//! is replayed from the last good checkpoint when the query is
//! reprovisioned; and shutdown flushes the held tails. The oracle for
//! everything here is a single `run_threaded` over the concatenation of
//! every epoch's packets.
//!
//! Sources must be time-continuous across epochs for carry to make
//! sense ([`PacketSource::Chunked`]); a few empty lead-in chunks give
//! the test client time to subscribe before the first real packet, so
//! the subscriber provably observes *every* produced row.

use gigascope::manager::run_threaded;
use gigascope::server::client::Client;
use gigascope::server::wire::LifeState;
use gigascope::server::{self, DaemonConfig, PacketSource};
use gigascope::{FaultPlan, Gigascope, Tuple};
use gs_packet::capture::{CapPacket, LinkType};
use gs_tests::daemon::{norm, CLIENT_TIMEOUT};
use std::collections::HashMap;

/// Shared derived stream, a multi-key aggregate (the fault target), and
/// an innocent sibling — the same topology as the restart battery, but
/// grouped on `time` so each 1-second window spans ~10 of the 100 ms
/// epochs below.
const PROGRAM: &str = "DEFINE { query_name raw; } \
     Select time, destPort, len From eth0.tcp; \
     DEFINE { query_name agg; } \
     Select time, destPort, count(*), sum(len) From raw Group By time, destPort; \
     DEFINE { query_name sib; } \
     Select time, count(*), sum(len) From raw Group By time";

/// Number of empty lead-in chunks: the subscribe margin. At 30 ms per
/// epoch the client has ~150 ms to get its SUBSCRIBEs in, which a
/// loopback connect achieves with orders of magnitude to spare.
const LEAD_IN: usize = 5;

/// A time-continuous source: `LEAD_IN` empty chunks, then 12 × 100 ms
/// of synthetic traffic (1.2 s of stream time, so the first 1-second
/// window closes mid-session and the rest flushes at shutdown).
fn carry_source(seed: u64) -> (PacketSource, Vec<CapPacket>) {
    let PacketSource::Chunked(real) = PacketSource::chunked_synthetic(20.0, 100, 12, seed) else {
        unreachable!("chunked_synthetic returns Chunked");
    };
    let all: Vec<CapPacket> = real.iter().flatten().cloned().collect();
    let mut chunks = vec![Vec::new(); LEAD_IN];
    chunks.extend(real);
    (PacketSource::Chunked(chunks), all)
}

fn carry_config(source: PacketSource) -> DaemonConfig {
    DaemonConfig {
        source,
        epoch_gap_ms: 30,
        carry_state: true,
        initial_program: Some(PROGRAM.to_string()),
        ..DaemonConfig::default()
    }
}

fn connect(addr: std::net::SocketAddr) -> Client {
    let mut c = Client::connect(addr).expect("connect");
    c.set_timeout(Some(CLIENT_TIMEOUT)).expect("timeout");
    c
}

/// The continuous-run oracle over the full concatenated trace.
fn continuous_reference(all: &[CapPacket], subs: &[&str]) -> HashMap<String, Vec<Tuple>> {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.add_program(PROGRAM).expect("reference program");
    run_threaded(&gs, all.iter().cloned(), subs).expect("reference run").streams
}

/// Read `stream` epoch by epoch until the marker for `last_epoch` has
/// arrived, collecting rows and asserting the markers are contiguous —
/// carry mode promises exactly one marker per (stream, epoch), in
/// order, faults and backoffs notwithstanding.
fn collect_through(client: &mut Client, stream: &str, last_epoch: u64) -> Vec<Tuple> {
    let mut rows = Vec::new();
    let mut expect: Option<u64> = None;
    loop {
        let (epoch, mut r) = client.read_epoch(stream).expect("epoch read");
        if let Some(e) = expect {
            assert_eq!(epoch, e, "stream `{stream}`: markers out of order or missing");
        }
        expect = Some(epoch + 1);
        rows.append(&mut r);
        if epoch >= last_epoch {
            return rows;
        }
    }
}

/// After SHUTDOWN: drain the flush-epoch frames (held window tails)
/// until the daemon closes the socket.
fn drain_tail(client: &mut Client, collected: &mut HashMap<String, Vec<Tuple>>) {
    while let Ok(frame) = client.next_tuples() {
        collected.entry(frame.stream).or_default().extend(frame.rows);
    }
}

#[test]
fn windows_spanning_epochs_aggregate_as_one_continuous_run() {
    let (source, all) = carry_source(0xCA221);
    let last_epoch = (LEAD_IN + 12 - 1) as u64;
    let mut daemon = server::start(carry_config(source)).expect("daemon start");
    let mut client = connect(daemon.addr());
    client.subscribe("agg").expect("subscribe agg");
    client.subscribe("sib").expect("subscribe sib");

    let mut collected = HashMap::new();
    for stream in ["agg", "sib"] {
        collected.insert(stream.to_string(), collect_through(&mut client, stream, last_epoch));
    }
    client.shutdown().expect("shutdown");
    drain_tail(&mut client, &mut collected);

    let reference = continuous_reference(&all, &["agg", "sib"]);
    for stream in ["agg", "sib"] {
        assert!(
            !collected[stream].is_empty(),
            "carry session produced no `{stream}` rows at all"
        );
        assert_eq!(
            norm(&collected[stream]),
            norm(&reference[stream]),
            "stream `{stream}`: carry session total diverges from the continuous run"
        );
    }
    daemon.shutdown();
}

#[test]
fn faulted_epoch_is_replayed_from_checkpoint_and_totals_match() {
    let (source, all) = carry_source(0xCA222);
    let last_epoch = (LEAD_IN + 12 - 1) as u64;
    // Panic agg's HFTA on its first batch of epoch 6 (mid-window: the
    // first 1-second group is open and must survive in the checkpoint).
    // One restart: backoff covers epoch 7, the epoch-8 boundary replays
    // epochs 6 and 7 from agg's last good cut, then the live epoch runs.
    let mut config = carry_config(source);
    config.faults = Some(FaultPlan::new().panic_at("agg", 1));
    config.fault_epochs = 6..7;
    config.restart_budget = 3;
    config.backoff_base = 1;
    let mut daemon = server::start(config).expect("daemon start");
    let mut client = connect(daemon.addr());
    client.subscribe("agg").expect("subscribe agg");
    client.subscribe("sib").expect("subscribe sib");

    // Marker contiguity inside collect_through doubles as the replay
    // check: epoch 6's marker only ever arrives via catch-up replay.
    let mut collected = HashMap::new();
    for stream in ["agg", "sib"] {
        collected.insert(stream.to_string(), collect_through(&mut client, stream, last_epoch));
    }

    // Exactly one restart charged, and the query is running again.
    let health = client.health().expect("health");
    let agg = health.iter().find(|r| r.query == "agg").expect("agg row");
    assert_eq!(agg.state, LifeState::Running, "agg must be reprovisioned");
    assert_eq!(agg.restarts, 1, "exactly one restart charged");
    assert_eq!(daemon.registry().value("daemon:restart:agg", "restarts"), Some(1));

    client.shutdown().expect("shutdown");
    drain_tail(&mut client, &mut collected);

    let reference = continuous_reference(&all, &["agg", "sib"]);
    for stream in ["agg", "sib"] {
        assert_eq!(
            norm(&collected[stream]),
            norm(&reference[stream]),
            "stream `{stream}`: fault + replay session diverges from the fault-free run"
        );
    }
    daemon.shutdown();
}
