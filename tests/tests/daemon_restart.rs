//! Auto-restart regression tests for the daemon's lifecycle supervisor.
//!
//! Both tests inject a seeded [`FaultPlan`] panic into the `agg` HFTA
//! through the daemon:
//!
//! - **Resume**: the fault fires once (epoch 0 only). The supervisor
//!   charges one restart, backs `agg` off for a window, and
//!   reprovisions it from the catalog — after which its output is
//!   again identical to the one-shot engine, while the sibling `sib`
//!   never misses an epoch.
//! - **Budget exhaustion**: the fault fires on every epoch the query
//!   runs. Restarts burn 1, 2, 3 (= budget), then the query goes
//!   `Dead` with the restart count on the health board and in
//!   `GS_STATS` under `daemon:restart:agg` — and the sibling still
//!   matches the one-shot engine throughout.

use gigascope::server::client::Client;
use gigascope::server::wire::LifeState;
use gigascope::server::{self, DaemonConfig, PacketSource};
use gigascope::FaultPlan;
use gs_tests::daemon::{norm, one_shot_epoch, small_source, test_config, CLIENT_TIMEOUT};
use std::time::{Duration, Instant};

/// Same topology as the fault-injection gate: a shared derived stream,
/// a fault-target aggregate, and an innocent sibling.
const PROGRAM: &str = "DEFINE { query_name raw; } \
     Select time, destPort, len From eth0.tcp; \
     DEFINE { query_name agg; } \
     Select time, destPort, count(*), sum(len) From raw Group By time, destPort; \
     DEFINE { query_name sib; } \
     Select time, count(*), sum(len) From raw Group By time";

fn faulted_config(source: &PacketSource, fault_epochs: std::ops::Range<u64>) -> DaemonConfig {
    let mut config = test_config(source.clone());
    config.initial_program = Some(PROGRAM.to_string());
    config.faults = Some(FaultPlan::new().panic_at("agg", 1));
    config.fault_epochs = fault_epochs;
    config.restart_budget = 3;
    config.backoff_base = 1;
    config
}

fn connect(addr: std::net::SocketAddr) -> Client {
    let mut c = Client::connect(addr).expect("connect");
    c.set_timeout(Some(CLIENT_TIMEOUT)).expect("timeout");
    c
}

#[test]
fn panicked_query_is_reprovisioned_and_resumes() {
    let source = small_source(0x5E5);
    // Fault in epoch 0 only: agg panics once, restarts once (backoff
    // window = epochs [1, 2)), and runs clean from epoch 2 on.
    let mut daemon = server::start(faulted_config(&source, 0..1)).expect("daemon start");
    let mut client = connect(daemon.addr());

    // Let the fault epoch complete before subscribing, so every epoch
    // we observe is post-fault (the quarantined prefix of epoch 0 is
    // covered by prop_faults; here we care about the *resumed* query).
    client.wait_epoch(1).expect("fault epoch complete");
    client.subscribe("agg").expect("subscribe agg");
    client.subscribe("sib").expect("subscribe sib");

    let mut clean_agg_epochs = 0;
    while clean_agg_epochs < 2 {
        let (epoch, rows) = client.read_epoch("agg").expect("agg epoch");
        if epoch < 2 {
            // Backoff window: the query is excluded, its epoch is
            // explicitly empty (bare marker).
            assert!(rows.is_empty(), "agg must be excluded during backoff, epoch {epoch}");
            continue;
        }
        let reference = one_shot_epoch(PROGRAM, &source, epoch, &["agg"]);
        assert_eq!(
            norm(&rows),
            norm(&reference["agg"]),
            "resumed agg diverges from one-shot engine at epoch {epoch}"
        );
        clean_agg_epochs += 1;
    }
    // The sibling never noticed: every observed epoch matches.
    for _ in 0..2 {
        let (epoch, rows) = client.read_epoch("sib").expect("sib epoch");
        let reference = one_shot_epoch(PROGRAM, &source, epoch, &["sib"]);
        assert_eq!(
            norm(&rows),
            norm(&reference["sib"]),
            "sibling sib diverges at epoch {epoch}"
        );
    }

    // Exactly one restart, charged to agg alone, visible on the health
    // board and in GS_STATS.
    let health = client.health().expect("health");
    let agg = health.iter().find(|r| r.query == "agg").expect("agg row");
    assert_eq!(agg.state, LifeState::Running, "agg resumed");
    assert_eq!(agg.restarts, 1, "exactly one restart charged");
    for name in ["raw", "sib"] {
        let row = health.iter().find(|r| r.query == name).expect("row");
        assert_eq!((row.state, row.restarts), (LifeState::Running, 0), "{name} untouched");
    }
    assert_eq!(daemon.registry().value("daemon:restart:agg", "restarts"), Some(1));
    assert_eq!(daemon.registry().value("daemon:restart:agg", "dead"), Some(0));

    daemon.shutdown();
}

#[test]
fn restart_budget_exhaustion_ends_dead_with_count_in_stats() {
    let source = small_source(0xDEAD);
    // Fault armed on every epoch: each reprovision panics again. With
    // budget 3 the failures burn restarts 1, 2, 3 and the fourth root-
    // cause failure retires the query for good.
    let mut daemon = server::start(faulted_config(&source, 0..u64::MAX)).expect("daemon start");
    let mut client = connect(daemon.addr());
    client.subscribe("sib").expect("subscribe sib");

    // Wait for the supervisor to give up on agg.
    let deadline = Instant::now() + Duration::from_secs(30);
    let agg_dead = loop {
        let health = client.health().expect("health");
        let agg = health.iter().find(|r| r.query == "agg").expect("agg row");
        if agg.state == LifeState::Dead {
            break agg.clone();
        }
        assert!(Instant::now() < deadline, "agg never exhausted its budget: {health:?}");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(agg_dead.restarts, 3, "full budget consumed before giving up");
    assert!(!agg_dead.reason.is_empty(), "death certificate carries the fault reason");

    // GS_STATS agrees, both through the registry and over the wire.
    let registry = daemon.registry();
    assert_eq!(registry.value("daemon:restart:agg", "restarts"), Some(3));
    assert_eq!(registry.value("daemon:restart:agg", "dead"), Some(1));
    let stats = client.stats().expect("stats");
    assert!(
        stats.iter().any(|(n, c, v)| n == "daemon:restart:agg" && c == "restarts" && *v == 3),
        "restart count must be exported over STATS: {stats:?}"
    );

    // Sibling outputs unchanged through all of it: whatever epochs we
    // observe, they match the fault-free one-shot engine.
    for _ in 0..3 {
        let (epoch, rows) = client.read_epoch("sib").expect("sib epoch");
        let reference = one_shot_epoch(PROGRAM, &source, epoch, &["sib"]);
        assert_eq!(
            norm(&rows),
            norm(&reference["sib"]),
            "sibling sib diverges at epoch {epoch} while agg dies"
        );
    }
    // A dead query stays dead: no further restarts accrue.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(registry.value("daemon:restart:agg", "restarts"), Some(3));

    daemon.shutdown();
}
