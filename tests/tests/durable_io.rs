//! Atomic-publish regression tests for the durable IO helpers —
//! chiefly the `gsqd --port-file` path: CI polls that file while the
//! daemon is still starting, so a reader must see the whole previous
//! value or the whole new value, never a torn prefix.

use gs_runtime::durable::atomic_write_file;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Hammer `atomic_write_file` from a writer thread while a reader polls
/// the same path: every read observes exactly one of the two payloads,
/// in full. A plain `fs::write` reliably fails this on the first
/// iterations (the reader catches the file mid-truncate or mid-write).
#[test]
fn concurrent_reader_never_observes_a_partial_port_file() {
    let dir = std::env::temp_dir().join(format!("gs_durable_io_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("gsqd.port");

    // Two visibly different full values of different lengths, so any
    // torn or mixed state is detectable.
    let a = b"127.0.0.1:5123".to_vec();
    let b = b"[::1]:49152 # rebound after restart".to_vec();
    atomic_write_file(&path, &a).expect("seed write");

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let (path, a, b, stop) = (path.clone(), a.clone(), b.clone(), stop.clone());
        std::thread::spawn(move || {
            for i in 0..400 {
                let payload = if i % 2 == 0 { &b } else { &a };
                atomic_write_file(&path, payload).expect("atomic write");
            }
            stop.store(true, Ordering::SeqCst);
        })
    };

    let mut reads = 0u64;
    while !stop.load(Ordering::SeqCst) {
        let got = std::fs::read(&path).expect("the file must always exist");
        assert!(
            got == a || got == b,
            "torn read: {} bytes {:?}",
            got.len(),
            String::from_utf8_lossy(&got)
        );
        reads += 1;
    }
    writer.join().expect("writer thread");
    assert!(reads > 0, "the reader must actually have raced the writer");

    // No temp droppings survive the churn.
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .expect("list")
        .map(|e| e.expect("entry").file_name().into_string().expect("name"))
        .filter(|n| n != "gsqd.port")
        .collect();
    assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
