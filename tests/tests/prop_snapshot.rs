//! Property tests: torn and corrupt operator-state snapshots are
//! rejected whole and degrade to an empty-window restart, never a crash
//! and never silently wrong state.
//!
//! A checkpoint file can be truncated by a crash mid-write, scribbled
//! on by a failing disk, or handed over from an incompatible build. The
//! snapshot codec seals every payload behind a magic, a version byte,
//! and a trailing FNV-1a checksum; these properties feed **every
//! truncation prefix** and random byte corruptions of valid sealed
//! snapshots through [`SnapReader::open`] (mirroring `prop_truncate`'s
//! every-prefix discipline for packets), then drive the same garbage
//! through a full threaded run's restore path and assert the engine
//! falls back to pristine empty-window state with the rejection
//! reported on [`RunHealth::notes`].

use gigascope::health::query_of;
use gigascope::manager::{run_threaded, run_threaded_opts, ThreadedOptions};
use gigascope::{Gigascope, Tuple};
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use gs_runtime::snapshot::{SnapReader, SnapWriter};
use gs_tests::prop::{check, Gen};
use std::sync::Arc;

/// A sealed snapshot with a random mix of every field kind the
/// operators actually serialize.
fn arb_sealed(g: &mut Gen) -> Vec<u8> {
    let mut w = SnapWriter::new();
    for _ in 0..g.usize(1..12) {
        match g.usize(0..7) {
            0 => w.put_u8(g.u8(0..u8::MAX)),
            1 => w.put_u32(g.u32(0..u32::MAX)),
            2 => w.put_u64(g.u64(0..u64::MAX)),
            3 => w.put_f64(g.u64(0..1 << 52) as f64),
            4 => w.put_bytes(&g.bytes(0..32)),
            5 => w.put_str("group"),
            6 => w.put_opt_u64(if g.bool() { Some(g.u64(0..u64::MAX)) } else { None }),
            _ => unreachable!(),
        }
    }
    w.seal()
}

#[test]
fn every_truncation_prefix_of_a_sealed_snapshot_is_rejected() {
    check("snapshot_truncate", 64, |g| {
        let sealed = arb_sealed(g);
        assert!(SnapReader::open(&sealed).is_ok(), "the untouched seal must verify");
        for cut in 0..sealed.len() {
            assert!(
                SnapReader::open(&sealed[..cut]).is_err(),
                "truncation to {cut}/{} bytes must be rejected",
                sealed.len()
            );
        }
    });
}

#[test]
fn corrupted_and_padded_snapshots_are_rejected() {
    check("snapshot_corrupt", 64, |g| {
        let sealed = arb_sealed(g);
        // Any single flipped byte — magic, version, payload, or the
        // checksum itself — must break verification.
        let mut torn = sealed.clone();
        let at = g.usize(0..torn.len());
        torn[at] ^= g.u8(1..u8::MAX).max(1);
        assert!(
            SnapReader::open(&torn).is_err(),
            "flipped byte at {at}/{} must be rejected",
            torn.len()
        );
        // Trailing garbage shifts the checksum window: also rejected.
        let mut padded = sealed;
        padded.extend(g.bytes(1..9));
        assert!(SnapReader::open(&padded).is_err(), "trailing garbage must be rejected");
    });
}

// ---- End-to-end fallback through the engine's restore path ----------

/// Split aggregation plus an interface-direct super-aggregate, so a
/// capture produces both `hfta:*` and `lfta:*` (direct-mapped table)
/// snapshot entries.
const PROGRAM: &str = "DEFINE { query_name raw; } \
     Select time, destPort, len From eth0.tcp; \
     DEFINE { query_name agg; } \
     Select time, destPort, count(*), sum(len) From raw Group By time, destPort; \
     DEFINE { query_name tot; } \
     Select time, count(*), sum(len) From eth0.tcp Group By time";
const SUBS: [&str; 3] = ["agg", "tot", "raw"];

fn system() -> Gigascope {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.add_program(PROGRAM).unwrap();
    gs
}

/// A time-ordered trace (same shape as the manager properties).
fn trace(g: &mut Gen) -> Vec<CapPacket> {
    let n = g.usize(30..200);
    let mut ts_ns = 0u64;
    (0..n)
        .map(|i| {
            ts_ns += g.u64(0..2_000_000_000);
            let dport = *g.choice(&[80u16, 443, 25, 53]);
            let payload = vec![0u8; g.usize(0..64)];
            let f = FrameBuilder::tcp(0x0a000000 + i as u32, 0xc0a80001, 1024, dport)
                .payload(&payload)
                .build_ethernet();
            CapPacket::full(ts_ns, 0, LinkType::Ethernet, f)
        })
        .collect()
}

/// Multiset normalization: every tuple as its row of uints, sorted.
fn norm(tuples: &[Tuple]) -> Vec<Vec<u64>> {
    let mut rows: Vec<Vec<u64>> = tuples
        .iter()
        .map(|t| t.values().iter().filter_map(|v| v.as_uint()).collect())
        .collect();
    rows.sort();
    rows
}

/// The query a manager snapshot key (`hfta:<stream>` / `lfta:<stream>`)
/// belongs to.
fn owner(key: &str) -> &str {
    query_of(key.split_once(':').map_or(key, |(_, s)| s))
}

/// Restoring a map in which one entry is torn (truncated or bit-flipped
/// at a random offset) must run to completion from empty windows for
/// the damaged query — byte-for-byte what a fresh start produces — with
/// the rejection reported as a health note, while intact entries still
/// restore.
#[test]
fn torn_restore_falls_back_to_empty_windows_with_a_note() {
    check("snapshot_fallback", 12, |g| {
        let pkts = trace(g);
        let cut = g.usize(1..pkts.len());
        let (first, second) = pkts.split_at(cut);

        // A real checkpoint to damage.
        let opts = ThreadedOptions { capture: true, ..ThreadedOptions::default() };
        let snaps = run_threaded_opts(&system(), first.iter().cloned(), &SUBS, opts)
            .expect("capture run")
            .snapshots;
        assert!(
            snaps.keys().any(|k| k.starts_with("hfta:"))
                && snaps.keys().any(|k| k.starts_with("lfta:")),
            "capture must cover both layers: {:?}",
            snaps.keys().collect::<Vec<_>>()
        );

        // Damage every entry of one query (a query's state may span an
        // LFTA and an HFTA layer; fresh-start equivalence needs the
        // whole cut gone). Entries of other queries stay intact.
        let mut keys: Vec<&String> = snaps.keys().collect();
        keys.sort();
        let victim = (*g.choice(&keys)).clone();
        let victim_query = owner(&victim).to_string();
        let mut damaged = snaps.clone();
        for (key, bytes) in damaged.iter_mut() {
            if owner(key) != victim_query {
                continue;
            }
            if g.bool() {
                bytes.truncate(g.usize(0..bytes.len()));
            } else {
                let at = g.usize(0..bytes.len());
                bytes[at] ^= g.u8(1..u8::MAX).max(1);
            }
        }

        let opts = ThreadedOptions {
            restore: Some(Arc::new(damaged)),
            ..ThreadedOptions::default()
        };
        let out = run_threaded_opts(&system(), second.iter().cloned(), &SUBS, opts)
            .expect("restore run must not crash on a torn snapshot");
        assert!(out.health.all_ok(), "a torn snapshot must not fail the query");
        assert!(
            !out.health.notes_of(&victim_query).is_empty(),
            "rejection of `{victim}` must be reported on RunHealth::notes"
        );

        // The damaged query's output equals a fresh empty-window run
        // over the same packets. (Intact siblings restored state, so
        // only the victim is compared against from-empty.)
        let fresh = run_threaded(&system(), second.iter().cloned(), &SUBS).expect("fresh run");
        for name in SUBS {
            if query_of(name) == victim_query {
                assert_eq!(
                    norm(out.stream(name)),
                    norm(fresh.stream(name)),
                    "victim `{name}` must resume from empty windows"
                );
            }
        }
    });
}

// ---- Size caps -------------------------------------------------------

/// A group table the size real long-horizon aggregation reaches — a few
/// MB of keyed entries — survives a seal/open round trip bit-exactly.
/// The codec has no small-buffer assumptions: lengths, counts, and the
/// trailing checksum all hold at this scale.
#[test]
fn large_group_tables_round_trip() {
    check("snapshot_large_table", 2, |g| {
        let n = g.usize(60_000..90_000);
        let mut w = SnapWriter::new();
        w.put_u32(n as u32);
        let mut want = Vec::with_capacity(n);
        for i in 0..n {
            let key = format!("group-{i:08}");
            let count = g.u64(0..u64::MAX);
            let sum = g.u64(0..u64::MAX);
            w.put_str(&key);
            w.put_u64(count);
            w.put_u64(sum);
            want.push((key, count, sum));
        }
        let sealed = w.seal();
        assert!(sealed.len() > 1 << 20, "the table must actually be MB-scale");

        let mut r = SnapReader::open(&sealed).expect("open");
        let back = r.get_count(8).expect("count");
        assert_eq!(back, n);
        for (key, count, sum) in want {
            assert_eq!(r.get_str().expect("key"), key);
            assert_eq!(r.get_u64().expect("count"), count);
            assert_eq!(r.get_u64().expect("sum"), sum);
        }
        r.finish().expect("fully consumed");
    });
}

/// A length field promising more bytes than the buffer holds is
/// rejected *before* any allocation: `get_bytes` validates the declared
/// length against the remaining payload, `get_count` bounds element
/// counts the same way, and `peek_u32` exposes the declared length so
/// callers with their own caps (the durable store's per-entry cap) can
/// refuse without consuming anything.
#[test]
fn declared_lengths_beyond_the_buffer_are_rejected_before_allocation() {
    // 4 GiB declared, 1 byte present.
    let mut w = SnapWriter::new();
    w.put_u32(u32::MAX);
    w.put_u8(7);
    let sealed = w.seal();
    let mut r = SnapReader::open(&sealed).expect("seal verifies");
    assert_eq!(r.peek_u32(), Some(u32::MAX), "peek exposes the declared length");
    assert_eq!(r.peek_u32(), Some(u32::MAX), "peek must not consume");
    assert!(r.get_bytes().is_err(), "oversized declared length must be refused");

    // An element count that cannot fit the remaining payload.
    let mut w = SnapWriter::new();
    w.put_u32(u32::MAX);
    let sealed = w.seal();
    let mut r = SnapReader::open(&sealed).expect("seal verifies");
    assert!(
        r.get_count(8).is_err(),
        "a count promising 32 GiB of elements must be refused"
    );
}
