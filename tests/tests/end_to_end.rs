//! End-to-end integration: GSQL text in, packets in, correct tuples out —
//! checked against oracle computations over the same packets.

use gigascope::manager::run_threaded;
use gigascope::{Gigascope, ParamBindings, Value};
use gs_netgen::{MixConfig, PacketMix};
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use gs_tests::{oracle_port_count_bytes, oracle_port_counts, oracle_src_counts};
use std::collections::BTreeMap;

fn system() -> Gigascope {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.add_interface("eth1", 1, LinkType::Ethernet);
    gs
}

fn mix(seed: u64, ms: u64) -> Vec<CapPacket> {
    PacketMix::new(MixConfig {
        seed,
        duration_ms: ms,
        http_rate_mbps: 30.0,
        background_rate_mbps: 50.0,
        ..MixConfig::default()
    })
    .collect()
}

#[test]
fn selection_matches_oracle() {
    let mut gs = system();
    gs.add_program(
        "DEFINE { query_name q; } Select time, destPort From eth0.tcp Where destPort = 80",
    )
    .unwrap();
    let pkts = mix(1, 700);
    let expected: u64 = oracle_port_counts(&pkts, 80).values().sum();
    let out = gs.run_capture(pkts.into_iter(), &["q"]).unwrap();
    assert_eq!(out.stream("q").len() as u64, expected);
}

#[test]
fn split_aggregation_matches_oracle_exactly() {
    let mut gs = system();
    gs.add_program(
        "DEFINE { query_name q; } \
         Select time, count(*), sum(len) From eth0.tcp Where destPort = 80 Group By time",
    )
    .unwrap();
    let pkts = mix(2, 1500);
    let expected = oracle_port_count_bytes(&pkts, 80);
    let out = gs.run_capture(pkts.into_iter(), &["q"]).unwrap();
    let got: BTreeMap<u64, (u64, u64)> = out
        .stream("q")
        .iter()
        .map(|t| {
            (
                t.get(0).as_uint().unwrap(),
                (t.get(1).as_uint().unwrap(), t.get(2).as_uint().unwrap()),
            )
        })
        .collect();
    assert_eq!(got, expected, "sub/super-aggregation must be lossless");
    // The split actually happened: the LFTA emitted fewer tuples than
    // packets but more than final groups (evidence of partials).
    let dm = out.stats.lfta_tables.get("q__lfta0").expect("pre-aggregating LFTA");
    assert!(dm.inputs > dm.outputs || dm.outputs >= got.len() as u64);
}

#[test]
fn avg_split_equals_true_mean() {
    let mut gs = system();
    gs.add_program(
        "DEFINE { query_name q; } Select time, avg(len) From eth0.ip Group By time",
    )
    .unwrap();
    let pkts = mix(3, 800);
    // Oracle mean per second over all IP packets.
    let mut sums: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for p in &pkts {
        let e = sums.entry(u64::from(p.time_sec())).or_insert((0, 0));
        e.0 += u64::from(p.wire_len);
        e.1 += 1;
    }
    let out = gs.run_capture(pkts.into_iter(), &["q"]).unwrap();
    for t in out.stream("q") {
        let sec = t.get(0).as_uint().unwrap();
        let avg = t.get(1).as_float().unwrap();
        let (s, n) = sums[&sec];
        let expected = s as f64 / n as f64;
        assert!((avg - expected).abs() < 1e-9, "sec {sec}: {avg} vs {expected}");
    }
    assert_eq!(out.stream("q").len(), sums.len());
}

#[test]
fn group_by_src_ip_matches_oracle() {
    let mut gs = system();
    gs.add_program(
        "DEFINE { query_name q; } Select time, srcIP, count(*) From eth0.ip Group By time, srcIP",
    )
    .unwrap();
    let pkts = mix(4, 400);
    let expected = oracle_src_counts(&pkts);
    let out = gs.run_capture(pkts.into_iter(), &["q"]).unwrap();
    let got: BTreeMap<(u64, u32), u64> = out
        .stream("q")
        .iter()
        .map(|t| {
            let sec = t.get(0).as_uint().unwrap();
            let Value::Ip(src) = t.get(1) else { panic!("srcIP must be an address") };
            ((sec, *src), t.get(2).as_uint().unwrap())
        })
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn having_filters_groups() {
    let mut gs = system();
    gs.add_program(
        "DEFINE { query_name all_groups; } \
         Select time, count(*) From eth0.tcp Group By time; \
         DEFINE { query_name big_groups; } \
         Select time, count(*) From eth0.tcp Group By time Having count(*) > $min",
    )
    .unwrap();
    gs.set_params("big_groups", ParamBindings::new().with("min", Value::UInt(10))).unwrap();
    // Second s carries s+1 packets, s in 0..20: exactly ten groups exceed 10.
    let mut pkts = Vec::new();
    for s in 0..20u64 {
        for k in 0..=s {
            let f = FrameBuilder::tcp(1, 2, 9, 80).build_ethernet();
            pkts.push(CapPacket::full(s * 1_000_000_000 + k, 0, LinkType::Ethernet, f));
        }
    }
    let out = gs.run_capture(pkts.into_iter(), &["all_groups", "big_groups"]).unwrap();
    let all = out.stream("all_groups");
    let big = out.stream("big_groups");
    assert_eq!(all.len(), 20);
    assert_eq!(big.len(), 10);
    assert!(big.iter().all(|t| t.get(1).as_uint().unwrap() > 10));
}

#[test]
fn http_fraction_equals_ground_truth() {
    // The §4 experiment's query pair, checked against generator truth.
    let mut gs = system();
    gs.add_program(
        "DEFINE { query_name all80; } \
         Select time, count(*) From eth0.tcp Where destPort = 80 Group By time; \
         DEFINE { query_name http80; } \
         Select time, count(*) From eth0.tcp \
         Where destPort = 80 and str_match_regex(payload, '^[^\\n]*HTTP/1.*') \
         Group By time",
    )
    .unwrap();
    let mut mix = PacketMix::new(MixConfig {
        seed: 6,
        duration_ms: 1000,
        http_rate_mbps: 40.0,
        http_match_fraction: 0.6,
        near_miss_fraction: 0.3,
        background_rate_mbps: 40.0,
        ..MixConfig::default()
    });
    let pkts: Vec<CapPacket> = (&mut mix).collect();
    let truth = mix.truth();
    let out = gs.run_capture(pkts.into_iter(), &["all80", "http80"]).unwrap();
    let sum = |name: &str| -> u64 {
        out.stream(name).iter().map(|t| t.get(1).as_uint().unwrap()).sum()
    };
    assert_eq!(sum("all80"), truth.port80_pkts);
    assert_eq!(sum("http80"), truth.http_match_pkts, "anchored regex must reject near-misses");
}

#[test]
fn merge_preserves_order_across_interfaces() {
    let mut gs = system();
    gs.add_program(
        "DEFINE { query_name a; } Select time, len From eth0.tcp; \
         DEFINE { query_name b; } Select time, len From eth1.tcp; \
         DEFINE { query_name m; } Merge a.time : b.time From a, b",
    )
    .unwrap();
    // Interleaved traffic on both interfaces.
    let mut pkts = Vec::new();
    for i in 0..400u64 {
        let f = FrameBuilder::tcp(1, 2, 9, 80).payload(&[0u8; 10]).build_ethernet();
        pkts.push(CapPacket::full(i * 137_000_000, (i % 2) as u16, LinkType::Ethernet, f));
    }
    let out = gs.run_capture(pkts.into_iter(), &["m"]).unwrap();
    let times: Vec<u64> = out.stream("m").iter().map(|t| t.get(0).as_uint().unwrap()).collect();
    assert_eq!(times.len(), 400);
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "merge output must stay ordered");
}

#[test]
fn composed_three_level_pipeline() {
    // selection -> merge -> aggregation, all by name composition.
    let mut gs = system();
    gs.add_program(
        "DEFINE { query_name s0; } Select time, len From eth0.tcp Where destPort = 80; \
         DEFINE { query_name s1; } Select time, len From eth1.tcp Where destPort = 80; \
         DEFINE { query_name m; } Merge s0.time : s1.time From s0, s1; \
         DEFINE { query_name agg; } Select time, count(*), sum(len) From m Group By time",
    )
    .unwrap();
    let mut pkts = Vec::new();
    for i in 0..600u64 {
        let port = if i % 3 == 0 { 80 } else { 443 };
        let f = FrameBuilder::tcp(1, 2, 9, port).payload(&[0u8; 50]).build_ethernet();
        pkts.push(CapPacket::full(i * 10_000_000, (i % 2) as u16, LinkType::Ethernet, f));
    }
    let expected = oracle_port_counts(&pkts, 80);
    let out = gs.run_capture(pkts.into_iter(), &["agg"]).unwrap();
    let got: BTreeMap<u64, u64> = out
        .stream("agg")
        .iter()
        .map(|t| (t.get(0).as_uint().unwrap(), t.get(1).as_uint().unwrap()))
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn join_over_two_protocol_streams() {
    let mut gs = system();
    gs.add_program(
        "DEFINE { query_name j; } \
         Select B.time, B.srcIP FROM eth0.tcp B, eth1.tcp C \
         WHERE B.time = C.time and B.srcIP = C.srcIP and B.id = C.id",
    )
    .unwrap();
    // Build matched pairs: identical (src, id, second) on both interfaces.
    let mut pkts = Vec::new();
    let mut expected = 0u64;
    for i in 0..300u64 {
        let f0 = FrameBuilder::tcp(100 + i as u32, 2, 9, 80).ip_id(i as u16).build_ethernet();
        pkts.push(CapPacket::full(i * 100_000_000, 0, LinkType::Ethernet, f0));
        if i % 4 == 0 {
            let f1 = FrameBuilder::tcp(100 + i as u32, 2, 9, 80).ip_id(i as u16).build_ethernet();
            pkts.push(CapPacket::full(i * 100_000_000 + 1, 1, LinkType::Ethernet, f1));
            expected += 1;
        }
    }
    let out = gs.run_capture(pkts.into_iter(), &["j"]).unwrap();
    assert_eq!(out.stream("j").len() as u64, expected);
}

#[test]
fn netflow_pipeline_with_lpm() {
    let mut gs = Gigascope::new();
    gs.add_interface("nf0", 0, LinkType::NetflowRecord);
    // Generated destinations live in 192.168.{0..11}.x: a /22 nested in
    // the /16 splits them across two peers and exercises LPM.
    gs.add_file("peers.tbl", "192.168.0.0/22 1\n192.168.0.0/16 2\n");
    gs.add_program(
        "DEFINE { query_name q; } \
         Select peerid, count(*) FROM nf0.netflow \
         Group by getlpmid(destIP, 'peers.tbl') as peerid, time/60 as tb",
    )
    .unwrap();
    let records = gs_netgen::netflowgen::generate_netflow(&gs_netgen::netflowgen::NetflowGenConfig {
        seed: 7,
        flow_count: 3_000,
        ..Default::default()
    });
    let n = records.len() as u64;
    let out = gs.run_capture(records.into_iter(), &["q"]).unwrap();
    // Every record's destination is in 192.168/16, so every record lands
    // on peer 1 or 2 and nothing is discarded.
    let total: u64 = out.stream("q").iter().map(|t| t.get(1).as_uint().unwrap()).sum();
    assert_eq!(total, n);
    let peers: std::collections::HashSet<u64> =
        out.stream("q").iter().map(|t| t.get(0).as_uint().unwrap()).collect();
    assert_eq!(peers, [1u64, 2].into_iter().collect());
}

#[test]
fn bgp_counts_by_type() {
    let mut gs = Gigascope::new();
    gs.add_interface("bgp0", 0, LinkType::BgpUpdate);
    gs.add_program(
        "DEFINE { query_name q; } \
         Select msgType, count(*) From bgp0.bgp Group By time/3600 as tb, msgType",
    )
    .unwrap();
    let feed = gs_netgen::bgpgen::generate_bgp(&gs_netgen::bgpgen::BgpGenConfig {
        seed: 8,
        updates: 5_000,
        withdraw_fraction: 0.25,
        ..Default::default()
    });
    let n = feed.len() as u64;
    let out = gs.run_capture(feed.into_iter(), &["q"]).unwrap();
    let total: u64 = out.stream("q").iter().map(|t| t.get(1).as_uint().unwrap()).sum();
    assert_eq!(total, n);
}

#[test]
fn heartbeats_flush_aggregates_without_later_packets() {
    // A lone packet in the last second: without end-of-stream the group
    // would stay open; the heartbeat closes it when the clock advances.
    let mut gs = system();
    gs.heartbeat = gs_runtime::punct::HeartbeatMode::Periodic { interval: 1 };
    gs.add_program(
        "DEFINE { query_name q; } Select time, count(*) From eth0.tcp Group By time",
    )
    .unwrap();
    let f = |sec: u64| {
        CapPacket::full(
            sec * 1_000_000_000,
            0,
            LinkType::Ethernet,
            FrameBuilder::tcp(1, 2, 9, 80).build_ethernet(),
        )
    };
    let out = gs.run_capture(vec![f(1), f(1), f(5)].into_iter(), &["q"]).unwrap();
    let rows: Vec<(u64, u64)> = out
        .stream("q")
        .iter()
        .map(|t| (t.get(0).as_uint().unwrap(), t.get(1).as_uint().unwrap()))
        .collect();
    assert_eq!(rows, vec![(1, 2), (5, 1)]);
}

#[test]
fn snaplen_does_not_break_header_queries() {
    // Header-only query gets a snap length; results must be identical to
    // full capture semantics.
    let mut gs = system();
    let infos = gs
        .add_program(
            "DEFINE { query_name q; } Select time, destPort, len From eth0.tcp Where destPort = 80",
        )
        .unwrap();
    assert_eq!(infos[0].lftas, 1);
    let pkts = mix(10, 300);
    let expected: u64 = oracle_port_counts(&pkts, 80).values().sum();
    let out = gs.run_capture(pkts.into_iter(), &["q"]).unwrap();
    assert_eq!(out.stream("q").len() as u64, expected);
    // The wire length survives snapping.
    assert!(out.stream("q").iter().all(|t| t.get(2).as_uint().unwrap() >= 64));
}

#[test]
fn bursty_traffic_runs_clean() {
    let mut gs = system();
    gs.add_program(
        "DEFINE { query_name q; } Select time, count(*) From eth0.ip Group By time",
    )
    .unwrap();
    let pkts: Vec<CapPacket> = PacketMix::new(MixConfig {
        seed: 11,
        duration_ms: 1500,
        bursty_background: true,
        background_rate_mbps: 120.0,
        http_rate_mbps: 0.0,
        ..MixConfig::default()
    })
    .collect();
    let n = pkts.len() as u64;
    let out = gs.run_capture(pkts.into_iter(), &["q"]).unwrap();
    let total: u64 = out.stream("q").iter().map(|t| t.get(1).as_uint().unwrap()).sum();
    assert_eq!(total, n);
}

#[test]
fn from_clause_subquery_composes() {
    // The paper's §5 research direction, desugared by the parser into
    // named composition.
    let mut gs = system();
    gs.add_program(
        "DEFINE { query_name per_minute; } \
         Select tb, count(*) \
         FROM (Select time/60 as tb, destPort FROM eth0.tcp Where destPort = 80) S \
         Group By tb",
    )
    .unwrap();
    let pkts = mix(12, 900);
    let expected: u64 = oracle_port_counts(&pkts, 80).values().sum();
    let out = gs.run_capture(pkts.into_iter(), &["per_minute"]).unwrap();
    let total: u64 = out.stream("per_minute").iter().map(|t| t.get(1).as_uint().unwrap()).sum();
    assert_eq!(total, expected);
}

#[test]
fn analyst_sampling_is_deterministic_and_proportional() {
    let run_with = |sample: &str| {
        let mut gs = system();
        gs.add_program(&format!(
            "DEFINE {{ query_name q; {sample} }} Select time From eth0.tcp Where destPort = 80",
        ))
        .unwrap();
        let pkts = mix(13, 1500);
        gs.run_capture(pkts.into_iter(), &["q"]).unwrap()
    };
    let full = run_with("").stream("q").len() as f64;
    let out_half = run_with("sample 0.5;");
    let half = out_half.stream("q").len() as f64;
    assert!(full > 500.0, "need enough traffic for a stable ratio");
    let ratio = half / full;
    assert!((ratio - 0.5).abs() < 0.05, "sampled fraction {ratio} should be ~0.5");
    assert!(out_half.stats.lfta["q"].sampled_out > 0);
    // Deterministic: same seed, same sample -> identical output.
    let again = run_with("sample 0.5;");
    assert_eq!(out_half.stream("q").len(), again.stream("q").len());
}

#[test]
fn invalid_sample_probability_rejected() {
    let mut gs = system();
    assert!(gs
        .add_program("DEFINE { query_name q; sample 1.5; } Select time From eth0.tcp")
        .is_err());
    assert!(gs
        .add_program("DEFINE { query_name q2; sample 0; } Select time From eth0.tcp")
        .is_err());
}

// ---------------------------------------------------------------------
// Self-monitoring: stats accuracy
// ---------------------------------------------------------------------

/// A two-interface select → merge → aggregate pipeline whose per-operator
/// tuple counts are known exactly from the trace construction.
const STATS_PROGRAM: &str =
    "DEFINE { query_name s0; } Select time From eth0.tcp Where destPort = 80; \
     DEFINE { query_name s1; } Select time From eth1.tcp Where destPort = 80; \
     DEFINE { query_name m; } Merge s0.time : s1.time From s0, s1; \
     DEFINE { query_name agg; } Select time, count(*) From m Group By time";

/// 600 packets, 10 ms apart (seconds 0..=5), alternating interfaces;
/// every third packet goes to port 80. Per interface: 300 packets seen,
/// 100 to port 80, so the merge sees 200 and the aggregate emits one
/// group per second = 6.
fn stats_trace() -> Vec<CapPacket> {
    (0..600u64)
        .map(|i| {
            let dport = if i % 3 == 0 { 80 } else { 443 };
            let f = FrameBuilder::tcp(0x0a00_0000 + i as u32, 0xc0a8_0001, 1024, dport)
                .build_ethernet();
            CapPacket::full(i * 10_000_000, (i % 2) as u16, LinkType::Ethernet, f)
        })
        .collect()
}

/// `(node, counter, expected)` for `stats_trace` through `STATS_PROGRAM`,
/// required to hold on either engine at any batch size.
const EXACT_COUNTS: [(&str, &str, u64); 10] = [
    ("lfta:s0", "packets_in", 300),
    ("lfta:s0", "tuples_out", 100),
    ("lfta:s1", "packets_in", 300),
    ("lfta:s1", "tuples_out", 100),
    ("hfta:m/0:merge", "tuples_in", 200),
    ("hfta:m/0:merge", "tuples_out", 200),
    ("hfta:agg/0:aggregate", "tuples_in", 200),
    ("hfta:agg/0:aggregate", "tuples_out", 6),
    ("hfta:agg/1:select", "tuples_in", 6),
    ("hfta:agg/1:select", "tuples_out", 6),
];

#[test]
fn operator_counters_are_exact_in_the_sync_engine() {
    let mut gs = system();
    gs.add_program(STATS_PROGRAM).unwrap();
    let out = gs.run_capture(stats_trace().into_iter(), &["agg"]).unwrap();
    assert_eq!(out.stream("agg").len(), 6);
    for (node, counter, want) in EXACT_COUNTS {
        assert_eq!(out.stats.counter(node, counter), Some(want), "{node}.{counter}");
    }
    // The 200 non-port-80 packets per LFTA are rejected up front — by the
    // pushed-down BPF prefilter or the residual predicate, whichever got
    // the Where clause.
    for lfta in ["lfta:s0", "lfta:s1"] {
        let rejected = out.stats.counter(lfta, "prefiltered").unwrap()
            + out.stats.counter(lfta, "filtered").unwrap();
        assert_eq!(rejected, 200, "{lfta} rejections");
    }
}

/// The same exact counts through the threaded manager at batch sizes
/// straddling the trace's punctuation boundaries: batching must never
/// lose or double-count a tuple.
#[test]
fn operator_counters_are_batch_invariant_in_the_threaded_manager() {
    let pkts = stats_trace();
    for batch in [1usize, 3, 256] {
        let mut gs = system();
        gs.batch_size = batch;
        gs.add_program(STATS_PROGRAM).unwrap();
        let out = run_threaded(&gs, pkts.iter().cloned(), &["agg"]).unwrap();
        assert_eq!(out.stream("agg").len(), 6, "batch {batch}");
        for (node, counter, want) in EXACT_COUNTS {
            assert_eq!(out.counter(node, counter), Some(want), "batch {batch} {node}.{counter}");
        }
        // Edge accounting closes: every flushed batch has exactly one
        // recorded cause, and each LFTA's 100 tuples all crossed its edge
        // (items also counts punctuations, so >=).
        for edge in ["edge:s0", "edge:s1"] {
            let batches = out.counter(edge, "batches").unwrap();
            let by_cause: u64 = ["flush_size", "flush_punct", "flush_heartbeat", "flush_close"]
                .iter()
                .map(|c| out.counter(edge, c).unwrap())
                .sum();
            assert_eq!(batches, by_cause, "batch {batch} {edge} flush causes");
            assert!(out.counter(edge, "items").unwrap() >= 100, "batch {batch} {edge} items");
        }
    }
}

fn node_is(v: &Value, name: &str) -> bool {
    matches!(v, Value::Str(s) if s.as_ref() == name.as_bytes())
}

/// GS_STATS is an ordinary queryable stream in the synchronous engine
/// too: snapshots are emitted at heartbeat rounds plus a final one, so a
/// GSQL query over it sees per-operator counters rising monotonically to
/// the exact final total.
#[test]
fn gs_stats_is_queryable_in_the_sync_engine() {
    let mut gs = system();
    gs.add_program(
        "DEFINE { query_name q; } Select time, count(*) From eth0.tcp Group By time; \
         DEFINE { query_name watch; } \
         Select time, node, counter, value From GS_STATS Where counter = 'packets_in'",
    )
    .unwrap();
    let out = gs.run_capture(stats_trace().into_iter(), &["q", "watch"]).unwrap();
    let vals: Vec<u64> = out
        .stream("watch")
        .iter()
        .filter(|t| node_is(t.get(1), "lfta:q__lfta0"))
        .map(|t| t.get(3).as_uint().unwrap())
        .collect();
    assert!(vals.len() >= 2, "snapshots mid-run plus a final one; got {vals:?}");
    assert!(vals.windows(2).all(|w| w[0] <= w[1]), "counters are monotone: {vals:?}");
    assert_eq!(*vals.last().unwrap(), 300, "final snapshot has the exact packet total");
}
