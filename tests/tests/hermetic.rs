//! Drift tests for the hermetic shim crates (`gs-bytes`, `gs-rand`).
//!
//! The shims replace registry crates with in-repo std-only equivalents
//! (see README.md "Hermetic build"). These tests pin the behavior call
//! sites rely on, so a later "optimization" of a shim cannot silently
//! change packet slicing or every seeded workload in the repo:
//!
//! 1. `Bytes::slice` offset arithmetic matches native slice indexing,
//!    including nested re-slicing (the capture path slices snaplen and
//!    header offsets out of one shared buffer).
//! 2. `Bytes` clones and slices are zero-copy views (`as_ptr` equality)
//!    — the paper's "tuples share the capture buffer" invariant.
//! 3. `SmallRng` produces golden output streams for fixed seeds. The
//!    seed-0 vector equals the published xoshiro256++ reference
//!    (`0x53175d61490b23df, ..`), i.e. the same stream upstream
//!    `rand::rngs::SmallRng` derives on 64-bit targets, so regenerated
//!    traces and experiment mixes stay comparable across PRs.

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn bytes_slice_offset_arithmetic_matches_native_slices() {
    let raw: Vec<u8> = (0u8..=255).collect();
    let b = Bytes::from(raw.clone());
    assert_eq!(&b.slice(10..20)[..], &raw[10..20]);
    assert_eq!(&b.slice(..16)[..], &raw[..16]);
    assert_eq!(&b.slice(240..)[..], &raw[240..]);
    assert_eq!(&b.slice(..)[..], &raw[..]);
    assert_eq!(&b.slice(5..=9)[..], &raw[5..=9]);
    // Nested slices compose offsets: (a..b) then (c..d) == a+c..a+d.
    let outer = b.slice(14..200);
    assert_eq!(&outer.slice(6..30)[..], &raw[20..44]);
    assert_eq!(&outer.slice(6..30).slice(4..)[..], &raw[24..44]);
    // Empty slices at every position are fine, including len..len.
    assert_eq!(b.slice(256..256).len(), 0);
    assert_eq!(outer.slice(0..0).len(), 0);
}

#[test]
fn bytes_clone_and_slice_are_zero_copy() {
    let b = Bytes::from(vec![7u8; 1500]);
    // Clone: same backing allocation, same start.
    let c = b.clone();
    assert_eq!(b.as_ptr(), c.as_ptr());
    // Slice: a view into the same allocation at the right offset.
    let s = b.slice(96..256);
    assert_eq!(s.as_ptr(), unsafe { b.as_ptr().add(96) });
    // Re-slicing a slice still points into the original buffer.
    let s2 = s.slice(10..20);
    assert_eq!(s2.as_ptr(), unsafe { b.as_ptr().add(106) });
    // Static payloads are borrowed, not copied.
    static PAYLOAD: &[u8] = b"GET / HTTP/1.1\r\n";
    let st = Bytes::from_static(PAYLOAD);
    assert_eq!(st.as_ptr(), PAYLOAD.as_ptr());
    assert_eq!(st.clone().as_ptr(), PAYLOAD.as_ptr());
    // copy_from_slice is the one constructor that must copy.
    let owned = Bytes::copy_from_slice(PAYLOAD);
    assert_ne!(owned.as_ptr(), PAYLOAD.as_ptr());
    assert_eq!(owned, st);
}

/// Golden output words for three fixed seeds. Seed 0 is the xoshiro256++
/// reference vector (SplitMix64-expanded seed), matching upstream
/// `SmallRng` on 64-bit targets. If these change, every seeded workload
/// in netgen/bench changes with them — that is a breaking change and must
/// be deliberate, not a side effect.
const GOLDEN: &[(u64, [u64; 4])] = &[
    (0x0, [0x53175d61490b23df, 0x61da6f3dc380d507, 0x5c0fdf91ec9a7bfc, 0x02eebf8c3bbe5e1a]),
    (0x2a, [0xd0764d4f4476689f, 0x519e4174576f3791, 0xfbe07cfb0c24ed8c, 0xb37d9f600cd835b8]),
    (
        0xdeadbeef,
        [0x0c520eb8fea98ede, 0x2b74a6338b80e0e2, 0xbe238770c3795322, 0x5f235f98a244ea97],
    ),
];

#[test]
fn smallrng_golden_values_for_fixed_seeds() {
    for &(seed, expect) in GOLDEN {
        let mut rng = SmallRng::seed_from_u64(seed);
        let got: Vec<u64> = (0..4).map(|_| rng.gen::<u64>()).collect();
        assert_eq!(got, expect, "seed {seed:#x} drifted");
    }
}

#[test]
fn smallrng_derived_draws_are_stable() {
    // Derived sampling (ranges, floats, bools, fill) goes through fixed
    // transformations of the golden stream; pin one example of each so
    // the transformations can't drift either.
    let mut rng = SmallRng::seed_from_u64(42);
    assert_eq!(rng.gen_range(0u16..1000), 951);
    assert_eq!(rng.gen_range(8u8..=24), 10);
    let f = rng.gen::<f64>();
    assert!((f - 0.983_894_168_177_488_76).abs() < 1e-15, "f64 stream drifted: {f}");
    assert!(!rng.gen_bool(0.5));
    let mut buf = [0u8; 5];
    rng.fill(&mut buf[..]);
    assert_eq!(buf, [0x73, 0x6a, 0x84, 0x74, 0x38]);
}
