//! Watchdog smoke tests: a stalled subscription — the consumer simply
//! never returns, no shedding configured to relieve the back-pressure —
//! used to wedge the whole threaded run at join time. With a watchdog
//! armed the run must complete: the wedged queue is force-closed within
//! the watchdog interval, the stalled query is `Failed{Stalled}` on the
//! health board, sibling queries still deliver everything, and the
//! recovery is visible through the ordinary GS_STATS counters. With
//! `watchdog: None` and no faults, nothing changes: no extra stats
//! nodes, all-ok health, identical output.

use gigascope::manager::{run_threaded, run_threaded_opts, ThreadedOptions, CHANNEL_CAPACITY};
use gigascope::{FaultReason, Gigascope, QueryHealth, WatchdogConfig};
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use std::time::{Duration, Instant};

const PROGRAM: &str = "DEFINE { query_name sel; } Select time From eth0.tcp; \
     DEFINE { query_name ok; } Select time, len From eth0.tcp";

fn system(watchdog: Option<WatchdogConfig>) -> Gigascope {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.batch_size = 1; // one message per packet: the queue really fills
    gs.watchdog = watchdog;
    gs.add_program(PROGRAM).unwrap();
    gs
}

fn pkts(n: u64) -> impl Iterator<Item = CapPacket> + Clone {
    (0..n).map(|i| {
        let f = FrameBuilder::tcp(10 + i as u32, 20, 1024, 80).payload(b"x").build_ethernet();
        CapPacket::full(i * 1_000_000, 0, LinkType::Ethernet, f)
    })
}

/// The CI gate's smoke test: `stalled-subscription-recovers-within-watchdog`.
#[test]
fn stalled_subscription_recovers_within_watchdog() {
    // Enough packets to overrun the stalled queue's capacity, so without
    // the watchdog the capture loop blocks forever (the PR 3 wedge).
    let n = (CHANNEL_CAPACITY + CHANNEL_CAPACITY / 2) as u64;
    let gs = system(Some(WatchdogConfig { poll_ms: 20, rechecks: 2 }));
    let t0 = Instant::now();
    let out = run_threaded_opts(
        &gs,
        pkts(n),
        &["sel", "ok"],
        ThreadedOptions { stall: vec!["sel".to_string()], ..Default::default() },
    )
    .unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "recovery took {:?} — not within the watchdog interval",
        t0.elapsed()
    );
    assert_eq!(out.packets, n, "every packet was captured after the force-close");

    // The stalled query is detected and quarantined...
    assert_eq!(
        out.health.of("sel"),
        QueryHealth::Failed { reason: FaultReason::Stalled },
        "stalled query not recorded: {:?}",
        out.health.failures()
    );
    // ...while the sibling never notices the wedge.
    assert!(!out.health.failed("ok"));
    assert_eq!(out.stream("ok").len() as u64, n, "sibling lost tuples");

    // The recovery is observable through GS_STATS counters.
    assert!(out.counter("watchdog", "forced_closes").unwrap() >= 1);
    assert!(out.counter("watchdog", "stalls_detected").unwrap() >= 2);
    assert!(out.counter("faults", "queries_failed").unwrap() >= 1);
    let forced_drops: u64 = out
        .counters
        .iter()
        .filter(|r| r.counter == "forced_drops")
        .map(|r| r.value)
        .sum();
    assert!(forced_drops > 0, "force-close drained nothing?");
}

/// False-positive check: a healthy run under an aggressive watchdog is
/// left alone — progressing queues never strike out.
#[test]
fn healthy_run_is_not_disturbed_by_watchdog() {
    let gs = system(Some(WatchdogConfig { poll_ms: 5, rechecks: 2 }));
    let out = run_threaded(&gs, pkts(2_000), &["sel", "ok"]).unwrap();
    assert!(out.health.all_ok(), "healthy run failed: {:?}", out.health.failures());
    assert_eq!(out.counter("watchdog", "forced_closes"), Some(0));
    assert_eq!(out.stream("sel").len(), 2_000);
    assert_eq!(out.stream("ok").len(), 2_000);
}

/// `watchdog: None` with no faults is the exact pre-existing engine:
/// same output, all-ok health, and no `watchdog`/`faults` stats nodes
/// (the stats-overhead budget is untouched).
#[test]
fn disabled_watchdog_changes_nothing() {
    let with = run_threaded(&system(Some(WatchdogConfig::default())), pkts(500), &["sel", "ok"])
        .unwrap();
    let without = run_threaded(&system(None), pkts(500), &["sel", "ok"]).unwrap();
    assert!(without.health.all_ok());
    assert_eq!(with.stream("sel"), without.stream("sel"));
    assert_eq!(with.stream("ok"), without.stream("ok"));
    assert_eq!(without.counter("watchdog", "forced_closes"), None, "stats node must not exist");
    assert_eq!(without.counter("faults", "queries_failed"), None, "stats node must not exist");
}
