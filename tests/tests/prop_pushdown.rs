//! Property test: the two compilation paths must agree.
//!
//! A cheap conjunct can execute (a) as a compiled expression program over
//! interpreted packet fields in the LFTA, or (b) pushed down into the NIC
//! as a BPF program. For random predicates over random packets, BPF
//! acceptance must equal [protocol matches AND predicate holds] — the BPF
//! path embeds the protocol guard, and a false mismatch in either
//! direction would either lose qualifying packets or leak work the LFTA
//! then filters (safe but wasteful; a loss is a correctness bug).
//!
//! Runs on the in-repo deterministic harness ([`gs_tests::prop`]); the
//! property assertions are unchanged from the original proptest suite.

use gs_gsql::ast::BinOp;
use gs_gsql::plan::{Literal, PExpr};
use gs_gsql::pushdown::compile_prefilter;
use gs_gsql::types::DataType;
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use gs_packet::PacketView;
use gs_runtime::expr::{EvalScratch, PacketFields, Program};
use gs_runtime::udf::{FileStore, UdfRegistry};
use gs_runtime::ParamBindings;
use gs_tests::prop::{check, Gen};
use std::collections::HashMap;

/// Fields the pushdown compiler knows, with generators for literal values
/// in a range that straddles realistic packet values.
const FIELDS: &[&str] =
    &["Protocol", "tos", "ttl", "id", "totalLen", "srcIP", "destIP", "srcPort", "destPort"];

const CMPS: &[BinOp] = &[BinOp::Eq, BinOp::Ne, BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge];

/// One conjunct: (field index, op, literal).
fn arb_conjunct(g: &mut Gen) -> (usize, BinOp, u64) {
    let field = g.usize(0..FIELDS.len());
    let op = *g.choice(CMPS);
    let lit = match g.usize(0..4) {
        0 => g.u64(0..100),
        1 => 80,
        2 => *g.choice(&[6u64, 64]),
        _ => g.u64(0..70000),
    };
    (field, op, lit)
}

fn arb_packet(g: &mut Gen) -> CapPacket {
    let src: u32 = g.any();
    let dst: u32 = g.any();
    let sport = g.u16(1024..65535);
    let dport = match g.usize(0..3) {
        0 => 80,
        1 => 443,
        _ => g.u16(1..1024),
    };
    let ttl: u8 = g.any();
    let tos: u8 = g.any();
    let id: u16 = g.any();
    let plen = g.usize(0..200);
    let is_tcp: bool = g.bool();
    let pay = vec![0xAAu8; plen];
    let frame = if is_tcp {
        FrameBuilder::tcp(src, dst, sport, dport).ttl(ttl).tos(tos).ip_id(id).payload(&pay).build_ethernet()
    } else {
        FrameBuilder::udp(src, dst, sport, dport).ttl(ttl).tos(tos).ip_id(id).payload(&pay).build_ethernet()
    };
    CapPacket::full(0, 0, LinkType::Ethernet, frame)
}

fn tcp_col(name: &str) -> PExpr {
    let proto = gs_packet::interp::protocol("tcp").unwrap();
    let i = proto.field_index(name).unwrap();
    let ty = if name.ends_with("IP") { DataType::Ip } else { DataType::UInt };
    PExpr::Col { index: i, ty }
}

#[test]
fn bpf_pushdown_agrees_with_interpreter() {
    check("bpf_pushdown_agrees_with_interpreter", 384, |g| {
        let conjuncts = g.vec_with(1..4, arb_conjunct);
        let pkts = g.vec_with(1..24, arb_packet);
        // Build the predicate both ways.
        let pexprs: Vec<PExpr> = conjuncts
            .iter()
            .map(|&(f, op, lit)| {
                let field = FIELDS[f];
                let right = if field.ends_with("IP") {
                    PExpr::Lit(Literal::Ip(lit as u32))
                } else {
                    PExpr::Lit(Literal::UInt(lit))
                };
                PExpr::Binary {
                    op,
                    left: Box::new(tcp_col(field)),
                    right: Box::new(right),
                    ty: DataType::Bool,
                }
            })
            .collect();

        let proto = gs_packet::interp::protocol("tcp").unwrap();
        let pd = compile_prefilter(
            "tcp",
            LinkType::Ethernet,
            &pexprs,
            &|i| proto.fields.get(i).map(|c| c.name.to_string()),
            &HashMap::new(),
            None,
        );
        let Some(bpf) = pd.program else {
            panic!("tcp prefilter must always compile");
        };
        // Literals > u32::MAX are skipped by the compiler; only compiled
        // conjuncts participate in the equivalence check.
        let compiled: Vec<&PExpr> =
            pd.compiled_conjuncts.iter().map(|&i| &pexprs[i]).collect();

        let registry = UdfRegistry::with_builtins();
        let resolver = FileStore::new();
        let params = ParamBindings::new();
        let progs: Vec<Program> = compiled
            .iter()
            .map(|e| Program::compile(e, &params, &registry, &resolver).unwrap())
            .collect();

        let mut scratch = EvalScratch::default();
        for pkt in &pkts {
            let bpf_accepts = bpf.accepts(&pkt.data);
            let view = PacketView::parse(pkt.clone());
            let is_tcp = (proto.matches)(&view);
            let interp_accepts = is_tcp && {
                let src = PacketFields::new(&view, proto.fields);
                progs.iter().all(|p| p.eval_bool(&src, &mut scratch))
            };
            assert_eq!(
                bpf_accepts,
                interp_accepts,
                "BPF and interpreter disagree for {:?} on a {} packet",
                conjuncts,
                if is_tcp { "tcp" } else { "non-tcp" }
            );
        }
    });
}
