//! Property test: the two compilation paths must agree.
//!
//! A cheap conjunct can execute (a) as a compiled expression program over
//! interpreted packet fields in the LFTA, or (b) pushed down into the NIC
//! as a BPF program. For random predicates over random packets, BPF
//! acceptance must equal [protocol matches AND predicate holds] — the BPF
//! path embeds the protocol guard, and a false mismatch in either
//! direction would either lose qualifying packets or leak work the LFTA
//! then filters (safe but wasteful; a loss is a correctness bug).

use gs_gsql::ast::BinOp;
use gs_gsql::plan::{Literal, PExpr};
use gs_gsql::pushdown::compile_prefilter;
use gs_gsql::types::DataType;
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use gs_packet::PacketView;
use gs_runtime::expr::{EvalScratch, PacketFields, Program};
use gs_runtime::udf::{FileStore, UdfRegistry};
use gs_runtime::ParamBindings;
use proptest::prelude::*;
use std::collections::HashMap;

/// Fields the pushdown compiler knows, with generators for literal values
/// in a range that straddles realistic packet values.
const FIELDS: &[&str] = &["Protocol", "tos", "ttl", "id", "totalLen", "srcIP", "destIP", "srcPort", "destPort"];

fn arb_cmp() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

/// One conjunct: (field index, op, literal).
fn arb_conjunct() -> impl Strategy<Value = (usize, BinOp, u64)> {
    (0..FIELDS.len(), arb_cmp(), prop_oneof![0u64..100, Just(80u64), Just(6), Just(64), 0u64..70000])
}

fn arb_packet() -> impl Strategy<Value = CapPacket> {
    (
        any::<u32>(),           // src
        any::<u32>(),           // dst
        1024u16..65535,         // sport
        prop_oneof![Just(80u16), Just(443), 1u16..1024], // dport
        0u8..=255,              // ttl
        0u8..=255,              // tos
        any::<u16>(),           // id
        0usize..200,            // payload
        any::<bool>(),          // tcp or udp
    )
        .prop_map(|(src, dst, sport, dport, ttl, tos, id, plen, is_tcp)| {
            let pay = vec![0xAAu8; plen];
            let frame = if is_tcp {
                FrameBuilder::tcp(src, dst, sport, dport).ttl(ttl).tos(tos).ip_id(id).payload(&pay).build_ethernet()
            } else {
                FrameBuilder::udp(src, dst, sport, dport).ttl(ttl).tos(tos).ip_id(id).payload(&pay).build_ethernet()
            };
            CapPacket::full(0, 0, LinkType::Ethernet, frame)
        })
}

fn tcp_col(name: &str) -> PExpr {
    let proto = gs_packet::interp::protocol("tcp").unwrap();
    let i = proto.field_index(name).unwrap();
    let ty = if name.ends_with("IP") { DataType::Ip } else { DataType::UInt };
    PExpr::Col { index: i, ty }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    #[test]
    fn bpf_pushdown_agrees_with_interpreter(
        conjuncts in proptest::collection::vec(arb_conjunct(), 1..4),
        pkts in proptest::collection::vec(arb_packet(), 1..24),
    ) {
        // Build the predicate both ways.
        let pexprs: Vec<PExpr> = conjuncts
            .iter()
            .map(|&(f, op, lit)| {
                let field = FIELDS[f];
                let right = if field.ends_with("IP") {
                    PExpr::Lit(Literal::Ip(lit as u32))
                } else {
                    PExpr::Lit(Literal::UInt(lit))
                };
                PExpr::Binary {
                    op,
                    left: Box::new(tcp_col(field)),
                    right: Box::new(right),
                    ty: DataType::Bool,
                }
            })
            .collect();

        let proto = gs_packet::interp::protocol("tcp").unwrap();
        let pd = compile_prefilter(
            "tcp",
            LinkType::Ethernet,
            &pexprs,
            &|i| proto.fields.get(i).map(|c| c.name.to_string()),
            &HashMap::new(),
            None,
        );
        let Some(bpf) = pd.program else {
            return Err(TestCaseError::fail("tcp prefilter must always compile"));
        };
        // Literals > u32::MAX are skipped by the compiler; only compiled
        // conjuncts participate in the equivalence check.
        let compiled: Vec<&PExpr> =
            pd.compiled_conjuncts.iter().map(|&i| &pexprs[i]).collect();

        let registry = UdfRegistry::with_builtins();
        let resolver = FileStore::new();
        let params = ParamBindings::new();
        let progs: Vec<Program> = compiled
            .iter()
            .map(|e| Program::compile(e, &params, &registry, &resolver).unwrap())
            .collect();

        let mut scratch = EvalScratch::default();
        for pkt in &pkts {
            let bpf_accepts = bpf.accepts(&pkt.data);
            let view = PacketView::parse(pkt.clone());
            let is_tcp = (proto.matches)(&view);
            let interp_accepts = is_tcp && {
                let src = PacketFields::new(&view, proto.fields);
                progs.iter().all(|p| p.eval_bool(&src, &mut scratch))
            };
            prop_assert_eq!(
                bpf_accepts,
                interp_accepts,
                "BPF and interpreter disagree for {:?} on a {} packet",
                conjuncts,
                if is_tcp { "tcp" } else { "non-tcp" }
            );
        }
    }
}
