//! Property tests for fault-isolated execution: an injected panic in one
//! HFTA operator (or one shard of a partitioned HFTA) quarantines that
//! query alone. The run always completes — `run_threaded` returns `Ok`,
//! every capture packet is consumed — the faulted query is `Failed` on
//! the [`RunHealth`] board with the quarantined prefix of its output a
//! sub-multiset of the fault-free reference, and sibling queries are
//! unaffected: byte-identical at parallelism 1, multiset-identical and
//! still ordered at parallelism 4.
//!
//! The matrix mandated by the fault-injection gate: parallelism {1, 4}
//! x shedding {on, off} x batch {1, 256}, on the deterministic seeded
//! harness ([`gs_tests::prop`]). Under shedding the comparison weakens
//! to the group-key subset check (drops legitimately change aggregate
//! counts) — the containment and liveness properties stay exact.

use gigascope::manager::run_threaded;
use gigascope::{
    DropPolicy, FaultPlan, FaultReason, Gigascope, QueryHealth, ShedConfig, Tuple,
};
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use gs_tests::prop::{check, Gen};
use std::collections::HashMap;

const PARALLELISM: [usize; 2] = [1, 4];
const BATCH_SIZES: [usize; 2] = [1, 256];

/// Two group-by queries over one derived stream: `agg` is the fault
/// target, `sib` the sibling that must not notice. Both are
/// partition-eligible, so at parallelism 4 the router/merge fan-out and
/// the reunifying merge sit between the fault and the subscriber.
const PROGRAM: &str = "DEFINE { query_name raw; } \
     Select time, destPort, len From eth0.tcp; \
     DEFINE { query_name agg; } \
     Select time, destPort, count(*), sum(len) From raw Group By time, destPort; \
     DEFINE { query_name sib; } \
     Select time, count(*), sum(len) From raw Group By time";

const SUBS: [&str; 2] = ["agg", "sib"];

fn system(batch: usize, parallelism: usize, shed: bool) -> Gigascope {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.batch_size = batch;
    gs.parallelism = parallelism;
    gs.shedding = shed.then_some(ShedConfig {
        policy: DropPolicy::LeastProcessedFirst,
        capacity: 16,
    });
    gs.add_program(PROGRAM).unwrap();
    gs
}

/// Panic on the first batch of every instance of `agg`: the single HFTA
/// node at parallelism 1, each shard at parallelism 4. Arming every
/// shard guarantees the fault fires no matter which shards the group
/// hash happens to feed.
fn plan(parallelism: usize) -> FaultPlan {
    if parallelism == 1 {
        FaultPlan::new().panic_at("agg", 1)
    } else {
        (0..parallelism).fold(FaultPlan::new(), |p, k| p.panic_at(format!("agg#{k}"), 1))
    }
}

fn trace(g: &mut Gen) -> Vec<CapPacket> {
    let n = g.usize(40..250);
    let mut ts_ns = 0u64;
    (0..n)
        .map(|i| {
            ts_ns += g.u64(0..2_000_000_000);
            let dport = *g.choice(&[80u16, 443, 25, 53, 8080, 993]);
            let payload = vec![0u8; g.usize(0..32)];
            let f = FrameBuilder::tcp(0x0a000000 + i as u32, 0xc0a80001, 1024, dport)
                .payload(&payload)
                .build_ethernet();
            CapPacket::full(ts_ns, 0, LinkType::Ethernet, f)
        })
        .collect()
}

fn norm(tuples: &[Tuple]) -> Vec<Vec<u64>> {
    let mut rows: Vec<Vec<u64>> = tuples
        .iter()
        .map(|t| t.values().iter().filter_map(|v| v.as_uint()).collect())
        .collect();
    rows.sort();
    rows
}

/// Multiset inclusion: every row of `part` appears in `whole` at least
/// as many times.
fn submultiset(part: &[Vec<u64>], whole: &[Vec<u64>]) -> bool {
    let mut counts: HashMap<&Vec<u64>, isize> = HashMap::new();
    for row in whole {
        *counts.entry(row).or_default() += 1;
    }
    part.iter().all(|row| {
        let c = counts.entry(row).or_default();
        *c -= 1;
        *c >= 0
    })
}

fn assert_ordered(tuples: &[Tuple], what: &str) {
    let times: Vec<u64> = tuples.iter().filter_map(|t| t.get(0).as_uint()).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "{what}: order violated: {times:?}");
}

#[test]
fn injected_panic_fails_one_query_and_run_still_completes() {
    check("fault_matrix", 4, |g| {
        let pkts = trace(g);

        // Fault-free synchronous reference for output comparison.
        let reference = system(256, 1, false)
            .run_capture(pkts.iter().cloned(), &SUBS)
            .unwrap();
        let ref_agg = norm(reference.stream("agg"));
        let ref_sib = norm(reference.stream("sib"));
        let sib_keys: std::collections::HashSet<u64> =
            ref_sib.iter().map(|row| row[0]).collect();

        for par in PARALLELISM {
            for batch in BATCH_SIZES {
                for shed in [false, true] {
                    let ctx = format!("par {par}, batch {batch}, shed {shed}");

                    let mut gs = system(batch, par, shed);
                    gs.faults = Some(plan(par));
                    let faulty = run_threaded(&gs, pkts.iter().cloned(), &SUBS)
                        .unwrap_or_else(|e| panic!("{ctx}: run did not complete: {e}"));
                    assert_eq!(faulty.packets, pkts.len() as u64, "{ctx}: capture wedged");

                    // The targeted query is quarantined with the root cause.
                    assert!(faulty.health.failed("agg"), "{ctx}: agg not quarantined");
                    assert!(
                        matches!(
                            faulty.health.of("agg"),
                            QueryHealth::Failed {
                                reason: FaultReason::Panic(_) | FaultReason::Upstream(_)
                            }
                        ),
                        "{ctx}: wrong reason: {:?}",
                        faulty.health.of("agg")
                    );
                    assert!(!faulty.health.failed("sib"), "{ctx}: sibling infected");
                    assert!(
                        faulty.counter("faults", "fault_injected").unwrap() >= 1,
                        "{ctx}: fault never fired"
                    );
                    assert!(faulty.counter("faults", "faults_contained").unwrap() >= 1, "{ctx}");
                    assert!(faulty.counter("faults", "queries_failed").unwrap() >= 1, "{ctx}");

                    if shed {
                        // Drops change aggregate counts; the faulted and
                        // sibling outputs must still only contain group
                        // keys the reference saw, in order.
                        for row in norm(faulty.stream("sib")) {
                            assert!(sib_keys.contains(&row[0]), "{ctx}: sib invented {row:?}");
                        }
                    } else {
                        // Quarantined output is a clean prefix of the
                        // reference multiset.
                        assert!(
                            submultiset(&norm(faulty.stream("agg")), &ref_agg),
                            "{ctx}: quarantined output not within reference"
                        );
                        // The sibling is untouched. At parallelism 1 the
                        // pipeline is fully deterministic: compare the
                        // exact tuple sequence against a fault-free
                        // threaded run. At parallelism 4 the shard
                        // interleave makes tie order legitimately vary,
                        // so compare multisets and the order contract.
                        if par == 1 {
                            let clean = run_threaded(
                                &system(batch, 1, false),
                                pkts.iter().cloned(),
                                &SUBS,
                            )
                            .unwrap();
                            assert!(clean.health.all_ok(), "{ctx}: clean run failed?");
                            assert_eq!(
                                faulty.stream("sib"),
                                clean.stream("sib"),
                                "{ctx}: sibling not byte-identical"
                            );
                        } else {
                            assert_eq!(
                                norm(faulty.stream("sib")),
                                ref_sib,
                                "{ctx}: sibling multiset diverged"
                            );
                        }
                    }
                    assert_ordered(faulty.stream("sib"), &format!("{ctx}: sib"));
                }
            }
        }
    });
}

/// Fault injection composes with columnar transport exactly as with row
/// transport: the injector sees the materialized row stream, so at the
/// same batch size a faulted columnar run and a faulted row run agree on
/// which queries failed and on the sibling's output multiset.
#[test]
fn faults_compose_with_columnar_transport() {
    check("fault_columnar", 4, |g| {
        let pkts = trace(g);
        let run = |columnar: bool| {
            let mut gs = system(256, 1, false);
            gs.columnar = columnar;
            gs.faults = Some(plan(1));
            run_threaded(&gs, pkts.iter().cloned(), &SUBS).unwrap()
        };
        let row = run(false);
        let col = run(true);
        assert_eq!(col.packets, pkts.len() as u64, "columnar capture wedged under fault");
        assert_eq!(
            row.health.failures(),
            col.health.failures(),
            "fault containment differs between transports"
        );
        assert!(col.counter("faults", "fault_injected").unwrap() >= 1);
        assert_eq!(
            norm(row.stream("sib")),
            norm(col.stream("sib")),
            "sibling output differs between transports under fault"
        );
    });
}

/// The other injector kinds must also be contained: a poisoned shared
/// lock and a corrupt (column-truncated) tuple both quarantine at most
/// the targeted query and never hang the run.
#[test]
fn poison_and_corruption_are_contained() {
    check("fault_kinds", 4, |g| {
        let pkts = trace(g);
        for kind in [
            gigascope::FaultKind::PoisonLock { at_batch: 1 },
            gigascope::FaultKind::CorruptTuple { at_batch: 1, keep_cols: 1 },
        ] {
            let mut gs = system(1, 1, false);
            gs.faults = Some(FaultPlan::new().with("agg", kind.clone()));
            let out = run_threaded(&gs, pkts.iter().cloned(), &SUBS).unwrap();
            assert_eq!(out.packets, pkts.len() as u64, "capture wedged under {kind:?}");
            assert!(!out.health.failed("sib"), "sibling infected by {kind:?}");
            assert!(out.counter("faults", "fault_injected").unwrap() >= 1);
        }
    });
}

/// A seeded plan is reproducible: the same seed yields the same targets
/// and the same run health, twice.
#[test]
fn seeded_plans_are_deterministic() {
    let pkts: Vec<CapPacket> = (0..120u64)
        .map(|i| {
            let f = FrameBuilder::tcp(10 + i as u32, 20, 1024, 80).payload(b"xy").build_ethernet();
            CapPacket::full(i * 500_000_000, 0, LinkType::Ethernet, f)
        })
        .collect();
    let run = || {
        let mut gs = system(8, 1, false);
        gs.faults = Some(FaultPlan::seeded(0xFA17, &["agg", "sib"]));
        run_threaded(&gs, pkts.iter().cloned(), &SUBS).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.health.failures(), b.health.failures(), "seeded fault plan not reproducible");
    for s in SUBS {
        assert_eq!(a.stream(s), b.stream(s), "stream `{s}` diverged across seeded replays");
    }
}
