//! Durable-daemon tests: `--state-dir` makes a daemon *kill*, not just
//! an epoch boundary, a pause. A halted daemon (the in-process stand-in
//! for `kill -9`: no flush, no shutdown record, state dropped on the
//! floor) restarted on the same state directory resumes mid-window from
//! the recovered cut, and the combined subscriber output equals one
//! continuous run. A state disk that keeps failing dead-letters into a
//! HEALTH advisory and the `durable` stats node instead of stopping the
//! stream, and a *cleanly* shut down daemon restarts fresh — flushed
//! state is never restored twice.

use gigascope::manager::run_threaded;
use gigascope::server::client::Client;
use gigascope::server::{self, DaemonConfig, PacketSource};
use gigascope::{Gigascope, Tuple};
use gs_packet::capture::{CapPacket, LinkType};
use gs_runtime::faults::{DiskFaultPlan, DiskOp};
use gs_tests::daemon::{norm, CLIENT_TIMEOUT};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const PROGRAM: &str = "DEFINE { query_name raw; } \
     Select time, destPort, len From eth0.tcp; \
     DEFINE { query_name agg; } \
     Select time, destPort, count(*), sum(len) From raw Group By time, destPort; \
     DEFINE { query_name sib; } \
     Select time, count(*), sum(len) From raw Group By time";

const LEAD_IN: usize = 5;
const REAL_EPOCHS: usize = 12;

static DIR_ID: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gs_daemon_durable_{tag}_{}_{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A time-continuous source: `LEAD_IN` empty chunks (subscribe margin),
/// then 12 × 100 ms of synthetic traffic.
fn carry_source(seed: u64) -> (PacketSource, Vec<CapPacket>) {
    let PacketSource::Chunked(real) =
        PacketSource::chunked_synthetic(20.0, 100, REAL_EPOCHS as u64, seed)
    else {
        unreachable!("chunked_synthetic returns Chunked");
    };
    let all: Vec<CapPacket> = real.iter().flatten().cloned().collect();
    let mut chunks = vec![Vec::new(); LEAD_IN];
    chunks.extend(real);
    (PacketSource::Chunked(chunks), all)
}

fn durable_config(source: PacketSource, state_dir: &PathBuf) -> DaemonConfig {
    DaemonConfig {
        source,
        epoch_gap_ms: 30,
        carry_state: true,
        state_dir: Some(state_dir.clone()),
        initial_program: Some(PROGRAM.to_string()),
        ..DaemonConfig::default()
    }
}

fn connect(addr: std::net::SocketAddr) -> Client {
    let mut c = Client::connect(addr).expect("connect");
    c.set_timeout(Some(CLIENT_TIMEOUT)).expect("timeout");
    c
}

fn continuous_reference(all: &[CapPacket], subs: &[&str]) -> HashMap<String, Vec<Tuple>> {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.add_program(PROGRAM).expect("reference program");
    run_threaded(&gs, all.iter().cloned(), subs).expect("reference run").streams
}

fn collect_through(client: &mut Client, stream: &str, last_epoch: u64) -> Vec<Tuple> {
    let mut rows = Vec::new();
    loop {
        let (epoch, mut r) = client.read_epoch(stream).expect("epoch read");
        rows.append(&mut r);
        if epoch >= last_epoch {
            return rows;
        }
    }
}

fn drain_tail(client: &mut Client, collected: &mut HashMap<String, Vec<Tuple>>) {
    while let Ok(frame) = client.next_tuples() {
        collected.entry(frame.stream).or_default().extend(frame.rows);
    }
}

/// Kill (halt, no flush) after every real epoch is confirmed, restart
/// on the same state directory, and finish the session there: the
/// still-open 1-second window's tail — state that lived *across the
/// kill* — is flushed by the restarted daemon, and the combined output
/// of both incarnations equals one uninterrupted run.
#[test]
fn killed_daemon_resumes_mid_window_from_state_dir() {
    let state = scratch_dir("resume");
    let (source, all) = carry_source(0xD0D01);
    let last_real = (LEAD_IN + REAL_EPOCHS - 1) as u64;

    // Incarnation 1: confirm every real epoch, then die without a
    // flush. `collect_through` returning proves the markers (and so the
    // covering durable cut) committed before the kill.
    let (source2, _) = carry_source(0xD0D01);
    let mut daemon = server::start(durable_config(source, &state)).expect("daemon 1");
    let mut client = connect(daemon.addr());
    client.subscribe("agg").expect("subscribe agg");
    client.subscribe("sib").expect("subscribe sib");
    let mut collected = HashMap::new();
    for stream in ["agg", "sib"] {
        collected.insert(stream.to_string(), collect_through(&mut client, stream, last_real));
    }
    daemon.halt();

    // Incarnation 2: same state dir, fresh process state.
    let mut daemon2 = server::start(durable_config(source2, &state)).expect("daemon 2");
    assert_eq!(
        daemon2.registry().value("durable", "recoveries"),
        Some(1),
        "the restart must recover durable state"
    );
    let mut client2 = connect(daemon2.addr());
    client2.subscribe("agg").expect("subscribe agg");
    client2.subscribe("sib").expect("subscribe sib");
    let (epoch, rows) = client2.read_epoch("agg").expect("resumed epoch");
    assert!(
        epoch > last_real,
        "resumption must continue the epoch numbering past {last_real}, got {epoch}"
    );
    assert!(rows.is_empty(), "the trace was fully confirmed before the kill");
    client2.shutdown().expect("shutdown");
    drain_tail(&mut client2, &mut collected);
    daemon2.shutdown();

    let reference = continuous_reference(&all, &["agg", "sib"]);
    for stream in ["agg", "sib"] {
        assert!(
            !collected[stream].is_empty(),
            "no `{stream}` rows across both incarnations"
        );
        assert_eq!(
            norm(&collected[stream]),
            norm(&reference[stream]),
            "stream `{stream}`: kill + resume diverges from the continuous run \
             (the held window tail must be flushed by the restarted daemon)"
        );
    }
    let _ = std::fs::remove_dir_all(&state);
}

/// A state disk that fails every segment write dead-letters: the stream
/// keeps flowing, HEALTH grows a `durable:store` advisory row, and the
/// failures are counted in the `durable` stats node.
#[test]
fn failing_state_disk_dead_letters_into_health_not_an_outage() {
    let state = scratch_dir("enospc");
    let (source, all) = carry_source(0xD0D02);
    let last_real = (LEAD_IN + REAL_EPOCHS - 1) as u64;
    let mut config = durable_config(source, &state);
    config.disk_faults = Some(DiskFaultPlan::new().enospc(1, DiskOp::TempWrite, 9999));
    let mut daemon = server::start(config).expect("daemon start");
    let mut client = connect(daemon.addr());
    client.subscribe("agg").expect("subscribe agg");

    let mut collected = HashMap::new();
    collected.insert("agg".to_string(), collect_through(&mut client, "agg", last_real));

    let health = client.health().expect("health");
    let row = health
        .iter()
        .find(|r| r.query == "durable:store")
        .expect("a dead-lettered store must surface a durable:store advisory row");
    assert!(row.restarts >= 1, "failure count is carried in the restarts column");
    assert!(
        row.reason.contains("dead-lettered"),
        "the advisory names the dead-letter: {}",
        row.reason
    );
    assert!(
        daemon.registry().value("durable", "write_failed") >= Some(1),
        "durable:write_failed counts the exhausted retries"
    );

    client.shutdown().expect("shutdown");
    drain_tail(&mut client, &mut collected);
    daemon.shutdown();

    // The stream itself never degraded.
    let reference = continuous_reference(&all, &["agg"]);
    assert_eq!(
        norm(&collected["agg"]),
        norm(&reference["agg"]),
        "dead-lettered durability must not change the emitted rows"
    );
    let _ = std::fs::remove_dir_all(&state);
}

/// A clean shutdown flushes the held tails and commits a shutdown
/// record: the next daemon on the same state dir starts from *empty*
/// state (no double flush) but keeps the epoch numbering monotone.
#[test]
fn clean_shutdown_then_restart_starts_fresh_with_monotone_epochs() {
    let state = scratch_dir("clean");
    let (source, all) = carry_source(0xD0D03);
    let (source2, _) = carry_source(0xD0D03);
    let last_real = (LEAD_IN + REAL_EPOCHS - 1) as u64;

    let mut daemon = server::start(durable_config(source, &state)).expect("daemon 1");
    let mut client = connect(daemon.addr());
    client.subscribe("agg").expect("subscribe agg");
    let mut collected = HashMap::new();
    collected.insert("agg".to_string(), collect_through(&mut client, "agg", last_real));
    client.shutdown().expect("shutdown");
    drain_tail(&mut client, &mut collected);
    daemon.shutdown();

    // Session 1 alone is already complete (tails flushed).
    let reference = continuous_reference(&all, &["agg"]);
    assert_eq!(norm(&collected["agg"]), norm(&reference["agg"]));

    // Session 2 must not re-flush or re-emit anything.
    let mut daemon2 = server::start(durable_config(source2, &state)).expect("daemon 2");
    let mut client2 = connect(daemon2.addr());
    client2.subscribe("agg").expect("subscribe agg");
    let (epoch, rows) = client2.read_epoch("agg").expect("fresh epoch");
    assert!(
        epoch > last_real,
        "epoch numbering stays monotone across a clean restart, got {epoch}"
    );
    assert!(rows.is_empty(), "flushed state must not be restored or re-emitted");
    client2.shutdown().expect("shutdown");
    let mut tail = HashMap::new();
    drain_tail(&mut client2, &mut tail);
    assert!(
        tail.values().all(|rows: &Vec<Tuple>| rows.is_empty()),
        "a fresh daemon has no held tails to flush: {tail:?}"
    );
    daemon2.shutdown();
    let _ = std::fs::remove_dir_all(&state);
}

/// `--state-dir` without `--carry-state` is a configuration error, not
/// a silently non-durable daemon.
#[test]
fn state_dir_without_carry_state_is_rejected() {
    let state = scratch_dir("nocarry");
    let config = DaemonConfig {
        state_dir: Some(state.clone()),
        carry_state: false,
        ..DaemonConfig::default()
    };
    let err = match server::start(config) {
        Ok(_) => panic!("state_dir without carry_state must be rejected"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("carry"),
        "the error explains the constraint: {err}"
    );
    let _ = std::fs::remove_dir_all(&state);
}

/// `Client::connect_retry` rides out a daemon that binds late, and
/// still fails (with the last error) when nothing ever listens.
#[test]
fn connect_retry_waits_out_a_late_binding_daemon() {
    // Reserve a port, release it, and bind it again only after a delay.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let addr = probe.local_addr().expect("probe addr");
    drop(probe);
    let binder = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(250));
        let listener = std::net::TcpListener::bind(addr).expect("late bind");
        // Hold the listener long enough for the retry loop to land.
        let _ = listener.accept();
    });
    let started = std::time::Instant::now();
    Client::connect_retry(addr, 8, Duration::from_millis(50))
        .expect("retries must outlast the late bind");
    assert!(
        started.elapsed() >= Duration::from_millis(200),
        "success can only have come from a retry, not the first attempt"
    );
    binder.join().expect("binder thread");

    // Nothing listening and one attempt: fails immediately.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let dead = probe.local_addr().expect("probe addr");
    drop(probe);
    assert!(
        Client::connect_retry(dead, 1, Duration::from_millis(10)).is_err(),
        "a bounded retry budget must eventually give up"
    );
}
