//! Properties of overload shedding, from the [`Shedder`] buffer up
//! through the threaded manager's shed-aware queues.
//!
//! Paper §4: "highly processed tuples (produced further in the query
//! chain) are more valuable than less-processed tuples". The shedder is
//! checked against an independent reference model under randomized
//! offer/pop interleavings; the manager-level property is that shedding
//! can only *remove* tuples — every threaded output under a drop policy
//! is a sub-multiset of the synchronous engine's output, with merge
//! ordering intact — and that every drop is visible in the stats,
//! including through a GSQL query over the built-in `GS_STATS` stream.

use gigascope::manager::{run_threaded, run_threaded_opts, ThreadedOptions};
use gigascope::{DropPolicy, Gigascope, ShedConfig, Tuple, Value};
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use gs_runtime::qos::{Offer, Shedder};
use gs_tests::prop::{check, Gen};
use std::collections::{HashMap, VecDeque};

// ---------------------------------------------------------------------
// Shedder invariants against a reference model
// ---------------------------------------------------------------------

/// Randomized offer/pop sequences against an independently written
/// model of the policy semantics. Invariants along the way:
/// - the buffer never exceeds its capacity;
/// - an LPF eviction always removes a minimal-depth resident, and only
///   for a strictly deeper arrival;
/// - popped items exactly match the model's FIFO of survivors;
/// - the drop counter equals the model's drop count.
#[test]
fn shedder_matches_reference_model() {
    check("qos_shedder_model", 256, |g| {
        let capacity = g.usize(1..8);
        let policy = *g.choice(&[DropPolicy::TailDrop, DropPolicy::LeastProcessedFirst]);
        let mut s = Shedder::new(capacity, policy);
        let mut model: VecDeque<(u32, u64)> = VecDeque::new();
        let mut next_id = 0u64;
        let mut model_dropped = 0u64;
        for _ in 0..g.usize(1..120) {
            if g.bool() {
                let depth = g.u32(0..6);
                let id = next_id;
                next_id += 1;
                let result = s.offer(depth, id);
                assert!(s.len() <= capacity, "offer must never exceed capacity");
                if model.len() < capacity {
                    assert_eq!(result, Offer::Accepted);
                    model.push_back((depth, id));
                    continue;
                }
                model_dropped += 1;
                let (min_idx, &(min_depth, min_id)) = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (d, _))| *d)
                    .expect("full, hence non-empty");
                let evict = policy == DropPolicy::LeastProcessedFirst && min_depth < depth;
                if evict {
                    assert_eq!(
                        result,
                        Offer::AcceptedEvicting(min_depth, min_id),
                        "LPF must evict the (first) minimal-depth resident"
                    );
                    model.remove(min_idx);
                    model.push_back((depth, id));
                } else {
                    assert_eq!(result, Offer::Rejected(depth, id));
                }
            } else {
                assert_eq!(s.pop(), model.pop_front(), "pop order must match the model");
            }
        }
        assert_eq!(s.total_dropped(), model_dropped);
        while let Some(got) = s.pop() {
            assert_eq!(Some(got), model.pop_front());
        }
        assert!(model.is_empty(), "shedder drained but the model still holds items");
    });
}

/// Tail drop may only refuse arrivals: everything it accepted comes out
/// in exactly the order it went in, regardless of interleaved pops.
#[test]
fn tail_drop_never_reorders_accepted_items() {
    check("qos_tail_drop_fifo", 256, |g| {
        let capacity = g.usize(1..6);
        let mut s = Shedder::new(capacity, DropPolicy::TailDrop);
        let mut accepted = Vec::new();
        let mut popped = Vec::new();
        for id in 0..g.u64(1..60) {
            if g.bool() {
                if s.offer(g.u32(0..6), id).kept() {
                    accepted.push(id);
                }
            } else if let Some((_, v)) = s.pop() {
                popped.push(v);
            }
        }
        while let Some((_, v)) = s.pop() {
            popped.push(v);
        }
        assert_eq!(popped, accepted, "tail drop must deliver accepted items FIFO");
    });
}

// ---------------------------------------------------------------------
// Manager-level: shedding only removes
// ---------------------------------------------------------------------

/// Non-aggregating templates only: under drops an aggregate's *counts*
/// change, so subset-of-sync holds for selection and merge outputs.
struct Template {
    program: &'static str,
    subscriptions: &'static [&'static str],
    merge_stream: Option<&'static str>,
}

const SHED_TEMPLATES: [Template; 2] = [
    Template {
        program: "DEFINE { query_name sel; } \
                  Select time, len From eth0.tcp Where destPort = 80",
        subscriptions: &["sel"],
        merge_stream: None,
    },
    Template {
        program: "DEFINE { query_name a; } Select time From eth0.tcp; \
                  DEFINE { query_name b; } Select time From eth1.tcp; \
                  DEFINE { query_name m; } Merge a.time : b.time From a, b",
        subscriptions: &["m"],
        merge_stream: Some("m"),
    },
];

fn system(program: &str, batch: usize, shed: Option<ShedConfig>) -> Gigascope {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.add_interface("eth1", 1, LinkType::Ethernet);
    gs.batch_size = batch;
    gs.shedding = shed;
    gs.add_program(program).unwrap();
    gs
}

fn trace(g: &mut Gen) -> Vec<CapPacket> {
    let n = g.usize(20..300);
    let mut ts_ns = 0u64;
    (0..n)
        .map(|i| {
            ts_ns += g.u64(0..2_000_000_000);
            let dport = *g.choice(&[80u16, 80, 443, 25]);
            let iface = g.u16(0..2);
            let f = FrameBuilder::tcp(0x0a000000 + i as u32, 0xc0a80001, 1024, dport)
                .payload(&vec![0u8; g.usize(0..32)])
                .build_ethernet();
            CapPacket::full(ts_ns, iface, LinkType::Ethernet, f)
        })
        .collect()
}

fn rows(tuples: &[Tuple]) -> Vec<Vec<u64>> {
    tuples
        .iter()
        .map(|t| t.values().iter().filter_map(|v| v.as_uint()).collect())
        .collect()
}

/// `a ⊆ b` as multisets.
fn sub_multiset(a: &[Vec<u64>], b: &[Vec<u64>]) -> bool {
    let mut counts: HashMap<&Vec<u64>, i64> = HashMap::new();
    for row in b {
        *counts.entry(row).or_default() += 1;
    }
    a.iter().all(|row| {
        let c = counts.entry(row).or_default();
        *c -= 1;
        *c >= 0
    })
}

/// With shedding enabled (any policy, any capacity, stalled subscriber
/// or not) the threaded run completes, its output is a sub-multiset of
/// the synchronous engine's, and merge output stays time-ordered —
/// drops remove tuples, they never invent, duplicate, or reorder them.
#[test]
fn shedding_output_is_subset_of_sync_with_merge_order() {
    check("qos_shed_subset", 20, |g| {
        let t = g.choice(&SHED_TEMPLATES);
        let pkts = trace(g);

        let gs = system(t.program, 256, None);
        let sync_out = gs.run_capture(pkts.iter().cloned(), t.subscriptions).unwrap();

        let policy = *g.choice(&[DropPolicy::LeastProcessedFirst, DropPolicy::TailDrop]);
        let capacity = *g.choice(&[1usize, 2, 4, 16]);
        let batch = *g.choice(&[1usize, 3]);
        let stall = g.bool();
        let gs = system(t.program, batch, Some(ShedConfig { policy, capacity }));
        let opts = ThreadedOptions {
            stall: if stall {
                t.subscriptions.iter().map(|s| s.to_string()).collect()
            } else {
                Vec::new()
            },
            ..Default::default()
        };
        let thr_out = run_threaded_opts(&gs, pkts.iter().cloned(), t.subscriptions, opts).unwrap();

        for name in t.subscriptions {
            assert!(
                sub_multiset(&rows(thr_out.stream(name)), &rows(sync_out.stream(name))),
                "stream `{name}` produced tuples the sync engine did not \
                 (policy {policy:?}, capacity {capacity}, batch {batch}, stall {stall})"
            );
        }
        if let Some(m) = t.merge_stream {
            let times: Vec<u64> =
                thr_out.stream(m).iter().filter_map(|t| t.get(0).as_uint()).collect();
            assert!(
                times.windows(2).all(|w| w[0] <= w[1]),
                "merge output out of order under shedding: {times:?}"
            );
        }
    });
}

/// Without shedding (blocking admission) the shed counters must be
/// identically zero on every queue — blocking never drops.
#[test]
fn blocking_admission_never_sheds() {
    check("qos_block_no_shed", 8, |g| {
        let t = g.choice(&SHED_TEMPLATES);
        let pkts = trace(g);
        let gs = system(t.program, *g.choice(&[1usize, 256]), None);
        let out = run_threaded(&gs, pkts.iter().cloned(), t.subscriptions).unwrap();
        for row in &out.counters {
            if row.counter == "shed_items" || row.counter == "shed_batches" {
                assert_eq!(row.value, 0, "{} shed under blocking admission", row.node);
            }
        }
    });
}

// ---------------------------------------------------------------------
// Acceptance: GSQL over GS_STATS in a threaded run
// ---------------------------------------------------------------------

fn is_node(t: &Tuple, col: usize, name: &str) -> bool {
    matches!(t.get(col), Value::Str(s) if s.as_ref() == name.as_bytes())
}

/// The issue's acceptance scenario: a threaded run where ordinary GSQL
/// queries over the built-in `GS_STATS` stream observe live per-operator
/// counters, and a deliberately stalled subscription triggers
/// least-processed-first shedding whose drop counts show up in those
/// same query results.
#[test]
fn gs_stats_query_sees_live_counters_and_shed_drops() {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.batch_size = 1; // one message per tuple: the stalled queue must overflow
    // Capacity sized so the stats traffic always fits even if a consumer
    // thread is descheduled the whole run — at batch size 1 the watch
    // queries produce one message per matching GS_STATS row, ~50 over
    // ~10 snapshots — while the stalled subscriber's 400 messages
    // overflow hard. Keeps the assertions below deterministic.
    gs.shedding =
        Some(ShedConfig { policy: DropPolicy::LeastProcessedFirst, capacity: 64 });
    gs.add_program(
        "DEFINE { query_name sel; } Select time From eth0.tcp; \
         DEFINE { query_name shedwatch; } \
         Select time, node, counter, value From GS_STATS Where counter = 'shed_items'; \
         DEFINE { query_name opwatch; } \
         Select time, node, counter, value From GS_STATS Where counter = 'tuples_out'",
    )
    .unwrap();
    // 400 packets over 8 seconds: several heartbeat rounds, so GS_STATS
    // snapshots are emitted while the run is still in flight.
    let pkts = (0..400u64).map(|i| {
        let f = FrameBuilder::tcp(1, 2, 999, 80).build_ethernet();
        CapPacket::full((i / 50) * 1_000_000_000 + i, 0, LinkType::Ethernet, f)
    });
    let out = run_threaded_opts(
        &gs,
        pkts,
        &["sel", "shedwatch", "opwatch"],
        ThreadedOptions { stall: vec!["sel".to_string()], ..Default::default() },
    )
    .unwrap();

    // The stalled subscriber's queue shed under least-processed-first,
    // and a GSQL query over GS_STATS saw the drops.
    let shed_seen: Vec<u64> = out
        .stream("shedwatch")
        .iter()
        .filter(|t| is_node(t, 1, "queue:sub:sel"))
        .filter_map(|t| t.get(3).as_uint())
        .collect();
    assert!(
        shed_seen.iter().any(|&v| v > 0),
        "the GS_STATS query must observe shed_items > 0 for the stalled queue; saw {shed_seen:?}"
    );
    assert!(
        shed_seen.windows(2).all(|w| w[0] <= w[1]),
        "shed counts are monotone across snapshots"
    );

    // Live per-operator counters: the LFTA's tuples_out is visible via
    // GSQL and its final snapshot value matches the registry exactly.
    let lfta_seen: Vec<u64> = out
        .stream("opwatch")
        .iter()
        .filter(|t| is_node(t, 1, "lfta:sel"))
        .filter_map(|t| t.get(3).as_uint())
        .collect();
    assert!(!lfta_seen.is_empty(), "per-operator counters must be queryable");
    assert_eq!(*lfta_seen.last().unwrap(), 400, "final snapshot has the LFTA's exact total");

    // The registry's own final snapshot agrees that shedding happened,
    // and the delivered + shed accounting covers every message.
    let shed = out.counter("queue:sub:sel", "shed_items").unwrap();
    assert!(shed > 0);
    assert!(out.stream("sel").len() < 400, "the stalled stream really lost tuples");
    assert!(out.stream("sel").len() as u64 + shed >= 400, "drops are fully accounted");
}
