//! Properties of partition-parallel HFTA execution: rewriting an
//! eligible aggregation HFTA into K hash-partitioned shards plus a
//! reunifying order-preserving merge must be invisible in the output.
//!
//! For randomized query mixes and packet traces, the threaded manager
//! and the synchronous engine at parallelism {1, 2, 8} all produce the
//! same multiset of rows as the unpartitioned reference, at batch sizes
//! {1, 256}, and the merge ordering contract (first column
//! nondecreasing) survives the fan-out/fan-in. With shedding enabled the
//! run still completes, stays ordered, and emits only group keys the
//! reference run saw — under drops an aggregate's *counts* change, so
//! multiset comparison is deliberately limited to the key columns.
//!
//! Runs on the in-repo deterministic harness ([`gs_tests::prop`]). Case
//! counts are modest: every case spawns the node/collector threads of
//! several concurrent runs, and parallelism 8 spawns 8 shard threads
//! plus the merge.

use gigascope::manager::run_threaded;
use gigascope::{DropPolicy, Gigascope, ShedConfig, Tuple};
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use gs_tests::prop::{check, Gen};
use std::collections::HashSet;

/// Parallelism degrees under test: the mandated no-op, the smallest real
/// split, and more shards than the trace has busy groups.
const PARALLELISM: [usize; 3] = [1, 2, 8];

/// Batch sizes under test: item-at-a-time and the default.
const BATCH_SIZES: [usize; 2] = [1, 256];

struct Template {
    program: &'static str,
    subscriptions: &'static [&'static str],
    /// Streams whose first column must be nondecreasing in emission
    /// order — the §2.1 ordering contract the reunifying merge preserves.
    ordered: &'static [&'static str],
    /// Stream whose HFTA the rewrite is expected to split at k >= 2
    /// (checked through the shard instances' stats registrations).
    parallel_stream: Option<&'static str>,
}

const TEMPLATES: [Template; 4] = [
    // Multi-key group-by over a named stream: the canonical eligible
    // shape — flush on `time`, hash on the full (time, destPort) key.
    Template {
        program: "DEFINE { query_name raw; } \
                  Select time, destPort, len From eth0.tcp; \
                  DEFINE { query_name perport; } \
                  Select time, destPort, count(*), sum(len) From raw \
                  Group By time, destPort",
        subscriptions: &["perport"],
        ordered: &["perport"],
        parallel_stream: Some("perport"),
    },
    // Split aggregation straight off the interface: the LFTA pre-agg
    // feeds a partitioned super-aggregate HFTA, so the router sits on a
    // capture-loop output edge rather than a node output edge.
    Template {
        program: "DEFINE { query_name tot; } \
                  Select time, count(*), sum(len) From eth0.tcp Group By time",
        subscriptions: &["tot"],
        ordered: &["tot"],
        parallel_stream: Some("tot"),
    },
    // HAVING variant: a residual filter above the aggregate must peel
    // through the eligibility check and run identically in every shard.
    Template {
        program: "DEFINE { query_name raw; } \
                  Select time, destPort, len From eth0.tcp; \
                  DEFINE { query_name busy; } \
                  Select time, destPort, count(*) From raw \
                  Group By time, destPort Having count(*) > 1",
        subscriptions: &["busy"],
        ordered: &["busy"],
        parallel_stream: Some("busy"),
    },
    // Ineligible control: a two-interface merge has no group key to hash
    // on, so the knob must leave it untouched at every parallelism.
    Template {
        program: "DEFINE { query_name a; } Select time From eth0.tcp; \
                  DEFINE { query_name b; } Select time From eth1.tcp; \
                  DEFINE { query_name m; } Merge a.time : b.time From a, b",
        subscriptions: &["m"],
        ordered: &["m"],
        parallel_stream: None,
    },
];

fn system(program: &str, batch: usize, parallelism: usize, shed: Option<ShedConfig>) -> Gigascope {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.add_interface("eth1", 1, LinkType::Ethernet);
    gs.batch_size = batch;
    gs.parallelism = parallelism;
    gs.shedding = shed;
    gs.add_program(program).unwrap();
    gs
}

/// A time-ordered trace with random inter-arrival gaps (multi-second
/// jumps exercise heartbeat flushes and group closes), a wide port mix
/// (many concurrent groups so the hash actually spreads shards), and
/// random payload sizes.
fn trace(g: &mut Gen) -> Vec<CapPacket> {
    let n = g.usize(20..400);
    let mut ts_ns = 0u64;
    (0..n)
        .map(|i| {
            ts_ns += g.u64(0..3_000_000_000);
            let dport = *g.choice(&[80u16, 80, 443, 25, 53, 8080, 993, 123]);
            let iface = g.u16(0..2);
            let payload = vec![0u8; g.usize(0..64)];
            let f = FrameBuilder::tcp(0x0a000000 + i as u32, 0xc0a80001, 1024, dport)
                .payload(&payload)
                .build_ethernet();
            CapPacket::full(ts_ns, iface, LinkType::Ethernet, f)
        })
        .collect()
}

/// Multiset normalization: every tuple as its row of uints, sorted.
fn norm(tuples: &[Tuple]) -> Vec<Vec<u64>> {
    let mut rows: Vec<Vec<u64>> = tuples
        .iter()
        .map(|t| t.values().iter().filter_map(|v| v.as_uint()).collect())
        .collect();
    rows.sort();
    rows
}

fn assert_ordered(tuples: &[Tuple], what: &str) {
    let times: Vec<u64> = tuples.iter().filter_map(|t| t.get(0).as_uint()).collect();
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "{what}: merge order violated: {times:?}"
    );
}

/// The partition-parallel rewrite is output-invisible: for every
/// template, the synchronous engine AND the threaded manager at
/// parallelism {1, 2, 8} x batch {1, 256} reproduce the unpartitioned
/// reference multiset exactly, and ordered streams stay ordered. For the
/// eligible templates the shards must actually exist (their stats nodes
/// register as `hfta:<q>#<k>`); for the control they must not.
#[test]
fn partition_parallel_runs_match_unpartitioned_reference() {
    check("parallel_equivalence", 10, |g| {
        let t = g.choice(&TEMPLATES);
        let pkts = trace(g);

        let gs = system(t.program, 256, 1, None);
        let reference = gs.run_capture(pkts.iter().cloned(), t.subscriptions).unwrap();

        for par in PARALLELISM {
            let gs = system(t.program, 256, par, None);
            let sync_out = gs.run_capture(pkts.iter().cloned(), t.subscriptions).unwrap();
            for name in t.subscriptions {
                assert_eq!(
                    norm(reference.stream(name)),
                    norm(sync_out.stream(name)),
                    "sync stream `{name}` diverged at parallelism {par}"
                );
            }
            let sharded = sync_out.stats.counters.iter().any(|r| r.node.contains("#1/"));
            match t.parallel_stream {
                Some(q) if par >= 2 => assert!(
                    sync_out
                        .stats
                        .counters
                        .iter()
                        .any(|r| r.node.starts_with(&format!("hfta:{q}#{}", par - 1))),
                    "no shard stats for `{q}` at parallelism {par}"
                ),
                _ => assert!(!sharded, "unexpected shard instances at parallelism {par}"),
            }

            for batch in BATCH_SIZES {
                let gs = system(t.program, batch, par, None);
                let thr_out =
                    run_threaded(&gs, pkts.iter().cloned(), t.subscriptions).unwrap();
                assert_eq!(thr_out.packets, pkts.len() as u64);
                for name in t.subscriptions {
                    assert_eq!(
                        norm(reference.stream(name)),
                        norm(thr_out.stream(name)),
                        "threaded stream `{name}` diverged at parallelism {par}, \
                         batch {batch}"
                    );
                }
                for name in t.ordered {
                    assert_ordered(
                        thr_out.stream(name),
                        &format!("threaded `{name}` at parallelism {par}, batch {batch}"),
                    );
                }
            }
        }
    });
}

/// Columnar transport composed with partition parallelism: the router
/// hashes group keys straight from the columns, so at parallelism
/// {1, 4} x batch {1, 3, 256} a columnar threaded run must equal the
/// row-transport run and the unpartitioned reference, and the
/// reunifying merge must stay ordered.
#[test]
fn columnar_composes_with_partition_parallelism() {
    check("parallel_columnar", 8, |g| {
        let t = g.choice(&TEMPLATES);
        let pkts = trace(g);

        let gs = system(t.program, 256, 1, None);
        let reference = gs.run_capture(pkts.iter().cloned(), t.subscriptions).unwrap();

        for par in [1usize, 4] {
            for batch in [1usize, 3, 256] {
                let mut row_gs = system(t.program, batch, par, None);
                row_gs.columnar = false;
                let row_out =
                    run_threaded(&row_gs, pkts.iter().cloned(), t.subscriptions).unwrap();
                let col_gs = system(t.program, batch, par, None); // columnar defaults on
                let col_out =
                    run_threaded(&col_gs, pkts.iter().cloned(), t.subscriptions).unwrap();
                for name in t.subscriptions {
                    assert_eq!(
                        norm(row_out.stream(name)),
                        norm(col_out.stream(name)),
                        "columnar != row on `{name}` at parallelism {par}, batch {batch}"
                    );
                    assert_eq!(
                        norm(reference.stream(name)),
                        norm(col_out.stream(name)),
                        "columnar != reference on `{name}` at parallelism {par}, batch {batch}"
                    );
                }
                for name in t.ordered {
                    assert_ordered(
                        col_out.stream(name),
                        &format!("columnar `{name}` at parallelism {par}, batch {batch}"),
                    );
                }
            }
        }
    });
}

/// Partition parallelism composed with overload shedding: the run must
/// complete (punctuation broadcast keeps every shard's watermark moving,
/// so the reunifying merge cannot starve), outputs stay ordered, and
/// every emitted group key is one the unshedded reference also produced.
/// Counts are NOT compared — dropping input tuples legitimately changes
/// an aggregate's counts, so only the key columns admit a subset check.
#[test]
fn shedding_composes_with_partition_parallelism() {
    check("parallel_shed", 10, |g| {
        // Eligible aggregation templates only: the control has its own
        // shedding coverage in prop_qos.
        let t = g.choice(&TEMPLATES[..3]);
        let pkts = trace(g);

        let gs = system(t.program, 256, 1, None);
        let reference = gs.run_capture(pkts.iter().cloned(), t.subscriptions).unwrap();

        let par = *g.choice(&[2usize, 8]);
        let policy = *g.choice(&[DropPolicy::LeastProcessedFirst, DropPolicy::TailDrop]);
        let capacity = *g.choice(&[1usize, 2, 4, 16]);
        let batch = *g.choice(&[1usize, 3]);
        let mut gs = system(t.program, batch, par, Some(ShedConfig { policy, capacity }));
        // Shedding must compose with either transport representation.
        gs.columnar = *g.choice(&[false, true]);
        let thr_out = run_threaded(&gs, pkts.iter().cloned(), t.subscriptions).unwrap();
        assert_eq!(thr_out.packets, pkts.len() as u64);

        for name in t.subscriptions {
            // Group keys lead the row: `time` alone or (time, destPort).
            let key_cols = if t.program.contains("destPort, count") { 2 } else { 1 };
            let seen: HashSet<Vec<u64>> = norm(reference.stream(name))
                .into_iter()
                .map(|row| row[..key_cols].to_vec())
                .collect();
            for row in norm(thr_out.stream(name)) {
                assert!(
                    seen.contains(&row[..key_cols]),
                    "stream `{name}` invented group key {:?} under shedding \
                     (policy {policy:?}, capacity {capacity}, parallelism {par}, \
                     batch {batch})",
                    &row[..key_cols]
                );
            }
        }
        for name in t.ordered {
            assert_ordered(
                thr_out.stream(name),
                &format!("threaded `{name}` under shedding at parallelism {par}"),
            );
        }
    });
}
