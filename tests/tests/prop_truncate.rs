//! Property tests: packet decoding never panics on truncated input.
//!
//! A capture card's snap length, a corrupted ring buffer, or a hostile
//! sender can all hand the LFTA layer a prefix of a frame. Decoding must
//! degrade to `Other`/`None` fields (so the protocol prefilter drops the
//! tuple), never unwind. These properties feed **every prefix** of valid
//! TCP, UDP, IPv6, and Netflow frames — plus pure noise — through
//! [`PacketView::parse`] and every field accessor.

use bytes::Bytes;
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use gs_packet::ether::{EtherHeader, MacAddr, ETHERTYPE_IPV6};
use gs_packet::ipv6::Ipv6Header;
use gs_packet::netflow::NetflowRecord;
use gs_packet::tcp::TcpHeader;
use gs_packet::view::PacketView;
use gs_tests::prop::{check, Gen};

/// Parse one buffer and touch every accessor; any panic fails the case.
fn exercise(link: LinkType, data: Vec<u8>) {
    let v = PacketView::parse(CapPacket::full(1_000, 0, link, Bytes::from(data)));
    let _ = v.ip_version();
    let _ = v.ip_protocol();
    let _ = v.ipv4();
    let _ = v.ipv6();
    let _ = v.tcp();
    let _ = v.udp();
    let _ = v.icmp();
    let _ = v.payload().map(|p| p.len());
    let _ = (&v.netflow, &v.bgp);
}

/// Feed every prefix of `frame` through the decoder, as both a full
/// capture and a snapped one (cap_len < wire_len).
fn all_prefixes(link: LinkType, frame: &[u8]) {
    for cut in 0..=frame.len() {
        exercise(link, frame[..cut].to_vec());
        let cap = CapPacket::full(1_000, 0, link, Bytes::from(frame.to_vec())).snap(cut);
        let v = PacketView::parse(cap);
        let _ = v.payload().map(|p| p.len());
    }
}

fn arb_ipv4_frame(g: &mut Gen) -> (LinkType, Bytes) {
    let src = g.u32(1..u32::MAX);
    let dst = g.u32(1..u32::MAX);
    let sp = g.u16(1..u16::MAX);
    let dp = g.u16(1..u16::MAX);
    let payload = g.bytes(0..64);
    let b = if g.bool() {
        FrameBuilder::tcp(src, dst, sp, dp).payload(&payload)
    } else {
        FrameBuilder::udp(src, dst, sp, dp).payload(&payload)
    };
    if g.bool() {
        (LinkType::Ethernet, b.build_ethernet())
    } else {
        (LinkType::RawIp, b.build_raw_ip())
    }
}

/// Hand-assembled IPv6 frame (the builder is IPv4-only): fixed header,
/// TCP transport, optional Ethernet encapsulation.
fn arb_ipv6_frame(g: &mut Gen) -> (LinkType, Vec<u8>) {
    let payload = g.bytes(0..48);
    let mut l4 = Vec::new();
    TcpHeader {
        src_port: g.u16(1..u16::MAX),
        dst_port: g.u16(1..u16::MAX),
        seq: g.u32(0..u32::MAX),
        ack: 0,
        header_len: 20,
        flags: 0x10,
        window: 65535,
        checksum: 0,
        urgent: 0,
    }
    .encode(&mut l4)
    .expect("fixed 20-byte header");
    l4.extend_from_slice(&payload);
    let mut ip = Vec::new();
    Ipv6Header {
        traffic_class: g.u8(0..u8::MAX),
        flow_label: g.u32(0..0x10_0000),
        payload_len: l4.len() as u16,
        next_header: gs_packet::ip::PROTO_TCP,
        hop_limit: 64,
        src: (u128::from(g.u64(1..u64::MAX)) << 64) | u128::from(g.u64(1..u64::MAX)),
        dst: (u128::from(g.u64(1..u64::MAX)) << 64) | u128::from(g.u64(1..u64::MAX)),
    }
    .encode(&mut ip);
    ip.extend_from_slice(&l4);
    if g.bool() {
        let mut frame = Vec::with_capacity(14 + ip.len());
        EtherHeader {
            dst: MacAddr([2, 0, 0, 0, 0, 2]),
            src: MacAddr([2, 0, 0, 0, 0, 1]),
            ethertype: ETHERTYPE_IPV6,
        }
        .encode(&mut frame);
        frame.extend_from_slice(&ip);
        (LinkType::Ethernet, frame)
    } else {
        (LinkType::RawIp, ip)
    }
}

fn arb_netflow_frame(g: &mut Gen) -> Vec<u8> {
    let rec = NetflowRecord {
        src_addr: g.u32(0..u32::MAX),
        dst_addr: g.u32(0..u32::MAX),
        packets: g.u32(0..u32::MAX),
        octets: g.u32(0..u32::MAX),
        first: g.u32(0..u32::MAX),
        last: g.u32(0..u32::MAX),
        src_port: g.u16(0..u16::MAX),
        dst_port: g.u16(0..u16::MAX),
        tcp_flags: g.u8(0..u8::MAX),
        protocol: g.u8(0..u8::MAX),
        tos: g.u8(0..u8::MAX),
        src_as: g.u16(0..u16::MAX),
        dst_as: g.u16(0..u16::MAX),
    };
    let mut buf = Vec::new();
    rec.encode(&mut buf);
    buf
}

#[test]
fn every_prefix_of_ipv4_frames_decodes_without_panic() {
    check("truncate_ipv4", 64, |g| {
        let (link, frame) = arb_ipv4_frame(g);
        all_prefixes(link, &frame);
    });
}

#[test]
fn every_prefix_of_ipv6_frames_decodes_without_panic() {
    check("truncate_ipv6", 64, |g| {
        let (link, frame) = arb_ipv6_frame(g);
        all_prefixes(link, &frame);
    });
}

#[test]
fn every_prefix_of_netflow_records_decodes_without_panic() {
    check("truncate_netflow", 64, |g| {
        let frame = arb_netflow_frame(g);
        all_prefixes(LinkType::NetflowRecord, &frame);
    });
}

#[test]
fn random_noise_decodes_without_panic() {
    check("truncate_noise", 128, |g| {
        let data = g.bytes(0..128);
        for link in [
            LinkType::Ethernet,
            LinkType::RawIp,
            LinkType::NetflowRecord,
            LinkType::BgpUpdate,
        ] {
            exercise(link, data.clone());
        }
    });
}

/// Flipping bytes inside otherwise-valid frames (length fields, version
/// nibbles, header-length fields) must also degrade, not unwind.
#[test]
fn corrupted_header_bytes_decode_without_panic() {
    check("truncate_corrupt", 64, |g| {
        let (link, frame) = arb_ipv4_frame(g);
        let mut data = frame.to_vec();
        if !data.is_empty() {
            for _ in 0..g.usize(1..4) {
                let at = g.usize(0..data.len());
                data[at] = g.u8(0..u8::MAX);
            }
        }
        exercise(link, data);
    });
}
