//! Protocol robustness battery for `gsqd` (the always-on daemon).
//!
//! Two property families:
//!
//! 1. **Session equivalence** — randomized *valid* session scripts
//!    (register / unregister / subscribe / unsubscribe / health /
//!    stats / ping / wait-epoch in arbitrary interleavings) must leave
//!    the daemon coherent, and every complete epoch a subscriber
//!    observes must equal a one-shot `run_threaded` over the same
//!    epoch's packets ([`gs_tests::daemon::one_shot_epoch`]).
//!
//! 2. **Adversarial decoding** — truncated length prefixes, oversized
//!    declared lengths, mid-frame disconnects, garbage bytes, and
//!    well-framed junk opcodes must each cost at most that one
//!    connection: a clean ERR and/or a close, never a panic, and a
//!    sibling session on the same daemon keeps working.
//!
//! Runs on the in-repo deterministic harness ([`gs_tests::prop`]) with
//! modest case counts: every equivalence case boots a daemon and runs
//! real epochs.

use gigascope::server::client::{Client, ClientError};
use gigascope::server::{self, wire};
use gs_tests::daemon::{norm, one_shot_epoch, small_source, test_config, CLIENT_TIMEOUT};
use gs_tests::prop::{check, Gen};

const Q0: &str = "DEFINE { query_name q0; } \
     Select time, destPort, count(*) From eth0.tcp Group By time, destPort";
const Q1: &str = "DEFINE { query_name q1; } Select time, len From eth0.tcp Where destPort = 80";
const TEMPLATES: [(&str, &str); 2] = [("q0", Q0), ("q1", Q1)];

fn connect(addr: std::net::SocketAddr) -> Client {
    let mut c = Client::connect(addr).expect("connect");
    c.set_timeout(Some(CLIENT_TIMEOUT)).expect("timeout");
    c
}

#[test]
fn randomized_sessions_match_one_shot_runs() {
    check("daemon_session_equivalence", 6, |g: &mut Gen| {
        let source = small_source(0xD0_0000 + g.u64(0..1_000_000));
        let mut daemon = server::start(test_config(source.clone())).expect("daemon start");
        let mut client = connect(daemon.addr());
        let mut registered = [false, false];

        // ---- The random script --------------------------------------
        for _ in 0..g.usize(4..14) {
            let i = g.usize(0..2);
            let (name, program) = TEMPLATES[i];
            match g.u8(0..8) {
                0 => match client.register(program) {
                    Ok(names) => {
                        assert!(!registered[i], "duplicate register of {name} must be refused");
                        assert_eq!(names, vec![name.to_string()]);
                        registered[i] = true;
                    }
                    Err(ClientError::Rejected(_)) => {
                        assert!(registered[i], "register of fresh {name} must succeed");
                    }
                    Err(e) => panic!("register transport error: {e}"),
                },
                1 => match client.unregister(name) {
                    Ok(()) => {
                        assert!(registered[i], "unregister of absent {name} must be refused");
                        registered[i] = false;
                    }
                    Err(ClientError::Rejected(_)) => {
                        assert!(!registered[i], "unregister of live {name} must succeed");
                    }
                    Err(e) => panic!("unregister transport error: {e}"),
                },
                2 => client.subscribe(name).expect("subscribe is always accepted"),
                3 => client.unsubscribe(name).expect("unsubscribe is always accepted"),
                4 => client.ping().expect("ping"),
                5 => {
                    let mut live: Vec<&str> = TEMPLATES
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| registered[*j])
                        .map(|(_, (n, _))| *n)
                        .collect();
                    live.sort_unstable();
                    let rows = client.health().expect("health");
                    let got: Vec<&str> = rows.iter().map(|r| r.query.as_str()).collect();
                    assert_eq!(got, live, "HEALTH must list exactly the registered queries");
                }
                6 => {
                    let rows = client.stats().expect("stats");
                    assert!(
                        rows.iter().any(|(n, c, _)| n == "daemon" && c == "epochs"),
                        "STATS must include the daemon node"
                    );
                }
                _ => {
                    let done = client.wait_epoch(0).expect("wait_epoch(0) returns immediately");
                    let later = client.wait_epoch(done + 1).expect("wait one more epoch");
                    assert!(later > done);
                }
            }
        }

        // ---- Deterministic verification tail ------------------------
        // Make sure q0 is live and subscribed, then check that two full
        // epochs of frames match the one-shot engine bit for bit
        // (modulo cross-group emission order).
        if !registered[0] {
            client.register(Q0).expect("final register of q0");
        }
        client.subscribe("q0").expect("final subscribe");
        for _ in 0..2 {
            let (epoch, rows) = client.read_epoch("q0").expect("epoch of q0 frames");
            let reference = one_shot_epoch(Q0, &source, epoch, &["q0"]);
            assert_eq!(
                norm(&rows),
                norm(&reference["q0"]),
                "daemon epoch {epoch} of q0 diverges from the one-shot engine"
            );
        }
        drop(client);
        daemon.shutdown();
    });
}

#[test]
fn adversarial_bytes_cost_at_most_one_connection() {
    // One daemon shared by every case: a wedged or crashed daemon fails
    // the *next* case's sibling check, so survival is continuously
    // re-proven. A real query keeps the engine loop busy throughout.
    let source = small_source(0xBAD);
    let mut config = test_config(source);
    config.initial_program = Some(Q1.to_string());
    let mut daemon = server::start(config).expect("daemon start");
    let addr = daemon.addr();

    check("daemon_adversarial_decoder", 24, |g: &mut Gen| {
        let mut evil = connect(addr);
        match g.u8(0..5) {
            0 => {
                // Truncated length prefix: fewer than 4 bytes, then cut.
                let n = g.usize(1..4);
                evil.send_bytes(&[0u8; 4][..n]).expect("send");
                drop(evil); // mid-prefix disconnect
            }
            1 => {
                // Oversized declared length: must draw ERR, then close,
                // without the daemon allocating the claimed body.
                let len = g.u32(wire::MAX_REQUEST + 1..u32::MAX);
                evil.send_bytes(&len.to_be_bytes()).expect("send");
                match evil.read_frame() {
                    Ok((op, _)) => assert_eq!(op, wire::ERR, "oversized length must draw ERR"),
                    Err(e) => panic!("expected ERR frame, got {e}"),
                }
                // After the ERR the daemon hangs up.
                assert!(evil.read_frame().is_err(), "connection must be closed after ERR");
            }
            2 => {
                // Mid-frame disconnect: declare an honest length, ship
                // only part of the body, vanish.
                let declared = g.u32(8..1024);
                let sent = g.usize(0..8);
                evil.send_bytes(&declared.to_be_bytes()).expect("send");
                evil.send_bytes(&vec![wire::REGISTER; sent]).expect("send");
                drop(evil);
            }
            3 => {
                // Garbage bytes: whatever framing they imply, the worst
                // case is an ERR + close on this connection.
                let junk = g.bytes(1..64);
                let _ = evil.send_bytes(&junk);
                drop(evil);
            }
            _ => {
                // Well-framed junk: an unknown opcode is a protocol
                // error but NOT framing damage — the connection lives.
                let payload = g.bytes(0..32);
                let opcode = g.u8(0x10..0x7F);
                evil.send_raw(opcode, &payload).expect("send");
                match evil.read_frame() {
                    Ok((op, body)) => {
                        assert_eq!(op, wire::ERR);
                        let msg = String::from_utf8_lossy(&body).into_owned();
                        assert!(msg.contains("unknown opcode"), "got: {msg}");
                    }
                    Err(e) => panic!("expected ERR frame, got {e}"),
                }
                evil.ping().expect("connection must survive an unknown opcode");
            }
        }

        // The sibling session — and the daemon itself — must be fine.
        let mut sibling = connect(addr);
        sibling.ping().expect("sibling ping");
        let rows = sibling.health().expect("sibling health");
        assert_eq!(rows.len(), 1, "q1 still registered");
        assert_eq!(rows[0].query, "q1");
        let done = sibling.wait_epoch(0).expect("epoch poll");
        sibling.wait_epoch(done + 1).expect("engine still making progress");
    });

    daemon.shutdown();
}

#[test]
fn malformed_requests_on_valid_frames_draw_err_not_close() {
    // Field-level damage inside a well-formed frame: bad UTF-8 in a
    // REGISTER, a short WAIT_EPOCH payload. The decoder must reject
    // each with ERR and keep the session.
    let mut daemon = server::start(test_config(small_source(7))).expect("daemon start");
    let mut client = connect(daemon.addr());

    client.send_raw(wire::REGISTER, &[0xFF, 0xFE, 0x80]).expect("send");
    let (op, body) = client.read_frame().expect("reply");
    assert_eq!(op, wire::ERR);
    assert!(String::from_utf8_lossy(&body).contains("UTF-8"));

    client.send_raw(wire::WAIT_EPOCH, &[1, 2, 3]).expect("send");
    let (op, _) = client.read_frame().expect("reply");
    assert_eq!(op, wire::ERR);

    client.ping().expect("session survives field-level damage");
    daemon.shutdown();
}
