//! Property tests on the GSQL front end: print/reparse stability, lexer
//! robustness, and window-extraction consistency.

use gs_gsql::ast::{BinOp, Expr, Query, QueryBody, SelectBody, SelectItem, TableRef};
use gs_gsql::catalog::{Catalog, InterfaceDef};
use gs_gsql::pretty::print_query;
use gs_packet::capture::LinkType;
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        !matches!(
            s.to_ascii_uppercase().as_str(),
            "SELECT" | "FROM" | "WHERE" | "GROUP" | "BY" | "HAVING" | "AS" | "AND" | "OR"
                | "NOT" | "MERGE" | "DEFINE" | "TRUE" | "FALSE"
        )
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_name().prop_map(|n| Expr::Column { qualifier: None, name: n }),
        (arb_name(), arb_name())
            .prop_map(|(q, n)| Expr::Column { qualifier: Some(q), name: n }),
        (0u64..10_000).prop_map(Expr::UIntLit),
        any::<bool>().prop_map(Expr::BoolLit),
        any::<u32>().prop_map(Expr::IpLit),
        "[a-z ]{0,8}".prop_map(Expr::StrLit),
        arb_name().prop_map(Expr::Param),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(l, r, op)| Expr::Binary {
                op,
                left: Box::new(l),
                right: Box::new(r),
            }),
            inner.clone().prop_map(|a| Expr::Unary {
                op: gs_gsql::ast::UnOp::Not,
                arg: Box::new(a)
            }),
            (arb_name(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(n, args)| Expr::Func { name: n, args }),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::BitAnd),
        Just(BinOp::BitOr),
        Just(BinOp::BitXor),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        arb_name(),
        proptest::collection::vec((arb_expr(), proptest::option::of(arb_name())), 1..4),
        arb_name(),
        proptest::option::of(arb_expr()),
        proptest::collection::vec((arb_expr(), proptest::option::of(arb_name())), 0..3),
    )
        .prop_map(|(qname, projs, table, where_c, group)| Query {
            defines: vec![("query_name".into(), qname)],
            body: QueryBody::Select(SelectBody {
                projections: projs
                    .into_iter()
                    .map(|(e, a)| SelectItem { expr: e, alias: a })
                    .collect(),
                from: vec![TableRef { interface: None, name: table, alias: None }],
                where_clause: where_c,
                group_by: group
                    .into_iter()
                    .map(|(e, a)| SelectItem { expr: e, alias: a })
                    .collect(),
                having: None,
            }),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_reparse_is_identity(q in arb_query()) {
        let text = print_query(&q);
        let q2 = gs_gsql::parse_query(&text)
            .unwrap_or_else(|e| panic!("printed query failed to reparse: {e}\n{text}"));
        prop_assert_eq!(q, q2, "roundtrip changed the AST:\n{}", text);
    }

    #[test]
    fn lexer_never_panics(src in "\\PC{0,64}") {
        let _ = gs_gsql::lexer::lex(&src);
    }

    #[test]
    fn parser_never_panics(src in "[a-zA-Z0-9_.,;:()'$*/+<>=&|^ \\n-]{0,96}") {
        let _ = gs_gsql::parse_query(&src);
        let _ = gs_gsql::parse_program(&src);
    }

    #[test]
    fn analyzer_never_panics_on_valid_parse(src in "[a-zA-Z0-9_.,;()'$* ]{0,64}") {
        if let Ok(q) = gs_gsql::parse_query(&src) {
            let mut catalog = Catalog::with_builtins();
            catalog.add_interface(InterfaceDef {
                name: "eth0".into(),
                id: 0,
                link: LinkType::Ethernet,
            });
            let _ = gs_gsql::analyze(&q, &catalog);
        }
    }

    #[test]
    fn window_bounds_are_consistent(k1 in 0i64..50, k2 in 0i64..50) {
        // B.time >= C.time - k1 AND B.time <= C.time + k2 must extract
        // window [-k1, k2] whenever non-empty.
        let src = format!(
            "Select B.time FROM eth0.tcp B, eth1.tcp C \
             WHERE B.time >= C.time - {k1} and B.time <= C.time + {k2}"
        );
        let mut catalog = Catalog::with_builtins();
        catalog.add_interface(InterfaceDef { name: "eth0".into(), id: 0, link: LinkType::Ethernet });
        catalog.add_interface(InterfaceDef { name: "eth1".into(), id: 1, link: LinkType::Ethernet });
        let q = gs_gsql::parse_query(&src).unwrap();
        let aq = gs_gsql::analyze(&q, &catalog).unwrap();
        let gs_gsql::plan::Plan::Join { window, .. } = &aq.plan else {
            return Err(TestCaseError::fail("expected join plan"));
        };
        prop_assert_eq!(window.lo, -k1);
        prop_assert_eq!(window.hi, k2);
    }
}
