//! Property tests on the GSQL front end: print/reparse stability, lexer
//! robustness, and window-extraction consistency.
//!
//! Runs on the in-repo deterministic harness ([`gs_tests::prop`]); the
//! property assertions are unchanged from the original proptest suite.

use gs_gsql::ast::{BinOp, Expr, Query, QueryBody, SelectBody, SelectItem, TableRef};
use gs_gsql::catalog::{Catalog, InterfaceDef};
use gs_gsql::pretty::print_query;
use gs_packet::capture::LinkType;
use gs_tests::prop::{check, Gen, DEFAULT_CASES};

fn arb_name(g: &mut Gen) -> String {
    loop {
        let mut s = g.string_of(b"abcdefghijklmnopqrstuvwxyz", 1..2);
        s.push_str(&g.string_of(
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_",
            0..7,
        ));
        let keyword = matches!(
            s.to_ascii_uppercase().as_str(),
            "SELECT" | "FROM" | "WHERE" | "GROUP" | "BY" | "HAVING" | "AS" | "AND" | "OR"
                | "NOT" | "MERGE" | "DEFINE" | "TRUE" | "FALSE"
        );
        if !keyword {
            return s;
        }
    }
}

const BINOPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Mod,
    BinOp::And,
    BinOp::Or,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::BitAnd,
    BinOp::BitOr,
    BinOp::BitXor,
];

fn arb_leaf(g: &mut Gen) -> Expr {
    match g.usize(0..7) {
        0 => Expr::Column { qualifier: None, name: arb_name(g) },
        1 => Expr::Column { qualifier: Some(arb_name(g)), name: arb_name(g) },
        2 => Expr::UIntLit(g.u64(0..10_000)),
        3 => Expr::BoolLit(g.bool()),
        4 => Expr::IpLit(g.any()),
        5 => Expr::StrLit(g.string_of(b"abcdefghijklmnopqrstuvwxyz ", 0..8)),
        _ => Expr::Param(arb_name(g)),
    }
}

fn arb_expr_depth(g: &mut Gen, depth: usize) -> Expr {
    if depth == 0 || g.usize(0..4) == 0 {
        return arb_leaf(g);
    }
    match g.usize(0..3) {
        0 => Expr::Binary {
            op: *g.choice(BINOPS),
            left: Box::new(arb_expr_depth(g, depth - 1)),
            right: Box::new(arb_expr_depth(g, depth - 1)),
        },
        1 => Expr::Unary {
            op: gs_gsql::ast::UnOp::Not,
            arg: Box::new(arb_expr_depth(g, depth - 1)),
        },
        _ => {
            let name = arb_name(g);
            let args = g.vec_with(0..3, |g| arb_expr_depth(g, depth - 1));
            Expr::Func { name, args }
        }
    }
}

fn arb_expr(g: &mut Gen) -> Expr {
    arb_expr_depth(g, 4)
}

fn arb_query(g: &mut Gen) -> Query {
    let qname = arb_name(g);
    let projs = g.vec_with(1..4, |g| (arb_expr(g), g.option(arb_name)));
    let table = arb_name(g);
    let where_c = g.option(arb_expr);
    let group = g.vec_with(0..3, |g| (arb_expr(g), g.option(arb_name)));
    Query {
        defines: vec![("query_name".into(), qname)],
        body: QueryBody::Select(SelectBody {
            projections: projs
                .into_iter()
                .map(|(e, a)| SelectItem { expr: e, alias: a })
                .collect(),
            from: vec![TableRef { interface: None, name: table, alias: None }],
            where_clause: where_c,
            group_by: group
                .into_iter()
                .map(|(e, a)| SelectItem { expr: e, alias: a })
                .collect(),
            having: None,
        }),
    }
}

fn assert_print_reparse_identity(q: &Query) {
    let text = print_query(q);
    let q2 = gs_gsql::parse_query(&text)
        .unwrap_or_else(|e| panic!("printed query failed to reparse: {e}\n{text}"));
    assert_eq!(*q, q2, "roundtrip changed the AST:\n{text}");
}

#[test]
fn print_reparse_is_identity() {
    check("print_reparse_is_identity", DEFAULT_CASES, |g| {
        assert_print_reparse_identity(&arb_query(g));
    });
}

/// Regression pinned from the retired proptest suite's saved-seed file:
/// a WHERE clause whose left operand is itself an `Eq` chain,
/// `(a = a) = a`, must survive print → reparse with its shape intact.
#[test]
fn print_reparse_regression_nested_eq() {
    let a = || Expr::Column { qualifier: None, name: "a".into() };
    let q = Query {
        defines: vec![("query_name".into(), "a".into())],
        body: QueryBody::Select(SelectBody {
            projections: vec![SelectItem { expr: a(), alias: None }],
            from: vec![TableRef { interface: None, name: "a".into(), alias: None }],
            where_clause: Some(Expr::Binary {
                op: BinOp::Eq,
                left: Box::new(Expr::Binary {
                    op: BinOp::Eq,
                    left: Box::new(a()),
                    right: Box::new(a()),
                }),
                right: Box::new(a()),
            }),
            group_by: vec![],
            having: None,
        }),
    };
    assert_print_reparse_identity(&q);
}

#[test]
fn lexer_never_panics() {
    check("lexer_never_panics", DEFAULT_CASES, |g| {
        // Printable unicode plus awkward ASCII, like the original `\PC`.
        let src: String = (0..g.usize(0..64))
            .map(|_| {
                if g.bool() {
                    char::from(g.u8(0x20..0x7f))
                } else {
                    char::from_u32(g.u32(0xa0..0x2000)).unwrap_or('¤')
                }
            })
            .collect();
        let _ = gs_gsql::lexer::lex(&src);
    });
}

#[test]
fn parser_never_panics() {
    check("parser_never_panics", DEFAULT_CASES, |g| {
        let src = g.string_of(
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.,;:()'$*/+<>=&|^ \n-",
            0..97,
        );
        let _ = gs_gsql::parse_query(&src);
        let _ = gs_gsql::parse_program(&src);
    });
}

#[test]
fn analyzer_never_panics_on_valid_parse() {
    check("analyzer_never_panics_on_valid_parse", DEFAULT_CASES, |g| {
        let src = g.string_of(
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.,;()'$* ",
            0..65,
        );
        if let Ok(q) = gs_gsql::parse_query(&src) {
            let mut catalog = Catalog::with_builtins();
            catalog.add_interface(InterfaceDef {
                name: "eth0".into(),
                id: 0,
                link: LinkType::Ethernet,
            });
            let _ = gs_gsql::analyze(&q, &catalog);
        }
    });
}

#[test]
fn window_bounds_are_consistent() {
    check("window_bounds_are_consistent", DEFAULT_CASES, |g| {
        let k1 = g.u64(0..50) as i64;
        let k2 = g.u64(0..50) as i64;
        // B.time >= C.time - k1 AND B.time <= C.time + k2 must extract
        // window [-k1, k2] whenever non-empty.
        let src = format!(
            "Select B.time FROM eth0.tcp B, eth1.tcp C \
             WHERE B.time >= C.time - {k1} and B.time <= C.time + {k2}"
        );
        let mut catalog = Catalog::with_builtins();
        catalog.add_interface(InterfaceDef { name: "eth0".into(), id: 0, link: LinkType::Ethernet });
        catalog.add_interface(InterfaceDef { name: "eth1".into(), id: 1, link: LinkType::Ethernet });
        let q = gs_gsql::parse_query(&src).unwrap();
        let aq = gs_gsql::analyze(&q, &catalog).unwrap();
        let gs_gsql::plan::Plan::Join { window, .. } = &aq.plan else {
            panic!("expected join plan");
        };
        assert_eq!(window.lo, -k1);
        assert_eq!(window.hi, k2);
    });
}
