//! Property: the cross-query shared prefilter is a pure execution
//! strategy — for every random multi-query mix, engine, parallelism and
//! batch size, a shared-on run produces exactly the same outputs,
//! per-query LFTA counters, and health verdicts as a shared-off run.
//!
//! The shared pass replays each LFTA's private decision sequence
//! (admission → BPF prefilter → protocol → predicate) off memoized
//! per-distinct verdicts, so equality must hold to the counter, not just
//! the output multiset.

use gigascope::manager::run_threaded;
use gigascope::{FaultPlan, Gigascope, QueryHealth, Tuple};
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use gs_tests::prop::{check, Gen};

/// Random query pool. Overlapping ports across templates force atom
/// sharing; the UDP and no-filter templates exercise distinct protocols
/// and empty masks; the sampled template exercises admission ordering.
fn gen_program(g: &mut Gen) -> (String, Vec<String>) {
    let n = g.usize(2..6);
    let mut program = String::new();
    let mut names = Vec::new();
    for i in 0..n {
        let name = format!("q{i}");
        let body = match g.usize(0..6) {
            0 => format!("Select time, destPort From eth0.tcp Where destPort = {}", 80),
            1 => format!(
                "Select time From eth0.tcp Where destPort = {} and srcPort = {}",
                *g.choice(&[80u16, 443]),
                *g.choice(&[1024u16, 2048])
            ),
            2 => "Select time, len From eth0.udp Where destPort = 53".to_string(),
            3 => "Select time, len From eth0.tcp".to_string(),
            4 => format!(
                "Select time, count(*) From eth0.tcp Where destPort = {} Group By time",
                *g.choice(&[80u16, 443, 25])
            ),
            _ => format!(
                "Select time, srcIP, count(*) From eth0.ip Where Protocol = {} \
                 Group By time, srcIP",
                *g.choice(&[6u8, 17])
            ),
        };
        program.push_str(&format!("DEFINE {{ query_name {name}; }} {body};\n"));
        names.push(name);
    }
    (program, names)
}

/// A time-ordered mixed trace: TCP on the shared ports, UDP, and odd
/// near-miss ports, with payload sizes crossing the snap boundary.
fn trace(g: &mut Gen) -> Vec<CapPacket> {
    let n = g.usize(30..300);
    let mut ts_ns = 0u64;
    (0..n)
        .map(|i| {
            ts_ns += g.u64(0..2_500_000_000);
            let payload = vec![0u8; g.usize(0..180)];
            let src = 0x0a00_0000 + (i as u32 % 7);
            let f = if g.usize(0..4) == 0 {
                FrameBuilder::udp(src, 0xc0a8_0001, 5353, *g.choice(&[53u16, 5060]))
                    .payload(&payload)
                    .build_ethernet()
            } else {
                let dport = *g.choice(&[80u16, 80, 443, 25, 1024, 9999]);
                FrameBuilder::tcp(src, 0xc0a8_0001, *g.choice(&[1024u16, 2048, 3000]), dport)
                    .payload(&payload)
                    .build_ethernet()
            };
            CapPacket::full(ts_ns, 0, LinkType::Ethernet, f)
        })
        .collect()
}

fn system(program: &str, shared: bool, parallelism: usize, batch: usize) -> Gigascope {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.shared_prefilter = shared;
    gs.parallelism = parallelism;
    gs.batch_size = batch;
    gs.add_program(program).unwrap();
    gs
}

/// Lossless multiset normalization: every full row, sorted. Group-by
/// queries drain `HashMap` groups on flush, so emission order *within* a
/// time bucket is per-instance (true of two shared-off runs too) — the
/// multiset is the deterministic contract, and the per-LFTA counter
/// equality below pins the execution itself.
fn norm(tuples: &[Tuple]) -> Vec<String> {
    let mut rows: Vec<String> = tuples.iter().map(|t| format!("{t:?}")).collect();
    rows.sort();
    rows
}

/// Synchronous engine: shared-on must be *byte-identical* to shared-off —
/// same tuples in the same order, same per-LFTA counters, clean health.
#[test]
fn shared_prefilter_is_identity_on_sync_engine() {
    check("prefilter_sync_equivalence", 32, |g| {
        let (program, names) = gen_program(g);
        let pkts = trace(g);
        let subs: Vec<&str> = names.iter().map(String::as_str).collect();

        let on = system(&program, true, 1, 256).run_capture(pkts.iter().cloned(), &subs).unwrap();
        let off = system(&program, false, 1, 256).run_capture(pkts.iter().cloned(), &subs).unwrap();

        for name in &names {
            assert_eq!(
                norm(on.stream(name)),
                norm(off.stream(name)),
                "stream `{name}` diverged\n{program}"
            );
        }
        assert_eq!(on.stats.lfta, off.stats.lfta, "per-LFTA counters diverged\n{program}");
        assert!(on.stats.health.all_ok() && off.stats.health.all_ok());
    });
}

/// Threaded manager: shared-on matches shared-off (and the synchronous
/// engine) across parallelism {1, 4} × batch {1, 256}.
#[test]
fn shared_prefilter_is_identity_on_threaded_manager() {
    check("prefilter_threaded_equivalence", 10, |g| {
        let (program, names) = gen_program(g);
        let pkts = trace(g);
        let subs: Vec<&str> = names.iter().map(String::as_str).collect();

        let sync_out =
            system(&program, true, 1, 256).run_capture(pkts.iter().cloned(), &subs).unwrap();

        for parallelism in [1usize, 4] {
            for batch in [1usize, 256] {
                let on = run_threaded(
                    &system(&program, true, parallelism, batch),
                    pkts.iter().cloned(),
                    &subs,
                )
                .unwrap();
                let off = run_threaded(
                    &system(&program, false, parallelism, batch),
                    pkts.iter().cloned(),
                    &subs,
                )
                .unwrap();
                for name in &names {
                    assert_eq!(
                        norm(on.stream(name)),
                        norm(off.stream(name)),
                        "stream `{name}` diverged at par={parallelism} batch={batch}\n{program}"
                    );
                    assert_eq!(
                        norm(sync_out.stream(name)),
                        norm(on.stream(name)),
                        "shared threaded != sync on `{name}` at par={parallelism} batch={batch}"
                    );
                }
            }
        }
    });
}

/// Quarantining one query must leave the shared pass intact for its
/// siblings: the faulty query's HFTA is contained identically with the
/// prefilter on and off, and sibling outputs and LFTA counters match.
#[test]
fn quarantine_leaves_shared_pass_intact_for_siblings() {
    let program = "DEFINE { query_name raw; } Select time, len From eth0.tcp; \
                   DEFINE { query_name agg; } \
                   Select time, count(*), sum(len) From raw Group By time; \
                   DEFINE { query_name sib; } \
                   Select time, destPort From eth0.tcp Where destPort = 80";
    check("prefilter_quarantine", 12, |g| {
        let pkts = trace(g);
        let run = |shared: bool| {
            let mut gs = system(program, shared, 1, 256);
            gs.faults = Some(FaultPlan::new().panic_at("agg", 1));
            gs.run_capture(pkts.iter().cloned(), &["agg", "sib", "raw"]).unwrap()
        };
        let on = run(true);
        let off = run(false);
        // The faulted query is quarantined the same way either mode.
        assert!(on.stats.health.failed("agg"));
        assert_eq!(on.stats.health.failed("agg"), off.stats.health.failed("agg"));
        // Siblings are untouched: same outputs, same LFTA counters.
        for name in ["sib", "raw"] {
            assert_eq!(on.stream(name), off.stream(name), "sibling `{name}` diverged");
        }
        assert_eq!(on.stats.lfta, off.stats.lfta);
        assert!(matches!(on.stats.health.of("sib"), QueryHealth::Ok));
    });
}

/// `remove_program` unregisters a query's streams and the shared pass is
/// rebuilt from the survivors on the next run.
#[test]
fn remove_program_rebuilds_shared_pass() {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.add_program(
        "DEFINE { query_name keep; } Select time, destPort From eth0.tcp Where destPort = 80; \
         DEFINE { query_name drop_me; } Select time From eth0.tcp Where srcPort = 25",
    )
    .unwrap();
    let before = gs.explain_prefilter().unwrap().unwrap();
    assert!(before.contains("lfta drop_me"));

    // A dependent query blocks removal of its upstream.
    gs.add_program("DEFINE { query_name dep; } Select time, count(*) From keep Group By time")
        .unwrap();
    assert!(gs.remove_program("keep").is_err());
    gs.remove_program("dep").unwrap();
    gs.remove_program("drop_me").unwrap();

    let after = gs.explain_prefilter().unwrap().unwrap();
    assert!(!after.contains("lfta drop_me"), "{after}");
    assert!(after.contains("lfta keep"), "{after}");

    // The survivor still runs, and its stream name is reusable.
    let pkts: Vec<CapPacket> = (0..10)
        .map(|i| {
            let f = FrameBuilder::tcp(1, 2, 999, if i % 2 == 0 { 80 } else { 25 })
                .payload(b"x")
                .build_ethernet();
            CapPacket::full(i * 1_000_000_000, 0, LinkType::Ethernet, f)
        })
        .collect();
    let out = gs.run_capture(pkts.into_iter(), &["keep"]).unwrap();
    assert_eq!(out.stream("keep").len(), 5);
    gs.add_program("DEFINE { query_name drop_me; } Select time From eth0.udp").unwrap();
}
