//! Lifecycle churn: register and unregister queries repeatedly while
//! packets flow, and prove nothing leaks.
//!
//! After every unregister the daemon must return to baseline:
//!
//! - the catalog accepts the same name again (and again, and again);
//! - the daemon-lifetime `StatsRegistry` holds no `daemon:restart:<q>`
//!   node for removed queries, and disconnect removes the
//!   `daemon:conn:<id>` node;
//! - subscriptions don't duplicate across re-registration (an old
//!   endpoint surviving an unregister would double every frame, which
//!   the one-shot equivalence check catches).

use gigascope::server::client::Client;
use gigascope::server::{self, wire::LifeState};
use gigascope::FaultPlan;
use gs_tests::daemon::{norm, one_shot_epoch, small_source, test_config, CLIENT_TIMEOUT};

const PROGRAM: &str = "DEFINE { query_name churn_raw; } Select time, len From eth0.tcp; \
     DEFINE { query_name churn_agg; } \
     Select time, count(*), sum(len) From churn_raw Group By time";

/// A distinct program the odd rounds interleave, so churn covers both
/// same-name and distinct-name reuse.
const OTHER: &str = "DEFINE { query_name churn_other; } \
     Select time, destPort From eth0.tcp Where destPort = 80";

#[test]
fn register_unregister_churn_returns_to_baseline() {
    let source = small_source(0xC0FFEE);
    let mut daemon = server::start(test_config(source.clone())).expect("daemon start");
    let registry = daemon.registry();

    let mut client = Client::connect(daemon.addr()).expect("connect");
    client.set_timeout(Some(CLIENT_TIMEOUT)).expect("timeout");

    // Baseline: the daemon-lifetime registry before anything is
    // registered, minus per-connection nodes (ids grow monotonically
    // across the run by design).
    let baseline = |reg: &gs_runtime::stats::StatsRegistry| -> Vec<String> {
        let mut nodes: Vec<String> = reg
            .snapshot()
            .into_iter()
            .map(|r| r.node)
            .filter(|n| !n.starts_with("daemon:conn:"))
            .collect();
        nodes.sort();
        nodes.dedup();
        nodes
    };
    let clean = baseline(&registry);
    assert_eq!(clean, vec!["daemon".to_string()], "fresh daemon has only its own node");

    for round in 0..8 {
        // Register (same two names every round; a leak in the catalog
        // or the supervisor would make this fail from round 1).
        let names = client.register(PROGRAM).expect("register must succeed after unregister");
        assert_eq!(names, vec!["churn_raw".to_string(), "churn_agg".to_string()]);
        if round % 2 == 1 {
            client.register(OTHER).expect("distinct name registers alongside");
        }

        // While live: restart nodes exist, health lists the queries.
        assert_eq!(registry.value("daemon:restart:churn_agg", "restarts"), Some(0));
        let health = client.health().expect("health");
        assert!(health.iter().all(|r| r.state == LifeState::Running));

        // Packets flow to a subscriber and match the one-shot engine —
        // a duplicated subscription endpoint or a stale catalog entry
        // would break equality.
        client.subscribe("churn_agg").expect("subscribe");
        let (epoch, rows) = client.read_epoch("churn_agg").expect("one full epoch");
        let reference = one_shot_epoch(PROGRAM, &source, epoch, &["churn_agg"]);
        assert_eq!(
            norm(&rows),
            norm(&reference["churn_agg"]),
            "round {round}: daemon epoch {epoch} diverges"
        );
        client.unsubscribe("churn_agg").expect("unsubscribe");

        // Dependents first: removing the producer while a consumer
        // reads it must be refused, then succeed in dependency order.
        assert!(
            client.unregister("churn_raw").is_err(),
            "removing a stream with a live dependent must be refused"
        );
        client.unregister("churn_agg").expect("unregister consumer");
        client.unregister("churn_raw").expect("unregister producer");
        if round % 2 == 1 {
            client.unregister("churn_other").expect("unregister other");
        }

        // Back to baseline: no restart nodes, no health rows.
        assert_eq!(baseline(&registry), clean, "round {round}: leaked stats nodes");
        assert!(client.health().expect("health").is_empty(), "round {round}: leaked health rows");
    }

    // Engine counters also drain once the catalog is empty.
    let done = client.wait_epoch(0).expect("poll");
    client.wait_epoch(done + 2).expect("two empty epochs");
    let stats = client.stats().expect("stats");
    assert!(
        stats.iter().all(|(n, _, _)| n == "daemon" || n.starts_with("daemon:conn:")),
        "engine counters must clear on an empty catalog: {stats:?}"
    );

    // Disconnect removes this connection's stats node.
    let my_conns = || {
        registry
            .snapshot()
            .into_iter()
            .filter(|r| r.node.starts_with("daemon:conn:"))
            .map(|r| r.node)
            .collect::<std::collections::BTreeSet<_>>()
    };
    assert!(!my_conns().is_empty(), "live connection has a stats node");
    drop(client);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while !my_conns().is_empty() && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(my_conns().is_empty(), "disconnect must remove the daemon:conn node");

    daemon.shutdown();
}

/// The Dead path of the same round-trip: a query that exhausts its
/// restart budget keeps its `daemon:restart:<q>` stats node while it
/// sits Dead (the death certificate is observable), but UNREGISTER must
/// reap the node with the catalog entry — and a re-REGISTER under the
/// same name is a fresh life with a zeroed restart count, not an heir
/// to the old one's exhausted budget.
#[test]
fn dead_query_unregister_reaps_stats_and_reregister_starts_fresh() {
    let source = small_source(0xD1ED);
    let mut config = test_config(source);
    // Every epoch panics churn_agg's HFTA on its first batch; budget 1
    // means the second charged failure retires it.
    config.faults = Some(FaultPlan::new().panic_at("churn_agg", 1));
    config.fault_epochs = 0..u64::MAX;
    config.restart_budget = 1;
    config.backoff_base = 1;
    let mut daemon = server::start(config).expect("daemon start");
    let registry = daemon.registry();
    let mut client = Client::connect(daemon.addr()).expect("connect");
    client.set_timeout(Some(CLIENT_TIMEOUT)).expect("timeout");

    for round in 0..3 {
        client.register(PROGRAM).expect("register");

        // Wait out the budget: restarts burn down, then Dead.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let health = client.health().expect("health");
            let agg = health.iter().find(|r| r.query == "churn_agg").expect("agg row");
            if agg.state == LifeState::Dead {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "round {round}: churn_agg never went Dead: {health:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        // Dead but registered: the stats node is the death certificate.
        assert_eq!(registry.value("daemon:restart:churn_agg", "dead"), Some(1));
        assert_eq!(registry.value("daemon:restart:churn_agg", "restarts"), Some(1));

        // UNREGISTER the Dead query (dependency order) and verify the
        // registry returns to baseline: no leaked restart node.
        client.unregister("churn_agg").expect("unregister dead consumer");
        client.unregister("churn_raw").expect("unregister producer");
        assert_eq!(
            registry.value("daemon:restart:churn_agg", "restarts"),
            None,
            "round {round}: a Dead query's stats node must be reaped on UNREGISTER"
        );
        assert!(
            client.health().expect("health").is_empty(),
            "round {round}: health rows must drain with the catalog"
        );
    }

    // A fresh registration after a Dead round starts at zero.
    client.register(PROGRAM).expect("re-register after death");
    let health = client.health().expect("health");
    let agg = health.iter().find(|r| r.query == "churn_agg").expect("agg row");
    assert_eq!(agg.restarts, 0, "fresh life, fresh budget");
    assert_eq!(registry.value("daemon:restart:churn_agg", "dead"), Some(0));

    daemon.shutdown();
}
