#!/usr/bin/env bash
# Offline CI gate for the gigascope-rs workspace.
#
# The workspace is hermetic: every dependency is a path dependency inside
# this repository (see DESIGN.md §8). This script is the enforcement point —
# it must pass on a machine with no network access and an empty cargo
# registry cache.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== offline release build =="
cargo build --release --offline

echo "== offline test suite =="
cargo test -q --offline

echo "== self-monitoring property/stats tests =="
# Explicit gate on the PR-3 suites (also covered by the full test run
# above): shedding invariants and exact per-operator counter accounting.
cargo test -q --offline -p gs-tests --test prop_qos --test end_to_end

echo "== partition-parallel property tests =="
# Explicit gate on the PR-4 suite (also covered by the full test run
# above): the partition-parallel rewrite is output-invisible at every
# parallelism x batch point, with and without shedding.
cargo test -q --offline -p gs-tests --test prop_parallel

echo "== faults gate: containment, quarantine, watchdog recovery =="
# Explicit gate on the PR-5 fault-isolation suites (also covered by the
# full test run above). Everything is offline and fixed-seed: the fault
# matrix (parallelism x shedding x batch with injected panics), the
# truncated-packet decoding properties, and the
# stalled-subscription-recovers-within-watchdog smoke test.
cargo test -q --offline -p gs-tests --test prop_faults --test prop_truncate --test watchdog
cargo test -q --offline -p gs-tests --test watchdog stalled_subscription_recovers_within_watchdog

echo "== stats overhead gate (<=5% on threaded benches) =="
# Interleaved stats-on/stats-off runs of the manager workload; exits
# non-zero if self-monitoring costs more than 5%.
GS_BENCH_QUICK=1 cargo run -q --release --offline -p gs-bench --bin stats_overhead

echo "== partition-parallel gate (par4 not slower than par1) =="
# Interleaved parallelism-1/parallelism-4 runs of the multi-key manager
# workload; exits non-zero if the partitioned run costs more than 10%.
# On hosts with fewer than 4 logical CPUs the numbers are printed but
# the comparison is skipped (the >=1.5x speedup figure is a manual
# measurement on a >=4-core machine).
GS_BENCH_QUICK=1 cargo run -q --release --offline -p gs-bench --bin parallel_gate

echo "== columnar gate (columnar >= 2x row transport) =="
# Interleaved row/columnar runs of the aggregation-heavy manager
# workload; exits non-zero if columnar transport is less than 2x the
# row-transport throughput. On hosts with fewer than 4 logical CPUs the
# numbers are printed but the comparison is skipped (the pipeline
# stages serialize, so the ratio measures nothing).
GS_BENCH_QUICK=1 cargo run -q --release --offline -p gs-bench --bin columnar_gate

echo "== shared prefilter property tests =="
# Explicit gate on the PR-7 suite (also covered by the full test run
# above): shared-prefilter-on output and counters are bit-identical to
# per-query evaluation across sync/threaded/parallel/quarantine runs.
cargo test -q --offline -p gs-tests --test prop_prefilter

echo "== shared prefilter gate (100 queries: shared >= 5x unshared) =="
# Interleaved shared-on/shared-off runs of the 100-query registration
# workload; exits non-zero below 5x. Runs at the full trace length (the
# whole gate is ~2s): the ratio measures steady-state dispatch, and the
# quick trace leaves engine build a visible fraction of a run. Skipped
# (numbers still printed) on hosts with fewer than 4 logical CPUs.
cargo run -q --release --offline -p gs-bench --bin prefilter_gate

echo "== daemon protocol/lifecycle tests =="
# Explicit gate on the PR-8 suites (also covered by the full test run
# above): randomized session equivalence vs one-shot runs, adversarial
# wire decoding, register/unregister churn, and auto-restart after
# injected panics.
cargo test -q --offline -p gs-tests \
    --test prop_daemon --test daemon_lifecycle --test daemon_restart

echo "== checkpoint/restore property tests =="
# Explicit gate on the PR-9 suites (also covered by the full test run
# above): snapshot codec rejection of every truncation prefix and random
# corruption with empty-window fallback, chunked capture/restore and
# seeded-fault retry equivalence vs continuous runs, and carry-state
# daemon sessions (window spanning epochs, fault + replay from
# checkpoint) matching the one-shot engine.
cargo test -q --offline -p gs-tests \
    --test prop_snapshot --test prop_checkpoint --test daemon_carry

echo "== snapshot overhead gate (<=5% on threaded benches) =="
# Interleaved carry-mode (restore + capture) vs plain runs of the
# manager workload; exits non-zero if checkpointing costs more than 5%
# on the steady-state path.
GS_BENCH_QUICK=1 cargo run -q --release --offline -p gs-bench --bin snapshot_overhead

echo "== daemon gate: scripted gsqd/gsq session on loopback =="
# Boot the real daemon binary on an ephemeral loopback port, run a full
# scripted client session against it (register, subscribe, two epochs
# of result frames, health poll, unregister, shutdown), and require a
# clean exit on both sides with no leftover process.
rm -f target/gsqd.port target/gsqd_session.out
cat > target/ci_daemon.gsql <<'EOF'
DEFINE { query_name perport; }
Select time, destPort, count(*) From eth0.tcp Group By time, destPort
EOF
target/release/gsqd --listen 127.0.0.1:0 --synthetic 40x50 --epoch-gap 0 \
    --port-file target/gsqd.port &
GSQD_PID=$!
for _ in $(seq 1 100); do
    [ -s target/gsqd.port ] && break
    sleep 0.1
done
[ -s target/gsqd.port ] || { kill "$GSQD_PID" 2>/dev/null; echo "FAIL: gsqd never wrote its port file" >&2; exit 1; }
if ! target/release/gsq --connect "$(cat target/gsqd.port)" --ping \
        --program target/ci_daemon.gsql --subscribe perport --epochs 2 \
        --health --unregister perport --shutdown > target/gsqd_session.out; then
    kill "$GSQD_PID" 2>/dev/null
    echo "FAIL: scripted gsq session exited non-zero" >&2
    exit 1
fi
# The daemon must exit cleanly in response to the client's SHUTDOWN.
GSQD_RC=0
for _ in $(seq 1 100); do
    kill -0 "$GSQD_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$GSQD_PID" 2>/dev/null; then
    kill -9 "$GSQD_PID"
    echo "FAIL: gsqd still running after SHUTDOWN" >&2
    exit 1
fi
wait "$GSQD_PID" || GSQD_RC=$?
[ "$GSQD_RC" -eq 0 ] || { echo "FAIL: gsqd exited $GSQD_RC" >&2; exit 1; }
# The session must have produced at least one result frame and the
# health report for the registered query.
grep -q '^# perport epoch' target/gsqd_session.out ||
    { echo "FAIL: no result frames in the scripted session" >&2; exit 1; }
grep -q '^health,perport,' target/gsqd_session.out ||
    { echo "FAIL: no health row in the scripted session" >&2; exit 1; }
echo "OK: daemon session clean"

echo "== checkpoint gate: carry-state session == uninterrupted one-shot run =="
# Boot the real daemon in carry-state mode over one continuous 1.2 s
# synthetic trace sliced into six 200 ms epoch chunks (70 Mbps: above
# the 60 Mbps HTTP cap, so background traffic spreads destPorts and the
# aggregate closes one 1-second window mid-session while the second is
# held to the flush tail), with a seeded panic injected into the
# aggregate's HFTA mid-window. The query must
# auto-restart, restore its checkpoint, replay the missed epochs, and
# the session's total output (epochs + post-SHUTDOWN flush tail) must
# be row-for-row identical to a local one-shot gsq run over the same
# continuous trace. Ten empty lead-in epochs give the client time to
# subscribe before the first real packet, so the comparison is total.
rm -f target/gsqd_ckpt.port target/gsqd_ckpt_session.out
cat > target/ci_carry.gsql <<'EOF'
DEFINE { query_name raw; }
Select time, destPort, len From eth0.tcp;
DEFINE { query_name agg; }
Select time, destPort, count(*), sum(len) From raw Group By time, destPort
EOF
target/release/gsqd --listen 127.0.0.1:0 --chunked 70x200x6 --lead-in 10 \
    --seed 7 --carry-state --fault-panic agg@1 --fault-epochs 12..13 \
    --restart-budget 3 --backoff 1 --epoch-gap 50 \
    --program target/ci_carry.gsql --port-file target/gsqd_ckpt.port &
GSQD_PID=$!
for _ in $(seq 1 200); do
    [ -s target/gsqd_ckpt.port ] && break
    sleep 0.05
done
[ -s target/gsqd_ckpt.port ] || { kill "$GSQD_PID" 2>/dev/null; echo "FAIL: carry gsqd never wrote its port file" >&2; exit 1; }
# Real chunks run in epochs 10..15; reading 16 epochs from the first
# subscribed boundary covers them all (empty epochs follow the last
# chunk), and --drain collects the flush tail after SHUTDOWN.
if ! target/release/gsq --connect "$(cat target/gsqd_ckpt.port)" \
        --subscribe agg --epochs 16 --health --shutdown --drain \
        > target/gsqd_ckpt_session.out; then
    kill "$GSQD_PID" 2>/dev/null
    echo "FAIL: carry-state gsq session exited non-zero" >&2
    exit 1
fi
GSQD_RC=0
for _ in $(seq 1 100); do
    kill -0 "$GSQD_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$GSQD_PID" 2>/dev/null; then
    kill -9 "$GSQD_PID"
    echo "FAIL: carry gsqd still running after SHUTDOWN" >&2
    exit 1
fi
wait "$GSQD_PID" || GSQD_RC=$?
[ "$GSQD_RC" -eq 0 ] || { echo "FAIL: carry gsqd exited $GSQD_RC" >&2; exit 1; }
# The injected fault must have charged exactly one restart and the
# query must be back to Running when the session polls health.
grep -q '^health,agg,Running,1,' target/gsqd_ckpt_session.out ||
    { echo "FAIL: no restarted-and-running health row in the carry session" >&2; exit 1; }
# Total-output equivalence: the carry session's agg rows must be
# exactly the rows of an uninterrupted local run over the same
# continuous trace (sorted CSV diff = multiset equality).
target/release/gsq --program target/ci_carry.gsql --synthetic 70x1200 \
    --seed 7 --subscribe agg > target/gsqd_ckpt_reference.out
grep '^agg,' target/gsqd_ckpt_session.out | sort > target/gsqd_ckpt_got.csv
grep '^agg,' target/gsqd_ckpt_reference.out | sort > target/gsqd_ckpt_want.csv
# The trace must be rich enough that the diff means something: several
# groups (each row's count/sum covers thousands of packets — an
# undercounted restart window shows up as a changed sum) across at
# least two 1-second time buckets, so a window provably spanned epoch
# boundaries and the second bucket arrived via the shutdown flush tail.
[ "$(wc -l < target/gsqd_ckpt_want.csv)" -ge 4 ] ||
    { echo "FAIL: reference run produced fewer than 4 agg rows" >&2; exit 1; }
[ "$(cut -d, -f2 target/gsqd_ckpt_want.csv | sort -u | wc -l)" -ge 2 ] ||
    { echo "FAIL: reference run covers fewer than 2 time buckets" >&2; exit 1; }
diff -u target/gsqd_ckpt_want.csv target/gsqd_ckpt_got.csv ||
    { echo "FAIL: carry session output diverges from the one-shot run" >&2; exit 1; }
echo "OK: checkpointed session matches the uninterrupted run"

echo "== durable store property/daemon tests =="
# Explicit gate on the PR-10 suites (also covered by the full test run
# above): every injected disk crash point and every on-disk truncation
# prefix recovers to an epoch boundary with exactly-once emission, the
# durable daemon resumes mid-window after a kill, ENOSPC dead-letters
# into health instead of stopping the stream, and the atomic port-file
# write never exposes a torn read.
cargo test -q --offline -p gs-tests \
    --test prop_durable --test daemon_durable --test durable_io

echo "== durable overhead gate (<=10% over in-memory carry) =="
# Times the per-epoch durable commit (segment publish + marker-log
# fsync) against the carry-state epoch it rides on; exits non-zero if
# durability costs more than 10% of the epoch.
GS_BENCH_QUICK=1 cargo run -q --release --offline -p gs-bench --bin durable_overhead

echo "== crash_restart_gate: kill -9 mid-window, resume from --state-dir =="
# Boot the real daemon with a state dir over one continuous 1.2 s trace
# in six 200 ms chunks. A first client reads through the last
# real-traffic epoch — a marker frame is only sent after the epoch's
# durable commit, so the client returning proves everything it printed
# is covered by an on-disk cut — then the daemon is SIGKILLed with the
# trace's second 1-second window still open, held only in the state
# dir. A second daemon on the same state dir must log a recovery,
# resume the epoch numbering (the chunked source is addressed by epoch,
# so no packet is fed twice), and flush the held window tail at
# shutdown. The combined output of both incarnations must be
# row-for-row identical to an uninterrupted one-shot run — the window
# that spans the crash is what makes the diff meaningful.
rm -rf target/ci_state
rm -f target/gsqd_crash.port target/gsqd_crash1.out target/gsqd_crash2.out \
      target/gsqd_crash2.err
cat > target/ci_crash.gsql <<'EOF'
DEFINE { query_name raw; }
Select time, destPort, len From eth0.tcp;
DEFINE { query_name agg; }
Select time, destPort, count(*), sum(len) From raw Group By time, destPort
EOF
target/release/gsqd --listen 127.0.0.1:0 --chunked 70x200x6 --lead-in 10 \
    --seed 11 --carry-state --state-dir target/ci_state --epoch-gap 50 \
    --program target/ci_crash.gsql --port-file target/gsqd_crash.port &
GSQD_PID=$!
for _ in $(seq 1 200); do
    [ -s target/gsqd_crash.port ] && break
    sleep 0.05
done
[ -s target/gsqd_crash.port ] || { kill "$GSQD_PID" 2>/dev/null; echo "FAIL: durable gsqd never wrote its port file" >&2; exit 1; }
# Real chunks run in epochs 10..15; 16 epochs from the first subscribed
# boundary covers them all. No --shutdown: the session just closes.
if ! target/release/gsq --connect "$(cat target/gsqd_crash.port)" \
        --subscribe agg --epochs 16 > target/gsqd_crash1.out; then
    kill -9 "$GSQD_PID" 2>/dev/null
    echo "FAIL: pre-crash gsq session exited non-zero" >&2
    exit 1
fi
kill -9 "$GSQD_PID"
wait "$GSQD_PID" 2>/dev/null || true
rm -f target/gsqd_crash.port
target/release/gsqd --listen 127.0.0.1:0 --chunked 70x200x6 --lead-in 10 \
    --seed 11 --carry-state --state-dir target/ci_state --epoch-gap 50 \
    --program target/ci_crash.gsql --port-file target/gsqd_crash.port \
    2> target/gsqd_crash2.err &
GSQD_PID=$!
for _ in $(seq 1 200); do
    [ -s target/gsqd_crash.port ] && break
    sleep 0.05
done
[ -s target/gsqd_crash.port ] || { kill "$GSQD_PID" 2>/dev/null; echo "FAIL: restarted gsqd never wrote its port file" >&2; exit 1; }
grep -q 'recovered' target/gsqd_crash2.err ||
    { kill -9 "$GSQD_PID" 2>/dev/null; echo "FAIL: restarted gsqd did not report a recovery" >&2; exit 1; }
if ! target/release/gsq --connect "$(cat target/gsqd_crash.port)" \
        --subscribe agg --epochs 1 --shutdown --drain \
        > target/gsqd_crash2.out; then
    kill -9 "$GSQD_PID" 2>/dev/null
    echo "FAIL: post-crash gsq session exited non-zero" >&2
    exit 1
fi
GSQD_RC=0
for _ in $(seq 1 100); do
    kill -0 "$GSQD_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$GSQD_PID" 2>/dev/null; then
    kill -9 "$GSQD_PID"
    echo "FAIL: restarted gsqd still running after SHUTDOWN" >&2
    exit 1
fi
wait "$GSQD_PID" || GSQD_RC=$?
[ "$GSQD_RC" -eq 0 ] || { echo "FAIL: restarted gsqd exited $GSQD_RC" >&2; exit 1; }
# The window tail held across the crash must actually arrive in the
# second incarnation's flush — without it the equivalence below would
# be vacuously about the pre-crash rows only.
grep -q '^agg,' target/gsqd_crash2.out ||
    { echo "FAIL: no flushed rows from the restarted daemon" >&2; exit 1; }
target/release/gsq --program target/ci_crash.gsql --synthetic 70x1200 \
    --seed 11 --subscribe agg > target/gsqd_crash_reference.out
cat target/gsqd_crash1.out target/gsqd_crash2.out |
    grep '^agg,' | sort > target/gsqd_crash_got.csv
grep '^agg,' target/gsqd_crash_reference.out | sort > target/gsqd_crash_want.csv
[ "$(cut -d, -f2 target/gsqd_crash_want.csv | sort -u | wc -l)" -ge 2 ] ||
    { echo "FAIL: reference run covers fewer than 2 time buckets" >&2; exit 1; }
diff -u target/gsqd_crash_want.csv target/gsqd_crash_got.csv ||
    { echo "FAIL: kill -9 + restart output diverges from the one-shot run" >&2; exit 1; }
echo "OK: kill -9 survivor matches the uninterrupted run"

echo "== offline bench compile =="
cargo bench -p gs-bench --no-run --offline

echo "== bench smoke run (quick mode) =="
# One single-iteration sample per benchmark: proves the bench path runs
# end to end (including the target/bench.json report) without spending
# CI time on real measurements. Hermetic — in-repo harness only.
GS_BENCH_QUICK=1 cargo bench -p gs-bench --offline
test -f target/bench.json || { echo "FAIL: bench.json not written" >&2; exit 1; }
# The parallelism sweep must land in the report (par1 baseline and the
# par4 sharded point), and so must both transport series: the columnar
# points and their row-transport references.
for key in "manager/threaded_par1" "manager/threaded_par4" \
           "manager/threaded_throughput" "manager/threaded_throughput_row" \
           "manager/threaded_agg" "manager/threaded_agg_row" \
           "prefilter/registration_scaling_q1" \
           "prefilter/registration_scaling_q10" \
           "prefilter/registration_scaling_q100" \
           "prefilter/registration_scaling_q100_unshared"; do
    grep -q "$key" target/bench.json ||
        { echo "FAIL: $key missing from bench.json" >&2; exit 1; }
done

echo "== manifest gate: no registry dependencies =="
# Every dependency declaration in every manifest must be a path dependency
# (or the bare workspace = true inheritance of one). Anything with a
# version requirement or registry source is a hermeticity regression.
fail=0
while IFS= read -r manifest; do
    # Pull the bodies of all *dependencies* tables and keep lines that
    # declare a dependency without `path =` / `workspace = true`.
    bad=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies(\.[a-zA-Z0-9_-]+)?\]$/) ; next }
        in_deps && NF && $0 !~ /^[[:space:]]*#/ \
                     && $0 !~ /path[[:space:]]*=/ \
                     && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/ { print }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "non-path dependency in $manifest:" >&2
        echo "$bad" | sed 's/^/    /' >&2
        fail=1
    fi
done < <(find . -name Cargo.toml -not -path './target/*')

# Belt and braces: the resolved metadata must contain only local packages.
if command -v python3 >/dev/null 2>&1; then
    cargo metadata --format-version 1 --offline --all-features 2>/dev/null |
        python3 -c '
import json, sys
meta = json.load(sys.stdin)
remote = [p["name"] for p in meta["packages"] if p["source"] is not None]
if remote:
    print("registry packages in resolved graph: %s" % ", ".join(remote), file=sys.stderr)
    sys.exit(1)
'
fi

if [ "$fail" -ne 0 ]; then
    echo "FAIL: registry dependencies found — keep the workspace hermetic" >&2
    exit 1
fi
echo "OK: hermetic"
