//! Property tests: every codec round-trips arbitrary field values, and the
//! trace container round-trips arbitrary packet lists.

use bytes::Bytes;
use gs_packet::capture::{read_trace, write_trace, CapPacket, LinkType};
use gs_packet::ether::{EtherHeader, MacAddr};
use gs_packet::ip::{checksum, fmt_ipv4, parse_ipv4, Ipv4Header};
use gs_packet::netflow::{decode_packet, encode_packet, NetflowPacketHeader, NetflowRecord};
use gs_packet::tcp::TcpHeader;
use gs_packet::udp::UdpHeader;
use proptest::prelude::*;

prop_compose! {
    fn arb_ipv4_header()(
        tos in any::<u8>(),
        total_len in 20u16..,
        id in any::<u16>(),
        flags_frag in any::<u16>(),
        ttl in any::<u8>(),
        protocol in any::<u8>(),
        src in any::<u32>(),
        dst in any::<u32>(),
    ) -> Ipv4Header {
        Ipv4Header {
            header_len: 20, tos, total_len, id,
            // bit 15 is reserved-zero on encode/decode equality; keep it clear
            flags_frag: flags_frag & 0x7fff,
            ttl, protocol, checksum: 0, src, dst,
        }
    }
}

proptest! {
    #[test]
    fn ipv4_roundtrip(h in arb_ipv4_header()) {
        let mut buf = Vec::new();
        h.encode(&mut buf).unwrap();
        let d = Ipv4Header::decode(&buf).unwrap();
        prop_assert_eq!(d.tos, h.tos);
        prop_assert_eq!(d.total_len, h.total_len);
        prop_assert_eq!(d.id, h.id);
        prop_assert_eq!(d.flags_frag, h.flags_frag);
        prop_assert_eq!(d.ttl, h.ttl);
        prop_assert_eq!(d.protocol, h.protocol);
        prop_assert_eq!(d.src, h.src);
        prop_assert_eq!(d.dst, h.dst);
        // The emitted checksum always validates.
        prop_assert_eq!(checksum(&buf), 0);
    }

    #[test]
    fn ipv4_decode_never_panics(buf in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Ipv4Header::decode(&buf);
    }

    #[test]
    fn addr_text_roundtrip(addr in any::<u32>()) {
        prop_assert_eq!(parse_ipv4(&fmt_ipv4(addr)), Some(addr));
    }

    #[test]
    fn tcp_roundtrip(
        src_port in any::<u16>(), dst_port in any::<u16>(),
        seq in any::<u32>(), ack in any::<u32>(),
        flags in 0u8..=0x3f, window in any::<u16>(),
        cksum in any::<u16>(), urgent in any::<u16>(),
    ) {
        let h = TcpHeader {
            src_port, dst_port, seq, ack, header_len: 20,
            flags, window, checksum: cksum, urgent,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf).unwrap();
        prop_assert_eq!(TcpHeader::decode(&buf).unwrap(), h);
    }

    #[test]
    fn udp_roundtrip(
        src_port in any::<u16>(), dst_port in any::<u16>(),
        length in 8u16.., cksum in any::<u16>(),
    ) {
        let h = UdpHeader { src_port, dst_port, length, checksum: cksum };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        prop_assert_eq!(UdpHeader::decode(&buf).unwrap(), h);
    }

    #[test]
    fn ether_roundtrip(dst in any::<[u8; 6]>(), src in any::<[u8; 6]>(), ethertype in any::<u16>()) {
        let h = EtherHeader { dst: MacAddr(dst), src: MacAddr(src), ethertype };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        prop_assert_eq!(EtherHeader::decode(&buf).unwrap(), h);
    }

    #[test]
    fn netflow_packet_roundtrip(
        uptime in any::<u32>(), secs in any::<u32>(), seq in any::<u32>(),
        recs in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>(),
             any::<u16>(), any::<u16>(), any::<u8>(), any::<u8>()),
            0..30,
        ),
    ) {
        let records: Vec<NetflowRecord> = recs.into_iter().map(
            |(src_addr, dst_addr, packets, octets, first, last, src_port, dst_port, tcp_flags, protocol)|
            NetflowRecord {
                src_addr, dst_addr, packets, octets, first, last,
                src_port, dst_port, tcp_flags, protocol,
                tos: 0, src_as: 7018, dst_as: 1,
            }
        ).collect();
        let hdr = NetflowPacketHeader {
            count: 0, sys_uptime_ms: uptime, unix_secs: secs, unix_nsecs: 0, flow_sequence: seq,
        };
        let buf = encode_packet(&hdr, &records).unwrap();
        let (h2, r2) = decode_packet(&buf).unwrap();
        prop_assert_eq!(h2.count as usize, records.len());
        prop_assert_eq!(r2, records);
    }

    #[test]
    fn trace_roundtrip(
        pkts in proptest::collection::vec(
            (any::<u64>(), any::<u16>(), 0u8..4, proptest::collection::vec(any::<u8>(), 0..128)),
            0..40,
        ),
    ) {
        let packets: Vec<CapPacket> = pkts.into_iter().map(|(ts, iface, link, data)| CapPacket::full(
            ts, iface, LinkType::from_tag(link).unwrap(), Bytes::from(data),
        )).collect();
        let buf = write_trace(&packets);
        prop_assert_eq!(read_trace(&buf).unwrap(), packets);
    }

    #[test]
    fn trace_reader_never_panics(buf in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_trace(&buf);
    }

    #[test]
    fn view_never_panics_on_garbage(
        link in 0u8..4,
        data in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let cap = CapPacket::full(0, 0, LinkType::from_tag(link).unwrap(), Bytes::from(data));
        let v = gs_packet::PacketView::parse(cap);
        // Exercising every accessor must be safe on arbitrary bytes.
        for proto in gs_packet::interp::PROTOCOLS.iter() {
            let _ = (proto.matches)(&v);
            for f in proto.fields {
                let _ = (f.accessor)(&v);
            }
        }
    }
}
