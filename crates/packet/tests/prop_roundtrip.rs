//! Property tests: every codec round-trips arbitrary field values, and the
//! trace container round-trips arbitrary packet lists.
//!
//! Runs on the in-repo deterministic harness ([`gs_tests::prop`]); the
//! property assertions are unchanged from the original proptest suite.

use bytes::Bytes;
use gs_packet::capture::{read_trace, write_trace, CapPacket, LinkType};
use gs_packet::ether::{EtherHeader, MacAddr};
use gs_packet::ip::{checksum, fmt_ipv4, parse_ipv4, Ipv4Header};
use gs_packet::netflow::{decode_packet, encode_packet, NetflowPacketHeader, NetflowRecord};
use gs_packet::tcp::TcpHeader;
use gs_packet::udp::UdpHeader;
use gs_tests::prop::{check, Gen, DEFAULT_CASES};
use rand::Rng;

fn arb_ipv4_header(g: &mut Gen) -> Ipv4Header {
    Ipv4Header {
        header_len: 20,
        tos: g.any(),
        total_len: g.rng().gen_range(20u16..=u16::MAX),
        id: g.any(),
        // bit 15 is reserved-zero on encode/decode equality; keep it clear
        flags_frag: g.any::<u16>() & 0x7fff,
        ttl: g.any(),
        protocol: g.any(),
        checksum: 0,
        src: g.any(),
        dst: g.any(),
    }
}

#[test]
fn ipv4_roundtrip() {
    check("ipv4_roundtrip", DEFAULT_CASES, |g| {
        let h = arb_ipv4_header(g);
        let mut buf = Vec::new();
        h.encode(&mut buf).unwrap();
        let d = Ipv4Header::decode(&buf).unwrap();
        assert_eq!(d.tos, h.tos);
        assert_eq!(d.total_len, h.total_len);
        assert_eq!(d.id, h.id);
        assert_eq!(d.flags_frag, h.flags_frag);
        assert_eq!(d.ttl, h.ttl);
        assert_eq!(d.protocol, h.protocol);
        assert_eq!(d.src, h.src);
        assert_eq!(d.dst, h.dst);
        // The emitted checksum always validates.
        assert_eq!(checksum(&buf), 0);
    });
}

#[test]
fn ipv4_decode_never_panics() {
    check("ipv4_decode_never_panics", DEFAULT_CASES, |g| {
        let buf = g.bytes(0..64);
        let _ = Ipv4Header::decode(&buf);
    });
}

#[test]
fn addr_text_roundtrip() {
    check("addr_text_roundtrip", DEFAULT_CASES, |g| {
        let addr: u32 = g.any();
        assert_eq!(parse_ipv4(&fmt_ipv4(addr)), Some(addr));
    });
}

#[test]
fn tcp_roundtrip() {
    check("tcp_roundtrip", DEFAULT_CASES, |g| {
        let h = TcpHeader {
            src_port: g.any(),
            dst_port: g.any(),
            seq: g.any(),
            ack: g.any(),
            header_len: 20,
            flags: g.any::<u8>() & 0x3f,
            window: g.any(),
            checksum: g.any(),
            urgent: g.any(),
        };
        let mut buf = Vec::new();
        h.encode(&mut buf).unwrap();
        assert_eq!(TcpHeader::decode(&buf).unwrap(), h);
    });
}

#[test]
fn udp_roundtrip() {
    check("udp_roundtrip", DEFAULT_CASES, |g| {
        let h = UdpHeader {
            src_port: g.any(),
            dst_port: g.any(),
            length: g.rng().gen_range(8u16..=u16::MAX),
            checksum: g.any(),
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(UdpHeader::decode(&buf).unwrap(), h);
    });
}

#[test]
fn ether_roundtrip() {
    check("ether_roundtrip", DEFAULT_CASES, |g| {
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.fill_with(|| g.any());
        src.fill_with(|| g.any());
        let h = EtherHeader { dst: MacAddr(dst), src: MacAddr(src), ethertype: g.any() };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(EtherHeader::decode(&buf).unwrap(), h);
    });
}

#[test]
fn netflow_packet_roundtrip() {
    check("netflow_packet_roundtrip", DEFAULT_CASES, |g| {
        let records: Vec<NetflowRecord> = g.vec_with(0..30, |g| NetflowRecord {
            src_addr: g.any(),
            dst_addr: g.any(),
            packets: g.any(),
            octets: g.any(),
            first: g.any(),
            last: g.any(),
            src_port: g.any(),
            dst_port: g.any(),
            tcp_flags: g.any(),
            protocol: g.any(),
            tos: 0,
            src_as: 7018,
            dst_as: 1,
        });
        let hdr = NetflowPacketHeader {
            count: 0,
            sys_uptime_ms: g.any(),
            unix_secs: g.any(),
            unix_nsecs: 0,
            flow_sequence: g.any(),
        };
        let buf = encode_packet(&hdr, &records).unwrap();
        let (h2, r2) = decode_packet(&buf).unwrap();
        assert_eq!(h2.count as usize, records.len());
        assert_eq!(r2, records);
    });
}

#[test]
fn trace_roundtrip() {
    check("trace_roundtrip", DEFAULT_CASES, |g| {
        let packets: Vec<CapPacket> = g.vec_with(0..40, |g| {
            let link = LinkType::from_tag(g.u8(0..4)).unwrap();
            let data = g.bytes(0..128);
            CapPacket::full(g.any(), g.any(), link, Bytes::from(data))
        });
        let buf = write_trace(&packets);
        assert_eq!(read_trace(&buf).unwrap(), packets);
    });
}

#[test]
fn trace_reader_never_panics() {
    check("trace_reader_never_panics", DEFAULT_CASES, |g| {
        let buf = g.bytes(0..256);
        let _ = read_trace(&buf);
    });
}

#[test]
fn view_never_panics_on_garbage() {
    check("view_never_panics_on_garbage", DEFAULT_CASES, |g| {
        let link = LinkType::from_tag(g.u8(0..4)).unwrap();
        let data = g.bytes(0..128);
        let cap = CapPacket::full(0, 0, link, Bytes::from(data));
        let v = gs_packet::PacketView::parse(cap);
        // Exercising every accessor must be safe on arbitrary bytes.
        for proto in gs_packet::interp::PROTOCOLS.iter() {
            let _ = (proto.matches)(&v);
            for f in proto.fields {
                let _ = (f.accessor)(&v);
            }
        }
    });
}
