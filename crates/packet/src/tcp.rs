//! TCP header encoding and decoding.

use crate::error::PacketError;
use crate::{be16, be32};

/// Minimum TCP header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// FIN flag bit.
pub const FLAG_FIN: u8 = 0x01;
/// SYN flag bit.
pub const FLAG_SYN: u8 = 0x02;
/// RST flag bit.
pub const FLAG_RST: u8 = 0x04;
/// PSH flag bit.
pub const FLAG_PSH: u8 = 0x08;
/// ACK flag bit.
pub const FLAG_ACK: u8 = 0x10;
/// URG flag bit.
pub const FLAG_URG: u8 = 0x20;

/// A decoded TCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Header length in bytes (data offset × 4).
    pub header_len: u8,
    /// Flag bits (FIN..URG).
    pub flags: u8,
    /// Receive window.
    pub window: u16,
    /// Checksum as found on the wire.
    pub checksum: u16,
    /// Urgent pointer.
    pub urgent: u16,
}

impl TcpHeader {
    /// Decode a TCP header from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<TcpHeader, PacketError> {
        if buf.len() < MIN_HEADER_LEN {
            return Err(PacketError::Truncated {
                layer: "tcp",
                needed: MIN_HEADER_LEN,
                have: buf.len(),
            });
        }
        let data_off = buf[12] >> 4;
        if data_off < 5 {
            return Err(PacketError::BadLength { layer: "tcp", what: "data offset < 5" });
        }
        let header_len = usize::from(data_off) * 4;
        if buf.len() < header_len {
            return Err(PacketError::Truncated { layer: "tcp", needed: header_len, have: buf.len() });
        }
        Ok(TcpHeader {
            src_port: be16(buf, 0).expect("bounds checked"),
            dst_port: be16(buf, 2).expect("bounds checked"),
            seq: be32(buf, 4).expect("bounds checked"),
            ack: be32(buf, 8).expect("bounds checked"),
            header_len: header_len as u8,
            flags: buf[13] & 0x3f,
            window: be16(buf, 14).expect("bounds checked"),
            checksum: be16(buf, 16).expect("bounds checked"),
            urgent: be16(buf, 18).expect("bounds checked"),
        })
    }

    /// Encode this header (without options) into `out`. Like the IPv4
    /// encoder, option-bearing headers are rejected.
    pub fn encode(&self, out: &mut Vec<u8>) -> Result<(), PacketError> {
        if self.header_len != 20 {
            return Err(PacketError::FieldOverflow { layer: "tcp", field: "header_len" });
        }
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(5 << 4);
        out.push(self.flags);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&self.checksum.to_be_bytes());
        out.extend_from_slice(&self.urgent.to_be_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = TcpHeader {
            src_port: 49152,
            dst_port: 80,
            seq: 0xDEAD_BEEF,
            ack: 0x0102_0304,
            header_len: 20,
            flags: FLAG_SYN | FLAG_ACK,
            window: 65535,
            checksum: 0x1234,
            urgent: 0,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf).unwrap();
        assert_eq!(buf.len(), MIN_HEADER_LEN);
        assert_eq!(TcpHeader::decode(&buf).unwrap(), h);
    }

    #[test]
    fn decode_with_options() {
        // Build a 24-byte header (data offset 6) by hand.
        let mut buf = vec![0u8; 24];
        buf[0..2].copy_from_slice(&1234u16.to_be_bytes());
        buf[2..4].copy_from_slice(&80u16.to_be_bytes());
        buf[12] = 6 << 4;
        buf[13] = FLAG_PSH | FLAG_ACK;
        let h = TcpHeader::decode(&buf).unwrap();
        assert_eq!(h.header_len, 24);
        assert_eq!(h.dst_port, 80);
        assert_eq!(h.flags, FLAG_PSH | FLAG_ACK);
    }

    #[test]
    fn rejects_truncated_options() {
        let mut buf = vec![0u8; 20];
        buf[12] = 8 << 4; // claims 32-byte header
        assert!(matches!(TcpHeader::decode(&buf), Err(PacketError::Truncated { .. })));
    }

    #[test]
    fn rejects_bad_offset() {
        let mut buf = vec![0u8; 20];
        buf[12] = 4 << 4;
        assert!(matches!(TcpHeader::decode(&buf), Err(PacketError::BadLength { .. })));
    }
}
