//! ICMP header encoding and decoding (enough for echo and unreachable
//! monitoring queries).

use crate::be16;
use crate::error::PacketError;

/// ICMP header length (type, code, checksum, rest-of-header).
pub const HEADER_LEN: usize = 8;

/// Echo reply message type.
pub const TYPE_ECHO_REPLY: u8 = 0;
/// Destination unreachable message type.
pub const TYPE_DEST_UNREACHABLE: u8 = 3;
/// Echo request message type.
pub const TYPE_ECHO_REQUEST: u8 = 8;
/// Time exceeded message type.
pub const TYPE_TIME_EXCEEDED: u8 = 11;

/// A decoded ICMP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpHeader {
    /// Message type.
    pub icmp_type: u8,
    /// Message code.
    pub code: u8,
    /// Checksum as found on the wire.
    pub checksum: u16,
    /// The type-specific rest-of-header word (identifier/sequence for echo).
    pub rest: u32,
}

impl IcmpHeader {
    /// Decode an ICMP header from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<IcmpHeader, PacketError> {
        if buf.len() < HEADER_LEN {
            return Err(PacketError::Truncated {
                layer: "icmp",
                needed: HEADER_LEN,
                have: buf.len(),
            });
        }
        Ok(IcmpHeader {
            icmp_type: buf[0],
            code: buf[1],
            checksum: be16(buf, 2).expect("bounds checked"),
            rest: crate::be32(buf, 4).expect("bounds checked"),
        })
    }

    /// Encode this header into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.icmp_type);
        out.push(self.code);
        out.extend_from_slice(&self.checksum.to_be_bytes());
        out.extend_from_slice(&self.rest.to_be_bytes());
    }

    /// Identifier for echo request/reply messages.
    #[inline]
    pub fn echo_id(&self) -> u16 {
        (self.rest >> 16) as u16
    }

    /// Sequence number for echo request/reply messages.
    #[inline]
    pub fn echo_seq(&self) -> u16 {
        self.rest as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = IcmpHeader {
            icmp_type: TYPE_ECHO_REQUEST,
            code: 0,
            checksum: 0xFFEE,
            rest: 0x1234_0007,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let d = IcmpHeader::decode(&buf).unwrap();
        assert_eq!(d, h);
        assert_eq!(d.echo_id(), 0x1234);
        assert_eq!(d.echo_seq(), 7);
    }

    #[test]
    fn truncated() {
        assert!(matches!(IcmpHeader::decode(&[0; 7]), Err(PacketError::Truncated { .. })));
    }
}
