//! Packet formats and the protocol field interpretation library.
//!
//! Gigascope's *Protocol* streams are defined by interpreting raw data
//! packets with a library of interpretation functions (paper §2.2: "The
//! Gigascope run time system interprets the data packets as a collection of
//! fields using a library of interpretation functions"). This crate provides:
//!
//! - byte-level codecs for the protocols the paper's deployments monitor:
//!   Ethernet, IPv4, IPv6, TCP, UDP, ICMP, Netflow-v5-style export records,
//!   and simplified BGP UPDATE messages;
//! - [`view::PacketView`], a zero-copy lazily-parsed view over a captured
//!   frame with cached layer offsets;
//! - [`interp`], the registry of named field accessors that maps a
//!   Protocol-stream schema (e.g. `tcp.destPort`) to the function that
//!   extracts it from a raw packet;
//! - [`capture`], timestamped captured packets and a simple trace format.
//!
//! Everything here is allocation-free on the per-packet hot path: accessors
//! return either fixed-width integers or [`bytes::Bytes`] slices that share
//! the frame's backing buffer.

#![warn(missing_docs)]

pub mod bgp;
pub mod builder;
pub mod capture;
pub mod error;
pub mod ether;
pub mod icmp;
pub mod interp;
pub mod ip;
pub mod ipv6;
pub mod netflow;
pub mod tcp;
pub mod udp;
pub mod view;

pub use capture::CapPacket;
pub use error::PacketError;
pub use interp::{Accessor, FieldDef, FieldValue, OrderHint, ProtocolDef};
pub use view::PacketView;

/// Read a big-endian `u16` at `off`, if in bounds.
#[inline]
pub(crate) fn be16(b: &[u8], off: usize) -> Option<u16> {
    b.get(off..off.checked_add(2)?)
        .map(|s| u16::from_be_bytes([s[0], s[1]]))
}

/// Read a big-endian `u32` at `off`, if in bounds.
#[inline]
pub(crate) fn be32(b: &[u8], off: usize) -> Option<u32> {
    b.get(off..off.checked_add(4)?)
        .map(|s| u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_readers_in_bounds() {
        let b = [0x12, 0x34, 0x56, 0x78];
        assert_eq!(be16(&b, 0), Some(0x1234));
        assert_eq!(be16(&b, 2), Some(0x5678));
        assert_eq!(be32(&b, 0), Some(0x1234_5678));
    }

    #[test]
    fn be_readers_out_of_bounds() {
        let b = [0u8; 3];
        assert_eq!(be16(&b, 2), None);
        assert_eq!(be32(&b, 0), None);
        assert_eq!(be16(&b, usize::MAX - 1), None);
    }
}
