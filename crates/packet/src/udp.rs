//! UDP header encoding and decoding.

use crate::be16;
use crate::error::PacketError;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A decoded UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header plus payload.
    pub length: u16,
    /// Checksum as found on the wire (0 means "not computed").
    pub checksum: u16,
}

impl UdpHeader {
    /// Decode a UDP header from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<UdpHeader, PacketError> {
        if buf.len() < HEADER_LEN {
            return Err(PacketError::Truncated {
                layer: "udp",
                needed: HEADER_LEN,
                have: buf.len(),
            });
        }
        let h = UdpHeader {
            src_port: be16(buf, 0).expect("bounds checked"),
            dst_port: be16(buf, 2).expect("bounds checked"),
            length: be16(buf, 4).expect("bounds checked"),
            checksum: be16(buf, 6).expect("bounds checked"),
        };
        if usize::from(h.length) < HEADER_LEN {
            return Err(PacketError::BadLength { layer: "udp", what: "length < 8" });
        }
        Ok(h)
    }

    /// Encode this header into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.length.to_be_bytes());
        out.extend_from_slice(&self.checksum.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = UdpHeader { src_port: 53, dst_port: 33000, length: 120, checksum: 0xABCD };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(UdpHeader::decode(&buf).unwrap(), h);
    }

    #[test]
    fn rejects_short_length_field() {
        let h = UdpHeader { src_port: 1, dst_port: 2, length: 7, checksum: 0 };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert!(matches!(UdpHeader::decode(&buf), Err(PacketError::BadLength { .. })));
    }

    #[test]
    fn truncated() {
        assert!(matches!(UdpHeader::decode(&[0; 7]), Err(PacketError::Truncated { .. })));
    }
}
