//! Frame construction helpers used by the traffic generator and tests.

use crate::ether::{EtherHeader, MacAddr, ETHERTYPE_IPV4};
use crate::icmp::IcmpHeader;
use crate::ip::{Ipv4Header, FLAG_MF, PROTO_ICMP, PROTO_TCP, PROTO_UDP};
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;
use bytes::Bytes;

/// Transport selector for [`FrameBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Tcp { src_port: u16, dst_port: u16, seq: u32, flags: u8 },
    Udp { src_port: u16, dst_port: u16 },
    Icmp { icmp_type: u8, code: u8, rest: u32 },
}

/// Builds well-formed IPv4 frames (optionally Ethernet-encapsulated) from
/// high-level intent: addresses, ports, payload, fragmentation.
#[derive(Debug, Clone)]
pub struct FrameBuilder {
    src: u32,
    dst: u32,
    kind: Kind,
    ttl: u8,
    tos: u8,
    id: u16,
    frag_units: u16,
    more_frags: bool,
    payload: Vec<u8>,
}

impl FrameBuilder {
    /// Start a TCP frame from `src`/`dst` addresses and ports.
    pub fn tcp(src: u32, dst: u32, src_port: u16, dst_port: u16) -> FrameBuilder {
        FrameBuilder::new(src, dst, Kind::Tcp { src_port, dst_port, seq: 0, flags: crate::tcp::FLAG_ACK })
    }

    /// Start a UDP frame.
    pub fn udp(src: u32, dst: u32, src_port: u16, dst_port: u16) -> FrameBuilder {
        FrameBuilder::new(src, dst, Kind::Udp { src_port, dst_port })
    }

    /// Start an ICMP frame.
    pub fn icmp(src: u32, dst: u32, icmp_type: u8, code: u8) -> FrameBuilder {
        FrameBuilder::new(src, dst, Kind::Icmp { icmp_type, code, rest: 0 })
    }

    fn new(src: u32, dst: u32, kind: Kind) -> FrameBuilder {
        FrameBuilder {
            src,
            dst,
            kind,
            ttl: 64,
            tos: 0,
            id: 0,
            frag_units: 0,
            more_frags: false,
            payload: Vec::new(),
        }
    }

    /// Set the transport payload.
    pub fn payload(mut self, p: &[u8]) -> FrameBuilder {
        self.payload = p.to_vec();
        self
    }

    /// Set the TCP sequence number (ignored for other transports).
    pub fn seq(mut self, seq: u32) -> FrameBuilder {
        if let Kind::Tcp { seq: s, .. } = &mut self.kind {
            *s = seq;
        }
        self
    }

    /// Set the TCP flag bits (ignored for other transports).
    pub fn tcp_flags(mut self, flags: u8) -> FrameBuilder {
        if let Kind::Tcp { flags: f, .. } = &mut self.kind {
            *f = flags;
        }
        self
    }

    /// Set the IP identification field (fragments of one datagram share it).
    pub fn ip_id(mut self, id: u16) -> FrameBuilder {
        self.id = id;
        self
    }

    /// Set the TTL.
    pub fn ttl(mut self, ttl: u8) -> FrameBuilder {
        self.ttl = ttl;
        self
    }

    /// Set the TOS byte.
    pub fn tos(mut self, tos: u8) -> FrameBuilder {
        self.tos = tos;
        self
    }

    /// Mark this frame as a fragment at `offset_8byte_units`, with `more`
    /// indicating whether further fragments follow. For non-zero offsets the
    /// "payload" is raw datagram bytes and no transport header is emitted.
    pub fn fragment(mut self, offset_8byte_units: u16, more: bool) -> FrameBuilder {
        self.frag_units = offset_8byte_units & crate::ip::FRAG_OFFSET_MASK;
        self.more_frags = more;
        self
    }

    fn transport_bytes(&self) -> Vec<u8> {
        // Non-first fragments carry no transport header.
        if self.frag_units != 0 {
            return self.payload.clone();
        }
        let mut out = Vec::with_capacity(20 + self.payload.len());
        match self.kind {
            Kind::Tcp { src_port, dst_port, seq, flags } => {
                TcpHeader {
                    src_port,
                    dst_port,
                    seq,
                    ack: 0,
                    header_len: 20,
                    flags,
                    window: 65535,
                    checksum: 0,
                    urgent: 0,
                }
                .encode(&mut out)
                .expect("fixed 20-byte header");
            }
            Kind::Udp { src_port, dst_port } => {
                UdpHeader {
                    src_port,
                    dst_port,
                    length: (crate::udp::HEADER_LEN + self.payload.len()) as u16,
                    checksum: 0,
                }
                .encode(&mut out);
            }
            Kind::Icmp { icmp_type, code, rest } => {
                IcmpHeader { icmp_type, code, checksum: 0, rest }.encode(&mut out);
            }
        }
        out.extend_from_slice(&self.payload);
        out
    }

    fn ip_bytes(&self) -> Vec<u8> {
        let transport = self.transport_bytes();
        let protocol = match self.kind {
            Kind::Tcp { .. } => PROTO_TCP,
            Kind::Udp { .. } => PROTO_UDP,
            Kind::Icmp { .. } => PROTO_ICMP,
        };
        let mut flags_frag = self.frag_units;
        if self.more_frags {
            flags_frag |= FLAG_MF;
        }
        let mut out = Vec::with_capacity(20 + transport.len());
        Ipv4Header {
            header_len: 20,
            tos: self.tos,
            total_len: (20 + transport.len()) as u16,
            id: self.id,
            flags_frag,
            ttl: self.ttl,
            protocol,
            checksum: 0,
            src: self.src,
            dst: self.dst,
        }
        .encode(&mut out)
        .expect("fixed 20-byte header");
        out.extend_from_slice(&transport);
        out
    }

    /// Build the frame as a raw IP packet (no link header).
    pub fn build_raw_ip(&self) -> Bytes {
        Bytes::from(self.ip_bytes())
    }

    /// Build the frame with an Ethernet II header.
    pub fn build_ethernet(&self) -> Bytes {
        let ip = self.ip_bytes();
        let mut out = Vec::with_capacity(crate::ether::HEADER_LEN + ip.len());
        EtherHeader {
            dst: MacAddr([2, 0, 0, 0, 0, 2]),
            src: MacAddr([2, 0, 0, 0, 0, 1]),
            ethertype: ETHERTYPE_IPV4,
        }
        .encode(&mut out);
        out.extend_from_slice(&ip);
        Bytes::from(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::Ipv4Header;

    #[test]
    fn tcp_frame_shape() {
        let f = FrameBuilder::tcp(10, 20, 1000, 80).payload(b"hello").build_ethernet();
        assert_eq!(f.len(), 14 + 20 + 20 + 5);
        let ih = Ipv4Header::decode(&f[14..]).unwrap();
        assert_eq!(ih.total_len as usize, 20 + 20 + 5);
        assert_eq!(ih.protocol, PROTO_TCP);
        let th = TcpHeader::decode(&f[34..]).unwrap();
        assert_eq!(th.dst_port, 80);
        assert_eq!(&f[54..], b"hello");
    }

    #[test]
    fn udp_frame_shape() {
        let f = FrameBuilder::udp(1, 2, 53, 5353).payload(b"abc").build_raw_ip();
        assert_eq!(f.len(), 20 + 8 + 3);
        let uh = UdpHeader::decode(&f[20..]).unwrap();
        assert_eq!(uh.length, 11);
    }

    #[test]
    fn fragment_has_no_transport_header() {
        let f = FrameBuilder::tcp(1, 2, 1000, 80)
            .payload(&[0xAA; 16])
            .fragment(2, false)
            .build_raw_ip();
        let ih = Ipv4Header::decode(&f).unwrap();
        assert_eq!(ih.frag_offset(), 16);
        assert!(!ih.more_fragments());
        // Total = IP header + raw 16 bytes, no TCP header.
        assert_eq!(ih.total_len as usize, 20 + 16);
    }

    #[test]
    fn builder_setters() {
        let f = FrameBuilder::tcp(1, 2, 3, 4)
            .seq(42)
            .tcp_flags(crate::tcp::FLAG_SYN)
            .ttl(7)
            .tos(0xB8)
            .ip_id(555)
            .build_raw_ip();
        let ih = Ipv4Header::decode(&f).unwrap();
        assert_eq!((ih.ttl, ih.tos, ih.id), (7, 0xB8, 555));
        let th = TcpHeader::decode(&f[20..]).unwrap();
        assert_eq!((th.seq, th.flags), (42, crate::tcp::FLAG_SYN));
    }
}
