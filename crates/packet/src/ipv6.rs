//! IPv6 fixed header. The interpretation library exposes only what the
//! monitoring schemas need (version, next header, addresses as 128-bit
//! values split hi/lo, payload length, hop limit).

use crate::be16;
use crate::error::PacketError;

/// Length of the fixed IPv6 header.
pub const HEADER_LEN: usize = 40;

/// A decoded IPv6 fixed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6Header {
    /// Traffic class.
    pub traffic_class: u8,
    /// 20-bit flow label.
    pub flow_label: u32,
    /// Payload length (bytes following this header).
    pub payload_len: u16,
    /// Next header (protocol) number.
    pub next_header: u8,
    /// Hop limit.
    pub hop_limit: u8,
    /// Source address.
    pub src: u128,
    /// Destination address.
    pub dst: u128,
}

impl Ipv6Header {
    /// Decode an IPv6 fixed header from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<Ipv6Header, PacketError> {
        if buf.len() < HEADER_LEN {
            return Err(PacketError::Truncated {
                layer: "ipv6",
                needed: HEADER_LEN,
                have: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 6 {
            return Err(PacketError::BadVersion { layer: "ipv6", found: version });
        }
        let mut src = [0u8; 16];
        let mut dst = [0u8; 16];
        src.copy_from_slice(&buf[8..24]);
        dst.copy_from_slice(&buf[24..40]);
        Ok(Ipv6Header {
            traffic_class: (buf[0] << 4) | (buf[1] >> 4),
            flow_label: (u32::from(buf[1] & 0x0f) << 16)
                | (u32::from(buf[2]) << 8)
                | u32::from(buf[3]),
            payload_len: be16(buf, 4).expect("bounds checked"),
            next_header: buf[6],
            hop_limit: buf[7],
            src: u128::from_be_bytes(src),
            dst: u128::from_be_bytes(dst),
        })
    }

    /// Encode this header into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(0x60 | (self.traffic_class >> 4));
        out.push(((self.traffic_class & 0x0f) << 4) | ((self.flow_label >> 16) as u8 & 0x0f));
        out.push((self.flow_label >> 8) as u8);
        out.push(self.flow_label as u8);
        out.extend_from_slice(&self.payload_len.to_be_bytes());
        out.push(self.next_header);
        out.push(self.hop_limit);
        out.extend_from_slice(&self.src.to_be_bytes());
        out.extend_from_slice(&self.dst.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = Ipv6Header {
            traffic_class: 0xAB,
            flow_label: 0xF_FF_FF,
            payload_len: 1280,
            next_header: 6,
            hop_limit: 62,
            src: 0x2001_0db8_0000_0000_0000_0000_0000_0001,
            dst: 0x2001_0db8_ffff_ffff_ffff_ffff_ffff_fffe,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(Ipv6Header::decode(&buf).unwrap(), h);
    }

    #[test]
    fn rejects_v4() {
        let mut buf = vec![0u8; HEADER_LEN];
        buf[0] = 0x45;
        assert!(matches!(
            Ipv6Header::decode(&buf),
            Err(PacketError::BadVersion { layer: "ipv6", found: 4 })
        ));
    }

    #[test]
    fn truncated() {
        assert!(matches!(
            Ipv6Header::decode(&[0x60; 39]),
            Err(PacketError::Truncated { layer: "ipv6", .. })
        ));
    }
}
