//! IPv4 header encoding and decoding, including the fragmentation fields
//! needed by the defragmentation operator.

use crate::error::PacketError;
use crate::{be16, be32};

/// Minimum IPv4 header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// IP protocol number for ICMP.
pub const PROTO_ICMP: u8 = 1;
/// IP protocol number for TCP.
pub const PROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

/// The "more fragments" flag bit within `flags_frag`.
pub const FLAG_MF: u16 = 0x2000;
/// The "don't fragment" flag bit within `flags_frag`.
pub const FLAG_DF: u16 = 0x4000;
/// Mask selecting the 13-bit fragment offset (in 8-byte units).
pub const FRAG_OFFSET_MASK: u16 = 0x1FFF;

/// A decoded IPv4 header.
///
/// Addresses are kept as host-order `u32` values: GSQL treats IP addresses as
/// unsigned integers with address literals, matching the paper's examples
/// (`IPVersion = 4 and Protocol = 6`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Header length in bytes (IHL × 4, 20–60).
    pub header_len: u8,
    /// Differentiated services / TOS byte.
    pub tos: u8,
    /// Total datagram length in bytes, including this header.
    pub total_len: u16,
    /// Identification field (shared by all fragments of a datagram).
    pub id: u16,
    /// Raw flags + fragment-offset field.
    pub flags_frag: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol number (see [`PROTO_TCP`] etc.).
    pub protocol: u8,
    /// Header checksum as found on the wire (not verified on decode).
    pub checksum: u16,
    /// Source address, host byte order.
    pub src: u32,
    /// Destination address, host byte order.
    pub dst: u32,
}

impl Ipv4Header {
    /// Fragment offset in bytes.
    #[inline]
    pub fn frag_offset(&self) -> u32 {
        u32::from(self.flags_frag & FRAG_OFFSET_MASK) * 8
    }

    /// Whether the "more fragments" flag is set.
    #[inline]
    pub fn more_fragments(&self) -> bool {
        self.flags_frag & FLAG_MF != 0
    }

    /// Whether this packet is a fragment (offset non-zero or MF set).
    #[inline]
    pub fn is_fragment(&self) -> bool {
        self.more_fragments() || self.frag_offset() != 0
    }

    /// Decode an IPv4 header from the front of `buf`.
    ///
    /// Verifies the version nibble, that IHL is at least 5, and that the
    /// buffer holds the full header. The checksum is *not* verified — the
    /// capture path (like libpcap consumers) treats it as data.
    pub fn decode(buf: &[u8]) -> Result<Ipv4Header, PacketError> {
        if buf.len() < MIN_HEADER_LEN {
            return Err(PacketError::Truncated {
                layer: "ipv4",
                needed: MIN_HEADER_LEN,
                have: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(PacketError::BadVersion { layer: "ipv4", found: version });
        }
        let ihl = buf[0] & 0x0f;
        if ihl < 5 {
            return Err(PacketError::BadLength { layer: "ipv4", what: "IHL < 5" });
        }
        let header_len = usize::from(ihl) * 4;
        if buf.len() < header_len {
            return Err(PacketError::Truncated {
                layer: "ipv4",
                needed: header_len,
                have: buf.len(),
            });
        }
        Ok(Ipv4Header {
            header_len: header_len as u8,
            tos: buf[1],
            total_len: be16(buf, 2).expect("bounds checked"),
            id: be16(buf, 4).expect("bounds checked"),
            flags_frag: be16(buf, 6).expect("bounds checked"),
            ttl: buf[8],
            protocol: buf[9],
            checksum: be16(buf, 10).expect("bounds checked"),
            src: be32(buf, 12).expect("bounds checked"),
            dst: be32(buf, 16).expect("bounds checked"),
        })
    }

    /// Encode this header (without options) into `out`, computing the
    /// checksum. `header_len` values other than 20 are rejected — the
    /// builder never emits options.
    pub fn encode(&self, out: &mut Vec<u8>) -> Result<(), PacketError> {
        if self.header_len != 20 {
            return Err(PacketError::FieldOverflow { layer: "ipv4", field: "header_len" });
        }
        let start = out.len();
        out.push(0x45);
        out.push(self.tos);
        out.extend_from_slice(&self.total_len.to_be_bytes());
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&self.flags_frag.to_be_bytes());
        out.push(self.ttl);
        out.push(self.protocol);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.to_be_bytes());
        out.extend_from_slice(&self.dst.to_be_bytes());
        let cksum = checksum(&out[start..start + MIN_HEADER_LEN]);
        out[start + 10] = (cksum >> 8) as u8;
        out[start + 11] = (cksum & 0xff) as u8;
        Ok(())
    }
}

/// RFC 1071 Internet checksum over `data` (assumed to have the checksum
/// field zeroed).
pub fn checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(*last) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Format a host-order IPv4 address in dotted-quad notation.
pub fn fmt_ipv4(addr: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (addr >> 24) & 0xff,
        (addr >> 16) & 0xff,
        (addr >> 8) & 0xff,
        addr & 0xff
    )
}

/// Parse a dotted-quad IPv4 address into a host-order `u32`.
pub fn parse_ipv4(s: &str) -> Option<u32> {
    let mut parts = s.split('.');
    let mut addr: u32 = 0;
    for _ in 0..4 {
        let octet: u32 = parts.next()?.parse().ok()?;
        if octet > 255 {
            return None;
        }
        addr = (addr << 8) | octet;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header {
            header_len: 20,
            tos: 0,
            total_len: 60,
            id: 0xBEEF,
            flags_frag: FLAG_DF,
            ttl: 64,
            protocol: PROTO_TCP,
            checksum: 0,
            src: parse_ipv4("10.1.2.3").unwrap(),
            dst: parse_ipv4("192.168.0.1").unwrap(),
        }
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let mut buf = Vec::new();
        h.encode(&mut buf).unwrap();
        let d = Ipv4Header::decode(&buf).unwrap();
        assert_eq!(d.src, h.src);
        assert_eq!(d.dst, h.dst);
        assert_eq!(d.total_len, 60);
        assert_eq!(d.protocol, PROTO_TCP);
        // Encoded checksum must validate: re-summing the header with the
        // checksum in place yields zero.
        assert_eq!(checksum(&buf), 0);
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        sample().encode(&mut buf).unwrap();
        buf[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Header::decode(&buf),
            Err(PacketError::BadVersion { layer: "ipv4", found: 6 })
        ));
    }

    #[test]
    fn rejects_short_ihl() {
        let mut buf = Vec::new();
        sample().encode(&mut buf).unwrap();
        buf[0] = 0x44; // IHL 4
        assert!(matches!(Ipv4Header::decode(&buf), Err(PacketError::BadLength { .. })));
    }

    #[test]
    fn fragment_fields() {
        let mut h = sample();
        h.flags_frag = FLAG_MF | 100; // offset 100*8 bytes, more coming
        assert!(h.is_fragment());
        assert!(h.more_fragments());
        assert_eq!(h.frag_offset(), 800);
        h.flags_frag = 0;
        assert!(!h.is_fragment());
    }

    #[test]
    fn addr_parse_format() {
        assert_eq!(parse_ipv4("0.0.0.0"), Some(0));
        assert_eq!(parse_ipv4("255.255.255.255"), Some(u32::MAX));
        assert_eq!(parse_ipv4("256.0.0.1"), None);
        assert_eq!(parse_ipv4("1.2.3"), None);
        assert_eq!(parse_ipv4("1.2.3.4.5"), None);
        assert_eq!(fmt_ipv4(parse_ipv4("12.34.56.78").unwrap()), "12.34.56.78");
    }

    #[test]
    fn checksum_odd_length() {
        // Odd-length data exercises the remainder path.
        let c = checksum(&[0x01, 0x02, 0x03]);
        // Manual: 0x0102 + 0x0300 = 0x0402 -> !0x0402
        assert_eq!(c, !0x0402);
    }
}
