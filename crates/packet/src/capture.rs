//! Timestamped captured packets and a simple on-disk trace format.
//!
//! A [`CapPacket`] is what an interface hands to the run time system: a
//! capture timestamp, the interface id, the original wire length, and
//! however many bytes the snap length preserved. The trace format is a
//! minimal pcap-like container used by the examples and tests to replay
//! deterministic captures.

use crate::error::PacketError;
use bytes::Bytes;

/// How the bytes of a captured packet should be interpreted by the
/// protocol interpretation library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkType {
    /// Ethernet II frame (the common case: GigE monitoring ports).
    Ethernet,
    /// Raw IP packet with no link header (e.g. OC48 POS after HDLC strip).
    RawIp,
    /// One Netflow v5 record (export packets are split upstream).
    NetflowRecord,
    /// One simplified BGP update record.
    BgpUpdate,
}

impl LinkType {
    /// Stable numeric tag used by the trace format.
    pub fn tag(self) -> u8 {
        match self {
            LinkType::Ethernet => 0,
            LinkType::RawIp => 1,
            LinkType::NetflowRecord => 2,
            LinkType::BgpUpdate => 3,
        }
    }

    /// Inverse of [`LinkType::tag`].
    pub fn from_tag(t: u8) -> Option<LinkType> {
        Some(match t {
            0 => LinkType::Ethernet,
            1 => LinkType::RawIp,
            2 => LinkType::NetflowRecord,
            3 => LinkType::BgpUpdate,
            _ => return None,
        })
    }
}

/// A captured packet as delivered to the run time system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapPacket {
    /// Capture timestamp, nanoseconds since an arbitrary epoch.
    pub ts_ns: u64,
    /// Numeric id of the capturing interface.
    pub iface: u16,
    /// Link-level interpretation of `data`.
    pub link: LinkType,
    /// Original length of the packet on the wire, before snap truncation.
    pub wire_len: u32,
    /// Captured bytes (possibly truncated to the snap length).
    pub data: Bytes,
}

impl CapPacket {
    /// Construct a capture record with `data` captured in full.
    pub fn full(ts_ns: u64, iface: u16, link: LinkType, data: Bytes) -> CapPacket {
        let wire_len = data.len() as u32;
        CapPacket { ts_ns, iface, link, wire_len, data }
    }

    /// Capture timestamp truncated to whole seconds — the GSQL `time`
    /// attribute (the paper: "a 1-second granularity timer").
    #[inline]
    pub fn time_sec(&self) -> u32 {
        (self.ts_ns / 1_000_000_000) as u32
    }

    /// Return a copy truncated to `snaplen` captured bytes (the wire length
    /// is preserved, as with pcap's snap length).
    pub fn snap(&self, snaplen: usize) -> CapPacket {
        if self.data.len() <= snaplen {
            self.clone()
        } else {
            CapPacket { data: self.data.slice(..snaplen), ..self.clone() }
        }
    }
}

/// Magic bytes identifying the trace format.
pub const TRACE_MAGIC: [u8; 4] = *b"GSC1";

/// Serialize packets to the trace format.
pub fn write_trace(packets: &[CapPacket]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + packets.iter().map(|p| 20 + p.data.len()).sum::<usize>());
    out.extend_from_slice(&TRACE_MAGIC);
    out.extend_from_slice(&(packets.len() as u32).to_be_bytes());
    for p in packets {
        out.extend_from_slice(&p.ts_ns.to_be_bytes());
        out.extend_from_slice(&p.iface.to_be_bytes());
        out.push(p.link.tag());
        out.push(0); // reserved
        out.extend_from_slice(&p.wire_len.to_be_bytes());
        out.extend_from_slice(&(p.data.len() as u32).to_be_bytes());
        out.extend_from_slice(&p.data);
    }
    out
}

/// Deserialize a trace produced by [`write_trace`].
pub fn read_trace(buf: &[u8]) -> Result<Vec<CapPacket>, PacketError> {
    if buf.len() < 8 || buf[0..4] != TRACE_MAGIC {
        return Err(PacketError::TraceCorrupt("missing magic"));
    }
    let count = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    let mut packets = Vec::with_capacity(count.min(1 << 20));
    let mut off = 8usize;
    let body = Bytes::copy_from_slice(buf);
    for _ in 0..count {
        if buf.len() < off + 20 {
            return Err(PacketError::TraceCorrupt("record header truncated"));
        }
        let ts_ns = u64::from_be_bytes(buf[off..off + 8].try_into().expect("fixed slice"));
        let iface = u16::from_be_bytes([buf[off + 8], buf[off + 9]]);
        let link = LinkType::from_tag(buf[off + 10])
            .ok_or(PacketError::TraceCorrupt("unknown link type"))?;
        let wire_len =
            u32::from_be_bytes(buf[off + 12..off + 16].try_into().expect("fixed slice"));
        let cap_len =
            u32::from_be_bytes(buf[off + 16..off + 20].try_into().expect("fixed slice")) as usize;
        off += 20;
        if buf.len() < off + cap_len {
            return Err(PacketError::TraceCorrupt("record body truncated"));
        }
        packets.push(CapPacket {
            ts_ns,
            iface,
            link,
            wire_len,
            data: body.slice(off..off + cap_len),
        });
        off += cap_len;
    }
    Ok(packets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(ts: u64, bytes: &[u8]) -> CapPacket {
        CapPacket::full(ts, 0, LinkType::Ethernet, Bytes::copy_from_slice(bytes))
    }

    #[test]
    fn time_sec_truncates() {
        assert_eq!(pkt(1_999_999_999, &[]).time_sec(), 1);
        assert_eq!(pkt(2_000_000_000, &[]).time_sec(), 2);
    }

    #[test]
    fn snap_preserves_wire_len() {
        let p = pkt(0, &[1, 2, 3, 4, 5]);
        let s = p.snap(3);
        assert_eq!(s.data.as_ref(), &[1, 2, 3]);
        assert_eq!(s.wire_len, 5);
        // Snapping longer than the data is a no-op.
        assert_eq!(p.snap(100), p);
    }

    #[test]
    fn trace_roundtrip() {
        let pkts = vec![
            pkt(10, &[1, 2, 3]),
            CapPacket::full(20, 3, LinkType::NetflowRecord, Bytes::from_static(&[9; 48])),
            pkt(30, &[]),
        ];
        let buf = write_trace(&pkts);
        let back = read_trace(&buf).unwrap();
        assert_eq!(back, pkts);
    }

    #[test]
    fn trace_corruption_detected() {
        let pkts = vec![pkt(10, &[1, 2, 3])];
        let mut buf = write_trace(&pkts);
        buf.truncate(buf.len() - 1);
        assert!(read_trace(&buf).is_err());
        buf[0] = b'X';
        assert!(read_trace(&buf).is_err());
    }
}
