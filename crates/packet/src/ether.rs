//! Ethernet II framing.

use crate::error::PacketError;

/// Length of an Ethernet II header: two MAC addresses plus the EtherType.
pub const HEADER_LEN: usize = 14;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for IPv6.
pub const ETHERTYPE_IPV6: u16 = 0x86DD;
/// EtherType for ARP (decoded only as "not IP" by the interpretation layer).
pub const ETHERTYPE_ARP: u16 = 0x0806;

/// A MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// A decoded Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtherHeader {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// EtherType of the encapsulated payload.
    pub ethertype: u16,
}

impl EtherHeader {
    /// Decode an Ethernet header from the front of `frame`.
    pub fn decode(frame: &[u8]) -> Result<EtherHeader, PacketError> {
        if frame.len() < HEADER_LEN {
            return Err(PacketError::Truncated {
                layer: "ether",
                needed: HEADER_LEN,
                have: frame.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&frame[0..6]);
        src.copy_from_slice(&frame[6..12]);
        Ok(EtherHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: u16::from_be_bytes([frame[12], frame[13]]),
        })
    }

    /// Encode this header into `out`, appending exactly [`HEADER_LEN`] bytes.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = EtherHeader {
            dst: MacAddr([1, 2, 3, 4, 5, 6]),
            src: MacAddr([9, 8, 7, 6, 5, 4]),
            ethertype: ETHERTYPE_IPV4,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(EtherHeader::decode(&buf).unwrap(), h);
    }

    #[test]
    fn truncated() {
        let err = EtherHeader::decode(&[0u8; 13]).unwrap_err();
        assert!(matches!(err, PacketError::Truncated { layer: "ether", .. }));
    }

    #[test]
    fn mac_display() {
        assert_eq!(MacAddr([0, 0x1a, 0xff, 3, 4, 5]).to_string(), "00:1a:ff:03:04:05");
        assert_eq!(MacAddr::BROADCAST.to_string(), "ff:ff:ff:ff:ff:ff");
    }
}
