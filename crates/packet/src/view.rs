//! Zero-copy parsed view over a captured packet.
//!
//! A [`PacketView`] is built once per captured packet and caches the layer
//! headers and payload offset so that field accessors are O(1) lookups into
//! already-decoded structs. Payload accessors return [`bytes::Bytes`]
//! slices sharing the capture buffer.

use crate::bgp::BgpUpdate;
use crate::capture::{CapPacket, LinkType};
use crate::ether::{EtherHeader, ETHERTYPE_IPV4, ETHERTYPE_IPV6};
use crate::icmp::IcmpHeader;
use crate::ip::{Ipv4Header, PROTO_ICMP, PROTO_TCP, PROTO_UDP};
use crate::ipv6::Ipv6Header;
use crate::netflow::NetflowRecord;
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;
use bytes::Bytes;

/// Parsed transport layer of an IP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// TCP segment with the byte offset of its payload within the frame.
    Tcp(TcpHeader, usize),
    /// UDP datagram with the byte offset of its payload within the frame.
    Udp(UdpHeader, usize),
    /// ICMP message.
    Icmp(IcmpHeader),
    /// Some other or truncated transport protocol.
    Other,
}

/// Parsed network layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Network {
    /// IPv4 packet.
    V4(Ipv4Header),
    /// IPv6 packet.
    V6(Ipv6Header),
    /// Not an IP packet (or truncated beyond recognition).
    Other,
}

/// A captured packet together with its decoded layers.
///
/// Decoding never fails: malformed or truncated layers simply leave the
/// corresponding layer as `Other`/`None`, and the field accessors return
/// `None`, causing the tuple to be discarded by the protocol prefilter —
/// the behaviour a capture pipeline needs when fed garbage off the wire.
#[derive(Debug, Clone)]
pub struct PacketView {
    /// The raw capture record.
    pub cap: CapPacket,
    /// Decoded Ethernet header, when the link type is Ethernet.
    pub ether: Option<EtherHeader>,
    /// Decoded network layer.
    pub net: Network,
    /// Decoded transport layer.
    pub transport: Transport,
    /// Decoded Netflow record, when the link type is `NetflowRecord`.
    pub netflow: Option<NetflowRecord>,
    /// Decoded BGP update, when the link type is `BgpUpdate`.
    pub bgp: Option<BgpUpdate>,
}

impl PacketView {
    /// Decode `cap` into a view. Runs every layer decoder applicable to the
    /// capture's link type; failures degrade to `Other`/`None`.
    pub fn parse(cap: CapPacket) -> PacketView {
        let mut view = PacketView {
            cap,
            ether: None,
            net: Network::Other,
            transport: Transport::Other,
            netflow: None,
            bgp: None,
        };
        match view.cap.link {
            LinkType::Ethernet => {
                if let Ok(eh) = EtherHeader::decode(&view.cap.data) {
                    let l3 = crate::ether::HEADER_LEN;
                    view.ether = Some(eh);
                    match eh.ethertype {
                        ETHERTYPE_IPV4 => view.parse_ipv4(l3),
                        ETHERTYPE_IPV6 => view.parse_ipv6(l3),
                        _ => {}
                    }
                }
            }
            LinkType::RawIp => {
                match view.cap.data.first().map(|b| b >> 4) {
                    Some(4) => view.parse_ipv4(0),
                    Some(6) => view.parse_ipv6(0),
                    _ => {}
                }
            }
            LinkType::NetflowRecord => {
                view.netflow = NetflowRecord::decode(&view.cap.data).ok();
            }
            LinkType::BgpUpdate => {
                view.bgp = BgpUpdate::decode(&view.cap.data).ok();
            }
        }
        view
    }

    fn parse_ipv4(&mut self, l3: usize) {
        let Some(ip_bytes) = self.cap.data.get(l3..) else { return };
        let Ok(ih) = Ipv4Header::decode(ip_bytes) else { return };
        self.net = Network::V4(ih);
        // Do not parse the transport layer of non-first fragments: their
        // bytes are mid-stream payload, not a header.
        if ih.frag_offset() != 0 {
            return;
        }
        let l4 = l3 + usize::from(ih.header_len);
        self.parse_transport(ih.protocol, l4);
    }

    fn parse_ipv6(&mut self, l3: usize) {
        let Some(ip_bytes) = self.cap.data.get(l3..) else { return };
        let Ok(ih) = Ipv6Header::decode(ip_bytes) else { return };
        self.net = Network::V6(ih);
        let l4 = l3 + crate::ipv6::HEADER_LEN;
        self.parse_transport(ih.next_header, l4);
    }

    fn parse_transport(&mut self, proto: u8, l4: usize) {
        let data = self.cap.data.clone();
        let Some(bytes) = data.get(l4..) else { return };
        self.transport = match proto {
            PROTO_TCP => match TcpHeader::decode(bytes) {
                Ok(th) => Transport::Tcp(th, l4 + usize::from(th.header_len)),
                Err(_) => Transport::Other,
            },
            PROTO_UDP => match UdpHeader::decode(bytes) {
                Ok(uh) => Transport::Udp(uh, l4 + crate::udp::HEADER_LEN),
                Err(_) => Transport::Other,
            },
            PROTO_ICMP => match IcmpHeader::decode(bytes) {
                Ok(ih) => Transport::Icmp(ih),
                Err(_) => Transport::Other,
            },
            _ => Transport::Other,
        };
    }

    /// The IPv4 header, if this is an IPv4 packet.
    #[inline]
    pub fn ipv4(&self) -> Option<&Ipv4Header> {
        match &self.net {
            Network::V4(h) => Some(h),
            _ => None,
        }
    }

    /// The IPv6 header, if this is an IPv6 packet.
    #[inline]
    pub fn ipv6(&self) -> Option<&Ipv6Header> {
        match &self.net {
            Network::V6(h) => Some(h),
            _ => None,
        }
    }

    /// IP version number (4 or 6), if IP at all.
    #[inline]
    pub fn ip_version(&self) -> Option<u8> {
        match self.net {
            Network::V4(_) => Some(4),
            Network::V6(_) => Some(6),
            Network::Other => None,
        }
    }

    /// IP protocol / next-header number.
    #[inline]
    pub fn ip_protocol(&self) -> Option<u8> {
        match self.net {
            Network::V4(h) => Some(h.protocol),
            Network::V6(h) => Some(h.next_header),
            Network::Other => None,
        }
    }

    /// The TCP header, if this is a (first-fragment) TCP packet.
    #[inline]
    pub fn tcp(&self) -> Option<&TcpHeader> {
        match &self.transport {
            Transport::Tcp(h, _) => Some(h),
            _ => None,
        }
    }

    /// The UDP header, if present.
    #[inline]
    pub fn udp(&self) -> Option<&UdpHeader> {
        match &self.transport {
            Transport::Udp(h, _) => Some(h),
            _ => None,
        }
    }

    /// The ICMP header, if present.
    #[inline]
    pub fn icmp(&self) -> Option<&IcmpHeader> {
        match &self.transport {
            Transport::Icmp(h) => Some(h),
            _ => None,
        }
    }

    /// Transport payload bytes (zero-copy slice of the capture buffer),
    /// for TCP and UDP packets. Returns an empty slice for header-only
    /// segments; `None` if there is no TCP/UDP transport layer.
    pub fn payload(&self) -> Option<Bytes> {
        let off = match self.transport {
            Transport::Tcp(_, off) | Transport::Udp(_, off) => off,
            _ => return None,
        };
        Some(if off >= self.cap.data.len() {
            Bytes::new()
        } else {
            self.cap.data.slice(off..)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FrameBuilder;

    #[test]
    fn parses_tcp_over_ethernet() {
        let frame = FrameBuilder::tcp(0x0a000001, 0xc0a80001, 1234, 80)
            .payload(b"GET / HTTP/1.1\r\n")
            .build_ethernet();
        let v = PacketView::parse(CapPacket::full(1_500_000_000, 0, LinkType::Ethernet, frame));
        assert_eq!(v.ip_version(), Some(4));
        assert_eq!(v.ip_protocol(), Some(PROTO_TCP));
        let tcp = v.tcp().unwrap();
        assert_eq!(tcp.dst_port, 80);
        assert_eq!(v.payload().unwrap().as_ref(), b"GET / HTTP/1.1\r\n");
        assert!(v.udp().is_none());
        assert!(v.icmp().is_none());
    }

    #[test]
    fn parses_udp_raw_ip() {
        let frame = FrameBuilder::udp(1, 2, 53, 53).payload(b"dns").build_raw_ip();
        let v = PacketView::parse(CapPacket::full(0, 1, LinkType::RawIp, frame));
        assert_eq!(v.ip_version(), Some(4));
        assert_eq!(v.udp().unwrap().src_port, 53);
        assert_eq!(v.payload().unwrap().as_ref(), b"dns");
    }

    #[test]
    fn garbage_degrades_gracefully() {
        let v = PacketView::parse(CapPacket::full(
            0,
            0,
            LinkType::Ethernet,
            Bytes::from_static(&[0xde, 0xad]),
        ));
        assert_eq!(v.ip_version(), None);
        assert!(v.payload().is_none());
        assert!(v.tcp().is_none());
    }

    #[test]
    fn snapped_payload_is_truncated_not_absent() {
        let frame = FrameBuilder::tcp(1, 2, 10, 80).payload(&[7u8; 100]).build_ethernet();
        let cap = CapPacket::full(0, 0, LinkType::Ethernet, frame).snap(14 + 20 + 20 + 10);
        let v = PacketView::parse(cap);
        assert_eq!(v.payload().unwrap().len(), 10);
    }

    #[test]
    fn non_first_fragment_has_no_transport() {
        let frame = FrameBuilder::tcp(1, 2, 10, 80)
            .payload(b"xxxx")
            .fragment(8, true)
            .build_ethernet();
        let v = PacketView::parse(CapPacket::full(0, 0, LinkType::Ethernet, frame));
        assert!(v.ipv4().unwrap().is_fragment());
        assert!(v.tcp().is_none());
    }

    #[test]
    fn netflow_link_type() {
        let rec = crate::netflow::NetflowRecord {
            src_addr: 1,
            dst_addr: 2,
            packets: 3,
            octets: 4,
            first: 5,
            last: 6,
            src_port: 7,
            dst_port: 8,
            tcp_flags: 0,
            protocol: 6,
            tos: 0,
            src_as: 0,
            dst_as: 0,
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        let v = PacketView::parse(CapPacket::full(0, 0, LinkType::NetflowRecord, buf.into()));
        assert_eq!(v.netflow.unwrap().octets, 4);
        assert!(v.ipv4().is_none());
    }
}
