//! Netflow v5-style flow export records.
//!
//! The paper's motivating ordering example (§2.1): a router emits Netflow
//! records sorted by flow *end* time, dumping its cache every 30 seconds, so
//! the *start* time is "banded-increasing(30 sec.)" — always within the dump
//! interval of the high-water mark. The decoder here preserves both
//! timestamps so the catalog can attach those ordering properties.

use crate::error::PacketError;
use crate::{be16, be32};

/// Length of the export packet header.
pub const PACKET_HEADER_LEN: usize = 24;
/// Length of one flow record.
pub const RECORD_LEN: usize = 48;
/// Netflow export format version encoded by this module.
pub const VERSION: u16 = 5;
/// Maximum records per export packet (v5 limit is 30).
pub const MAX_RECORDS: usize = 30;

/// Header of a Netflow v5 export packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetflowPacketHeader {
    /// Number of records following the header.
    pub count: u16,
    /// Router uptime in milliseconds at export.
    pub sys_uptime_ms: u32,
    /// Export wall-clock time, seconds since the epoch.
    pub unix_secs: u32,
    /// Residual nanoseconds of the export time.
    pub unix_nsecs: u32,
    /// Sequence number of the first flow in this export.
    pub flow_sequence: u32,
}

/// A single Netflow v5 flow record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetflowRecord {
    /// Flow source address, host order.
    pub src_addr: u32,
    /// Flow destination address, host order.
    pub dst_addr: u32,
    /// Packets in the flow.
    pub packets: u32,
    /// Octets (bytes) in the flow.
    pub octets: u32,
    /// Uptime at the first packet of the flow, milliseconds.
    pub first: u32,
    /// Uptime at the last packet of the flow, milliseconds.
    pub last: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Cumulative TCP flags observed.
    pub tcp_flags: u8,
    /// IP protocol number.
    pub protocol: u8,
    /// Type of service byte.
    pub tos: u8,
    /// Source autonomous system number.
    pub src_as: u16,
    /// Destination autonomous system number.
    pub dst_as: u16,
}

impl NetflowPacketHeader {
    /// Decode the export packet header from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<NetflowPacketHeader, PacketError> {
        if buf.len() < PACKET_HEADER_LEN {
            return Err(PacketError::Truncated {
                layer: "netflow",
                needed: PACKET_HEADER_LEN,
                have: buf.len(),
            });
        }
        let version = be16(buf, 0).expect("bounds checked");
        if version != VERSION {
            return Err(PacketError::BadVersion { layer: "netflow", found: version as u8 });
        }
        Ok(NetflowPacketHeader {
            count: be16(buf, 2).expect("bounds checked"),
            sys_uptime_ms: be32(buf, 4).expect("bounds checked"),
            unix_secs: be32(buf, 8).expect("bounds checked"),
            unix_nsecs: be32(buf, 12).expect("bounds checked"),
            flow_sequence: be32(buf, 16).expect("bounds checked"),
        })
    }

    /// Encode the header into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&VERSION.to_be_bytes());
        out.extend_from_slice(&self.count.to_be_bytes());
        out.extend_from_slice(&self.sys_uptime_ms.to_be_bytes());
        out.extend_from_slice(&self.unix_secs.to_be_bytes());
        out.extend_from_slice(&self.unix_nsecs.to_be_bytes());
        out.extend_from_slice(&self.flow_sequence.to_be_bytes());
        out.extend_from_slice(&[0u8; 4]); // engine type/id, sampling interval
    }
}

impl NetflowRecord {
    /// Decode one record starting at the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<NetflowRecord, PacketError> {
        if buf.len() < RECORD_LEN {
            return Err(PacketError::Truncated {
                layer: "netflow",
                needed: RECORD_LEN,
                have: buf.len(),
            });
        }
        Ok(NetflowRecord {
            src_addr: be32(buf, 0).expect("bounds checked"),
            dst_addr: be32(buf, 4).expect("bounds checked"),
            // bytes 8..16 are nexthop + ifindexes, not exposed in the schema
            packets: be32(buf, 16).expect("bounds checked"),
            octets: be32(buf, 20).expect("bounds checked"),
            first: be32(buf, 24).expect("bounds checked"),
            last: be32(buf, 28).expect("bounds checked"),
            src_port: be16(buf, 32).expect("bounds checked"),
            dst_port: be16(buf, 34).expect("bounds checked"),
            tcp_flags: buf[37],
            protocol: buf[38],
            tos: buf[39],
            src_as: be16(buf, 40).expect("bounds checked"),
            dst_as: be16(buf, 42).expect("bounds checked"),
        })
    }

    /// Encode this record into `out`, emitting exactly [`RECORD_LEN`] bytes.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src_addr.to_be_bytes());
        out.extend_from_slice(&self.dst_addr.to_be_bytes());
        out.extend_from_slice(&[0u8; 8]); // nexthop, input/output ifindex
        out.extend_from_slice(&self.packets.to_be_bytes());
        out.extend_from_slice(&self.octets.to_be_bytes());
        out.extend_from_slice(&self.first.to_be_bytes());
        out.extend_from_slice(&self.last.to_be_bytes());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.push(0); // pad
        out.push(self.tcp_flags);
        out.push(self.protocol);
        out.push(self.tos);
        out.extend_from_slice(&self.src_as.to_be_bytes());
        out.extend_from_slice(&self.dst_as.to_be_bytes());
        out.extend_from_slice(&[0u8; 4]); // masks, pad
    }
}

/// Encode a full export packet (header plus up to [`MAX_RECORDS`] records).
pub fn encode_packet(
    header: &NetflowPacketHeader,
    records: &[NetflowRecord],
) -> Result<Vec<u8>, PacketError> {
    if records.len() > MAX_RECORDS {
        return Err(PacketError::FieldOverflow { layer: "netflow", field: "count" });
    }
    let mut hdr = *header;
    hdr.count = records.len() as u16;
    let mut out = Vec::with_capacity(PACKET_HEADER_LEN + records.len() * RECORD_LEN);
    hdr.encode(&mut out);
    for r in records {
        r.encode(&mut out);
    }
    Ok(out)
}

/// Decode a full export packet into its header and records.
pub fn decode_packet(buf: &[u8]) -> Result<(NetflowPacketHeader, Vec<NetflowRecord>), PacketError> {
    let header = NetflowPacketHeader::decode(buf)?;
    let mut records = Vec::with_capacity(usize::from(header.count));
    let mut off = PACKET_HEADER_LEN;
    for _ in 0..header.count {
        let rest = buf.get(off..).ok_or(PacketError::Truncated {
            layer: "netflow",
            needed: off + RECORD_LEN,
            have: buf.len(),
        })?;
        records.push(NetflowRecord::decode(rest)?);
        off += RECORD_LEN;
    }
    Ok((header, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u32) -> NetflowRecord {
        NetflowRecord {
            src_addr: 0x0a00_0001 + i,
            dst_addr: 0xc0a8_0001,
            packets: 10 + i,
            octets: 1000 + i,
            first: 5000 + i,
            last: 9000 + i,
            src_port: 1024,
            dst_port: 80,
            tcp_flags: 0x1b,
            protocol: 6,
            tos: 0,
            src_as: 7018,
            dst_as: 701,
        }
    }

    #[test]
    fn record_roundtrip() {
        let r = rec(3);
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), RECORD_LEN);
        assert_eq!(NetflowRecord::decode(&buf).unwrap(), r);
    }

    #[test]
    fn packet_roundtrip() {
        let hdr = NetflowPacketHeader {
            count: 0,
            sys_uptime_ms: 123456,
            unix_secs: 1_050_000_000,
            unix_nsecs: 42,
            flow_sequence: 999,
        };
        let recs: Vec<_> = (0..5).map(rec).collect();
        let buf = encode_packet(&hdr, &recs).unwrap();
        let (h2, r2) = decode_packet(&buf).unwrap();
        assert_eq!(h2.count, 5);
        assert_eq!(h2.flow_sequence, 999);
        assert_eq!(r2, recs);
    }

    #[test]
    fn too_many_records_rejected() {
        let hdr = NetflowPacketHeader {
            count: 0,
            sys_uptime_ms: 0,
            unix_secs: 0,
            unix_nsecs: 0,
            flow_sequence: 0,
        };
        let recs: Vec<_> = (0..31).map(rec).collect();
        assert!(encode_packet(&hdr, &recs).is_err());
    }

    #[test]
    fn truncated_record_tail() {
        let hdr = NetflowPacketHeader {
            count: 0,
            sys_uptime_ms: 0,
            unix_secs: 0,
            unix_nsecs: 0,
            flow_sequence: 0,
        };
        let mut buf = encode_packet(&hdr, &[rec(0), rec(1)]).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(decode_packet(&buf).is_err());
    }

    #[test]
    fn bad_version() {
        let mut buf = vec![0u8; PACKET_HEADER_LEN];
        buf[1] = 9;
        assert!(matches!(
            NetflowPacketHeader::decode(&buf),
            Err(PacketError::BadVersion { .. })
        ));
    }
}
