//! Error type shared by the packet codecs.

use std::fmt;

/// Errors produced while encoding or decoding packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// The buffer was shorter than the fixed header requires.
    Truncated {
        /// Protocol layer that failed to decode (e.g. `"ipv4"`).
        layer: &'static str,
        /// Bytes needed to decode the header.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A version / type discriminator did not match the expected protocol.
    BadVersion {
        /// Protocol layer that failed to decode.
        layer: &'static str,
        /// The value found in the packet.
        found: u8,
    },
    /// A length field was inconsistent with the buffer (e.g. IHL too small,
    /// total length beyond the frame).
    BadLength {
        /// Protocol layer that failed to decode.
        layer: &'static str,
        /// Human-readable description of the inconsistency.
        what: &'static str,
    },
    /// A field value supplied to an encoder does not fit its wire encoding.
    FieldOverflow {
        /// Protocol layer being encoded.
        layer: &'static str,
        /// The field that overflowed.
        field: &'static str,
    },
    /// The trace stream ended in the middle of a record.
    TraceCorrupt(&'static str),
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated { layer, needed, have } => {
                write!(f, "{layer}: truncated packet (need {needed} bytes, have {have})")
            }
            PacketError::BadVersion { layer, found } => {
                write!(f, "{layer}: unexpected version/type {found}")
            }
            PacketError::BadLength { layer, what } => write!(f, "{layer}: bad length: {what}"),
            PacketError::FieldOverflow { layer, field } => {
                write!(f, "{layer}: field `{field}` does not fit its wire encoding")
            }
            PacketError::TraceCorrupt(what) => write!(f, "trace corrupt: {what}"),
        }
    }
}

impl std::error::Error for PacketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = PacketError::Truncated { layer: "ipv4", needed: 20, have: 7 };
        assert_eq!(e.to_string(), "ipv4: truncated packet (need 20 bytes, have 7)");
        let e = PacketError::BadVersion { layer: "ipv4", found: 9 };
        assert!(e.to_string().contains("unexpected version"));
        let e = PacketError::BadLength { layer: "tcp", what: "data offset < 5" };
        assert!(e.to_string().contains("data offset"));
    }
}
