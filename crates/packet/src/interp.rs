//! The protocol field interpretation library.
//!
//! A Gigascope *Protocol* stream's schema "maps field names to the
//! interpretation functions to invoke" (paper §2.2). This module defines
//! that mapping: a [`ProtocolDef`] names a protocol (`pkt`, `ip`, `tcp`,
//! `udp`, `icmp`, `netflow`, `bgp`), a prefilter deciding whether a captured
//! packet belongs to the protocol at all, and an ordered list of
//! [`FieldDef`]s whose [`Accessor`] functions pull typed values out of a
//! [`PacketView`].
//!
//! Accessors return `None` when the field is not present (e.g. `destPort`
//! of a non-TCP packet); the run time system discards such tuples, which is
//! exactly how `eth0.tcp` yields only TCP packets.

use crate::view::PacketView;
use bytes::Bytes;

/// A typed field value extracted from a packet.
///
/// This is deliberately smaller than the runtime's full value type: packets
/// only yield unsigned integers, booleans, IP addresses, and byte strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer, up to 64 bits.
    UInt(u64),
    /// IPv4 address, host order.
    Ip(u32),
    /// Byte string sharing the capture buffer.
    Str(Bytes),
}

/// Declared type of a protocol field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// Boolean.
    Bool,
    /// Unsigned integer (width is advisory; values travel as `u64`).
    UInt,
    /// IPv4 address.
    Ip,
    /// Byte string.
    Str,
}

/// Ordering hint attached to a source field, from which the GSQL catalog
/// derives its ordering properties (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderHint {
    /// No known ordering.
    None,
    /// Monotonically non-decreasing with stream position.
    Increasing,
    /// Within `band` of the running maximum (banded-increasing(B)).
    BandedIncreasing(u64),
    /// Increasing within each group defined by the named fields.
    IncreasingInGroup(&'static [&'static str]),
}

/// Function extracting one field from a parsed packet.
pub type Accessor = fn(&PacketView) -> Option<FieldValue>;

/// One field of a protocol schema.
#[derive(Debug, Clone, Copy)]
pub struct FieldDef {
    /// Field name as written in GSQL (`destPort`, `srcIP`, ...).
    pub name: &'static str,
    /// Declared type.
    pub ty: FieldType,
    /// Ordering hint for the catalog.
    pub order: OrderHint,
    /// The interpretation function.
    pub accessor: Accessor,
}

/// A protocol schema: prefilter plus field list.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolDef {
    /// Protocol name as written in GSQL FROM clauses (`eth0.tcp` → `tcp`).
    pub name: &'static str,
    /// Returns whether the packet belongs to this protocol at all.
    pub matches: fn(&PacketView) -> bool,
    /// The fields of the protocol stream, in schema order.
    pub fields: &'static [FieldDef],
}

impl ProtocolDef {
    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Index of a field by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

// ------------------------------------------------------------------
// Accessor functions. Small, branchy, and allocation-free.
// ------------------------------------------------------------------

fn time(v: &PacketView) -> Option<FieldValue> {
    Some(FieldValue::UInt(u64::from(v.cap.time_sec())))
}
fn time_ns(v: &PacketView) -> Option<FieldValue> {
    Some(FieldValue::UInt(v.cap.ts_ns))
}
fn caplen(v: &PacketView) -> Option<FieldValue> {
    Some(FieldValue::UInt(v.cap.data.len() as u64))
}
fn wirelen(v: &PacketView) -> Option<FieldValue> {
    Some(FieldValue::UInt(u64::from(v.cap.wire_len)))
}
fn iface(v: &PacketView) -> Option<FieldValue> {
    Some(FieldValue::UInt(u64::from(v.cap.iface)))
}
fn ip_version(v: &PacketView) -> Option<FieldValue> {
    v.ip_version().map(|x| FieldValue::UInt(u64::from(x)))
}
fn ip_protocol(v: &PacketView) -> Option<FieldValue> {
    v.ip_protocol().map(|x| FieldValue::UInt(u64::from(x)))
}
fn src_ip(v: &PacketView) -> Option<FieldValue> {
    v.ipv4().map(|h| FieldValue::Ip(h.src))
}
fn dest_ip(v: &PacketView) -> Option<FieldValue> {
    v.ipv4().map(|h| FieldValue::Ip(h.dst))
}
fn ip_tos(v: &PacketView) -> Option<FieldValue> {
    v.ipv4().map(|h| FieldValue::UInt(u64::from(h.tos)))
}
fn ip_ttl(v: &PacketView) -> Option<FieldValue> {
    v.ipv4().map(|h| FieldValue::UInt(u64::from(h.ttl)))
}
fn ip_id(v: &PacketView) -> Option<FieldValue> {
    v.ipv4().map(|h| FieldValue::UInt(u64::from(h.id)))
}
fn ip_total_len(v: &PacketView) -> Option<FieldValue> {
    v.ipv4().map(|h| FieldValue::UInt(u64::from(h.total_len)))
}
fn ip_frag_offset(v: &PacketView) -> Option<FieldValue> {
    v.ipv4().map(|h| FieldValue::UInt(u64::from(h.frag_offset())))
}
fn ip_more_frags(v: &PacketView) -> Option<FieldValue> {
    v.ipv4().map(|h| FieldValue::Bool(h.more_fragments()))
}
fn tcp_src_port(v: &PacketView) -> Option<FieldValue> {
    v.tcp().map(|h| FieldValue::UInt(u64::from(h.src_port)))
}
fn tcp_dst_port(v: &PacketView) -> Option<FieldValue> {
    v.tcp().map(|h| FieldValue::UInt(u64::from(h.dst_port)))
}
fn tcp_seq(v: &PacketView) -> Option<FieldValue> {
    v.tcp().map(|h| FieldValue::UInt(u64::from(h.seq)))
}
fn tcp_ack(v: &PacketView) -> Option<FieldValue> {
    v.tcp().map(|h| FieldValue::UInt(u64::from(h.ack)))
}
fn tcp_flags(v: &PacketView) -> Option<FieldValue> {
    v.tcp().map(|h| FieldValue::UInt(u64::from(h.flags)))
}
fn tcp_window(v: &PacketView) -> Option<FieldValue> {
    v.tcp().map(|h| FieldValue::UInt(u64::from(h.window)))
}
fn udp_src_port(v: &PacketView) -> Option<FieldValue> {
    v.udp().map(|h| FieldValue::UInt(u64::from(h.src_port)))
}
fn udp_dst_port(v: &PacketView) -> Option<FieldValue> {
    v.udp().map(|h| FieldValue::UInt(u64::from(h.dst_port)))
}
fn udp_len(v: &PacketView) -> Option<FieldValue> {
    v.udp().map(|h| FieldValue::UInt(u64::from(h.length)))
}
fn icmp_type(v: &PacketView) -> Option<FieldValue> {
    v.icmp().map(|h| FieldValue::UInt(u64::from(h.icmp_type)))
}
fn icmp_code(v: &PacketView) -> Option<FieldValue> {
    v.icmp().map(|h| FieldValue::UInt(u64::from(h.code)))
}
fn payload(v: &PacketView) -> Option<FieldValue> {
    v.payload().map(FieldValue::Str)
}
fn payload_len(v: &PacketView) -> Option<FieldValue> {
    v.payload().map(|p| FieldValue::UInt(p.len() as u64))
}

// Netflow record fields.
fn nf_src(v: &PacketView) -> Option<FieldValue> {
    v.netflow.map(|r| FieldValue::Ip(r.src_addr))
}
fn nf_dst(v: &PacketView) -> Option<FieldValue> {
    v.netflow.map(|r| FieldValue::Ip(r.dst_addr))
}
fn nf_src_port(v: &PacketView) -> Option<FieldValue> {
    v.netflow.map(|r| FieldValue::UInt(u64::from(r.src_port)))
}
fn nf_dst_port(v: &PacketView) -> Option<FieldValue> {
    v.netflow.map(|r| FieldValue::UInt(u64::from(r.dst_port)))
}
fn nf_proto(v: &PacketView) -> Option<FieldValue> {
    v.netflow.map(|r| FieldValue::UInt(u64::from(r.protocol)))
}
fn nf_pkts(v: &PacketView) -> Option<FieldValue> {
    v.netflow.map(|r| FieldValue::UInt(u64::from(r.packets)))
}
fn nf_octets(v: &PacketView) -> Option<FieldValue> {
    v.netflow.map(|r| FieldValue::UInt(u64::from(r.octets)))
}
fn nf_first(v: &PacketView) -> Option<FieldValue> {
    v.netflow.map(|r| FieldValue::UInt(u64::from(r.first)))
}
fn nf_last(v: &PacketView) -> Option<FieldValue> {
    v.netflow.map(|r| FieldValue::UInt(u64::from(r.last)))
}
fn nf_tcp_flags(v: &PacketView) -> Option<FieldValue> {
    v.netflow.map(|r| FieldValue::UInt(u64::from(r.tcp_flags)))
}
fn nf_src_as(v: &PacketView) -> Option<FieldValue> {
    v.netflow.map(|r| FieldValue::UInt(u64::from(r.src_as)))
}
fn nf_dst_as(v: &PacketView) -> Option<FieldValue> {
    v.netflow.map(|r| FieldValue::UInt(u64::from(r.dst_as)))
}

// IPv6 fields. 128-bit addresses travel as hi/lo 64-bit halves (GSQL's
// value types are 64-bit; monitoring queries group on the halves).
fn v6_src_hi(v: &PacketView) -> Option<FieldValue> {
    v.ipv6().map(|h| FieldValue::UInt((h.src >> 64) as u64))
}
fn v6_src_lo(v: &PacketView) -> Option<FieldValue> {
    v.ipv6().map(|h| FieldValue::UInt(h.src as u64))
}
fn v6_dst_hi(v: &PacketView) -> Option<FieldValue> {
    v.ipv6().map(|h| FieldValue::UInt((h.dst >> 64) as u64))
}
fn v6_dst_lo(v: &PacketView) -> Option<FieldValue> {
    v.ipv6().map(|h| FieldValue::UInt(h.dst as u64))
}
fn v6_hop_limit(v: &PacketView) -> Option<FieldValue> {
    v.ipv6().map(|h| FieldValue::UInt(u64::from(h.hop_limit)))
}
fn v6_flow_label(v: &PacketView) -> Option<FieldValue> {
    v.ipv6().map(|h| FieldValue::UInt(u64::from(h.flow_label)))
}
fn v6_traffic_class(v: &PacketView) -> Option<FieldValue> {
    v.ipv6().map(|h| FieldValue::UInt(u64::from(h.traffic_class)))
}
fn v6_payload_len(v: &PacketView) -> Option<FieldValue> {
    v.ipv6().map(|h| FieldValue::UInt(u64::from(h.payload_len)))
}

// BGP update fields.
fn bgp_type(v: &PacketView) -> Option<FieldValue> {
    v.bgp.map(|u| FieldValue::UInt(u64::from(u.msg_type)))
}
fn bgp_peer(v: &PacketView) -> Option<FieldValue> {
    v.bgp.map(|u| FieldValue::Ip(u.peer))
}
fn bgp_peer_as(v: &PacketView) -> Option<FieldValue> {
    v.bgp.map(|u| FieldValue::UInt(u64::from(u.peer_as)))
}
fn bgp_prefix(v: &PacketView) -> Option<FieldValue> {
    v.bgp.map(|u| FieldValue::Ip(u.prefix))
}
fn bgp_prefix_len(v: &PacketView) -> Option<FieldValue> {
    v.bgp.map(|u| FieldValue::UInt(u64::from(u.prefix_len)))
}
fn bgp_origin_as(v: &PacketView) -> Option<FieldValue> {
    v.bgp.map(|u| FieldValue::UInt(u64::from(u.origin_as)))
}
fn bgp_path_len(v: &PacketView) -> Option<FieldValue> {
    v.bgp.map(|u| FieldValue::UInt(u64::from(u.path_len)))
}
fn bgp_seq(v: &PacketView) -> Option<FieldValue> {
    v.bgp.map(|u| FieldValue::UInt(u64::from(u.seq)))
}

// ------------------------------------------------------------------
// Prefilters and schemas.
// ------------------------------------------------------------------

fn any_packet(_: &PacketView) -> bool {
    true
}
fn is_ip(v: &PacketView) -> bool {
    v.ip_version().is_some()
}
fn is_tcp(v: &PacketView) -> bool {
    v.tcp().is_some()
}
fn is_udp(v: &PacketView) -> bool {
    v.udp().is_some()
}
fn is_icmp(v: &PacketView) -> bool {
    v.icmp().is_some()
}
fn is_ipv6(v: &PacketView) -> bool {
    v.ipv6().is_some()
}
fn is_netflow(v: &PacketView) -> bool {
    v.netflow.is_some()
}
fn is_bgp(v: &PacketView) -> bool {
    v.bgp.is_some()
}

/// Capture-level fields shared by every packet-based protocol.
macro_rules! base_fields {
    () => {
        [
            FieldDef { name: "time", ty: FieldType::UInt, order: OrderHint::Increasing, accessor: time },
            FieldDef { name: "timeNS", ty: FieldType::UInt, order: OrderHint::Increasing, accessor: time_ns },
            FieldDef { name: "caplen", ty: FieldType::UInt, order: OrderHint::None, accessor: caplen },
            FieldDef { name: "len", ty: FieldType::UInt, order: OrderHint::None, accessor: wirelen },
            FieldDef { name: "iface", ty: FieldType::UInt, order: OrderHint::None, accessor: iface },
        ]
    };
}

macro_rules! ip_fields {
    () => {
        [
            FieldDef { name: "IPVersion", ty: FieldType::UInt, order: OrderHint::None, accessor: ip_version },
            FieldDef { name: "Protocol", ty: FieldType::UInt, order: OrderHint::None, accessor: ip_protocol },
            FieldDef { name: "srcIP", ty: FieldType::Ip, order: OrderHint::None, accessor: src_ip },
            FieldDef { name: "destIP", ty: FieldType::Ip, order: OrderHint::None, accessor: dest_ip },
            FieldDef { name: "tos", ty: FieldType::UInt, order: OrderHint::None, accessor: ip_tos },
            FieldDef { name: "ttl", ty: FieldType::UInt, order: OrderHint::None, accessor: ip_ttl },
            FieldDef { name: "id", ty: FieldType::UInt, order: OrderHint::None, accessor: ip_id },
            FieldDef { name: "totalLen", ty: FieldType::UInt, order: OrderHint::None, accessor: ip_total_len },
            FieldDef { name: "fragOffset", ty: FieldType::UInt, order: OrderHint::None, accessor: ip_frag_offset },
            FieldDef { name: "moreFrags", ty: FieldType::Bool, order: OrderHint::None, accessor: ip_more_frags },
        ]
    };
}

// Static field tables, spliced together in const context so that
// `ProtocolDef` can be `Copy` and live in a `&'static` registry.

static PKT_FIELDS: [FieldDef; 5] = base_fields!();

static IP_FIELDS: [FieldDef; 15] = {
    let base = base_fields!();
    let ip = ip_fields!();
    [
        base[0], base[1], base[2], base[3], base[4], //
        ip[0], ip[1], ip[2], ip[3], ip[4], ip[5], ip[6], ip[7], ip[8], ip[9],
    ]
};

static TCP_FIELDS: [FieldDef; 23] = {
    let base = base_fields!();
    let ip = ip_fields!();
    [
        base[0], base[1], base[2], base[3], base[4], //
        ip[0], ip[1], ip[2], ip[3], ip[4], ip[5], ip[6], ip[7], ip[8], ip[9],
        FieldDef { name: "srcPort", ty: FieldType::UInt, order: OrderHint::None, accessor: tcp_src_port },
        FieldDef { name: "destPort", ty: FieldType::UInt, order: OrderHint::None, accessor: tcp_dst_port },
        FieldDef { name: "seqNum", ty: FieldType::UInt, order: OrderHint::None, accessor: tcp_seq },
        FieldDef { name: "ackNum", ty: FieldType::UInt, order: OrderHint::None, accessor: tcp_ack },
        FieldDef { name: "flags", ty: FieldType::UInt, order: OrderHint::None, accessor: tcp_flags },
        FieldDef { name: "window", ty: FieldType::UInt, order: OrderHint::None, accessor: tcp_window },
        FieldDef { name: "payload", ty: FieldType::Str, order: OrderHint::None, accessor: payload },
        FieldDef { name: "payloadLen", ty: FieldType::UInt, order: OrderHint::None, accessor: payload_len },
    ]
};

static UDP_FIELDS: [FieldDef; 20] = {
    let base = base_fields!();
    let ip = ip_fields!();
    [
        base[0], base[1], base[2], base[3], base[4], //
        ip[0], ip[1], ip[2], ip[3], ip[4], ip[5], ip[6], ip[7], ip[8], ip[9],
        FieldDef { name: "srcPort", ty: FieldType::UInt, order: OrderHint::None, accessor: udp_src_port },
        FieldDef { name: "destPort", ty: FieldType::UInt, order: OrderHint::None, accessor: udp_dst_port },
        FieldDef { name: "udpLen", ty: FieldType::UInt, order: OrderHint::None, accessor: udp_len },
        FieldDef { name: "payload", ty: FieldType::Str, order: OrderHint::None, accessor: payload },
        FieldDef { name: "payloadLen", ty: FieldType::UInt, order: OrderHint::None, accessor: payload_len },
    ]
};

static ICMP_FIELDS: [FieldDef; 17] = {
    let base = base_fields!();
    let ip = ip_fields!();
    [
        base[0], base[1], base[2], base[3], base[4], //
        ip[0], ip[1], ip[2], ip[3], ip[4], ip[5], ip[6], ip[7], ip[8], ip[9],
        FieldDef { name: "icmpType", ty: FieldType::UInt, order: OrderHint::None, accessor: icmp_type },
        FieldDef { name: "icmpCode", ty: FieldType::UInt, order: OrderHint::None, accessor: icmp_code },
    ]
};

static IPV6_FIELDS: [FieldDef; 15] = {
    let base = base_fields!();
    [
        base[0], base[1], base[2], base[3], base[4], //
        FieldDef { name: "IPVersion", ty: FieldType::UInt, order: OrderHint::None, accessor: ip_version },
        FieldDef { name: "Protocol", ty: FieldType::UInt, order: OrderHint::None, accessor: ip_protocol },
        FieldDef { name: "srcIPv6hi", ty: FieldType::UInt, order: OrderHint::None, accessor: v6_src_hi },
        FieldDef { name: "srcIPv6lo", ty: FieldType::UInt, order: OrderHint::None, accessor: v6_src_lo },
        FieldDef { name: "destIPv6hi", ty: FieldType::UInt, order: OrderHint::None, accessor: v6_dst_hi },
        FieldDef { name: "destIPv6lo", ty: FieldType::UInt, order: OrderHint::None, accessor: v6_dst_lo },
        FieldDef { name: "hopLimit", ty: FieldType::UInt, order: OrderHint::None, accessor: v6_hop_limit },
        FieldDef { name: "flowLabel", ty: FieldType::UInt, order: OrderHint::None, accessor: v6_flow_label },
        FieldDef { name: "trafficClass", ty: FieldType::UInt, order: OrderHint::None, accessor: v6_traffic_class },
        FieldDef { name: "payloadLen", ty: FieldType::UInt, order: OrderHint::None, accessor: v6_payload_len },
    ]
};

/// Netflow dump interval assumed by the `first` banded-increasing hint,
/// milliseconds (the paper: "all Netflow records are dumped every 30
/// seconds... the start attribute is banded-increasing(30 sec.)").
pub const NETFLOW_DUMP_INTERVAL_MS: u64 = 30_000;

static NETFLOW_GROUP: [&str; 5] = ["srcIP", "destIP", "srcPort", "destPort", "protocol"];

static NETFLOW_FIELDS: [FieldDef; 14] = [
    FieldDef { name: "time", ty: FieldType::UInt, order: OrderHint::Increasing, accessor: time },
    FieldDef { name: "timeNS", ty: FieldType::UInt, order: OrderHint::Increasing, accessor: time_ns },
    FieldDef { name: "srcIP", ty: FieldType::Ip, order: OrderHint::None, accessor: nf_src },
    FieldDef { name: "destIP", ty: FieldType::Ip, order: OrderHint::None, accessor: nf_dst },
    FieldDef { name: "srcPort", ty: FieldType::UInt, order: OrderHint::None, accessor: nf_src_port },
    FieldDef { name: "destPort", ty: FieldType::UInt, order: OrderHint::None, accessor: nf_dst_port },
    FieldDef { name: "protocol", ty: FieldType::UInt, order: OrderHint::None, accessor: nf_proto },
    FieldDef { name: "pkts", ty: FieldType::UInt, order: OrderHint::None, accessor: nf_pkts },
    FieldDef { name: "octets", ty: FieldType::UInt, order: OrderHint::None, accessor: nf_octets },
    FieldDef {
        name: "first",
        ty: FieldType::UInt,
        order: OrderHint::BandedIncreasing(NETFLOW_DUMP_INTERVAL_MS),
        accessor: nf_first,
    },
    FieldDef { name: "last", ty: FieldType::UInt, order: OrderHint::Increasing, accessor: nf_last },
    FieldDef { name: "tcpFlags", ty: FieldType::UInt, order: OrderHint::None, accessor: nf_tcp_flags },
    FieldDef { name: "srcAS", ty: FieldType::UInt, order: OrderHint::None, accessor: nf_src_as },
    FieldDef { name: "destAS", ty: FieldType::UInt, order: OrderHint::None, accessor: nf_dst_as },
];

static BGP_FIELDS: [FieldDef; 10] = [
    FieldDef { name: "time", ty: FieldType::UInt, order: OrderHint::Increasing, accessor: time },
    FieldDef { name: "timeNS", ty: FieldType::UInt, order: OrderHint::Increasing, accessor: time_ns },
    FieldDef { name: "msgType", ty: FieldType::UInt, order: OrderHint::None, accessor: bgp_type },
    FieldDef { name: "peer", ty: FieldType::Ip, order: OrderHint::None, accessor: bgp_peer },
    FieldDef { name: "peerAS", ty: FieldType::UInt, order: OrderHint::None, accessor: bgp_peer_as },
    FieldDef { name: "prefix", ty: FieldType::Ip, order: OrderHint::None, accessor: bgp_prefix },
    FieldDef { name: "prefixLen", ty: FieldType::UInt, order: OrderHint::None, accessor: bgp_prefix_len },
    FieldDef { name: "originAS", ty: FieldType::UInt, order: OrderHint::None, accessor: bgp_origin_as },
    FieldDef { name: "pathLen", ty: FieldType::UInt, order: OrderHint::None, accessor: bgp_path_len },
    FieldDef {
        name: "seq",
        ty: FieldType::UInt,
        order: OrderHint::IncreasingInGroup(&["peer"]),
        accessor: bgp_seq,
    },
];

/// The built-in protocol registry.
pub static PROTOCOLS: [ProtocolDef; 8] = [
    ProtocolDef { name: "pkt", matches: any_packet, fields: &PKT_FIELDS },
    ProtocolDef { name: "ip", matches: is_ip, fields: &IP_FIELDS },
    ProtocolDef { name: "ipv6", matches: is_ipv6, fields: &IPV6_FIELDS },
    ProtocolDef { name: "tcp", matches: is_tcp, fields: &TCP_FIELDS },
    ProtocolDef { name: "udp", matches: is_udp, fields: &UDP_FIELDS },
    ProtocolDef { name: "icmp", matches: is_icmp, fields: &ICMP_FIELDS },
    ProtocolDef { name: "netflow", matches: is_netflow, fields: &NETFLOW_FIELDS },
    ProtocolDef { name: "bgp", matches: is_bgp, fields: &BGP_FIELDS },
];

/// Look up a built-in protocol by name.
pub fn protocol(name: &str) -> Option<&'static ProtocolDef> {
    PROTOCOLS.iter().find(|p| p.name == name)
}

/// The field names of the Netflow five-tuple group within which `first`
/// increases (paper §2.1, ordering property 3).
pub fn netflow_group_fields() -> &'static [&'static str] {
    &NETFLOW_GROUP
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FrameBuilder;
    use crate::capture::{CapPacket, LinkType};

    fn tcp_view() -> PacketView {
        let frame = FrameBuilder::tcp(0x0a000001, 0x0a000002, 4321, 80)
            .payload(b"HTTP/1.1 200 OK")
            .build_ethernet();
        PacketView::parse(CapPacket::full(3_000_000_000, 2, LinkType::Ethernet, frame))
    }

    #[test]
    fn registry_lookup() {
        assert!(protocol("tcp").is_some());
        assert!(protocol("netflow").is_some());
        assert!(protocol("nosuch").is_none());
    }

    #[test]
    fn tcp_fields_extract() {
        let v = tcp_view();
        let p = protocol("tcp").unwrap();
        assert!((p.matches)(&v));
        let get = |n: &str| (p.field(n).unwrap().accessor)(&v);
        assert_eq!(get("destPort"), Some(FieldValue::UInt(80)));
        assert_eq!(get("srcPort"), Some(FieldValue::UInt(4321)));
        assert_eq!(get("time"), Some(FieldValue::UInt(3)));
        assert_eq!(get("iface"), Some(FieldValue::UInt(2)));
        assert_eq!(get("IPVersion"), Some(FieldValue::UInt(4)));
        assert_eq!(get("Protocol"), Some(FieldValue::UInt(6)));
        assert_eq!(get("srcIP"), Some(FieldValue::Ip(0x0a000001)));
        match get("payload") {
            Some(FieldValue::Str(b)) => assert_eq!(b.as_ref(), b"HTTP/1.1 200 OK"),
            other => panic!("unexpected payload {other:?}"),
        }
        assert_eq!(get("payloadLen"), Some(FieldValue::UInt(15)));
    }

    #[test]
    fn udp_packet_does_not_match_tcp() {
        let frame = FrameBuilder::udp(1, 2, 53, 53).build_ethernet();
        let v = PacketView::parse(CapPacket::full(0, 0, LinkType::Ethernet, frame));
        assert!(!(protocol("tcp").unwrap().matches)(&v));
        assert!((protocol("udp").unwrap().matches)(&v));
        assert!((protocol("ip").unwrap().matches)(&v));
        assert!((protocol("pkt").unwrap().matches)(&v));
        // TCP field accessors yield None on a UDP packet.
        let p = protocol("tcp").unwrap();
        assert_eq!((p.field("destPort").unwrap().accessor)(&v), None);
    }

    #[test]
    fn ordering_hints() {
        let p = protocol("netflow").unwrap();
        assert_eq!(p.field("last").unwrap().order, OrderHint::Increasing);
        assert_eq!(
            p.field("first").unwrap().order,
            OrderHint::BandedIncreasing(NETFLOW_DUMP_INTERVAL_MS)
        );
        let b = protocol("bgp").unwrap();
        assert!(matches!(b.field("seq").unwrap().order, OrderHint::IncreasingInGroup(_)));
    }

    #[test]
    fn ipv6_fields_extract() {
        let mut buf = Vec::new();
        crate::ipv6::Ipv6Header {
            traffic_class: 0xA0,
            flow_label: 0x12345,
            payload_len: 40,
            next_header: 6,
            hop_limit: 61,
            src: 0x2001_0db8_0000_0000_0000_0000_0000_0005,
            dst: 0xfe80_0000_0000_0000_0000_0000_0000_0009,
        }
        .encode(&mut buf);
        let mut frame = Vec::new();
        crate::ether::EtherHeader {
            dst: crate::ether::MacAddr([0; 6]),
            src: crate::ether::MacAddr([1; 6]),
            ethertype: crate::ether::ETHERTYPE_IPV6,
        }
        .encode(&mut frame);
        frame.extend_from_slice(&buf);
        let v = PacketView::parse(CapPacket::full(0, 0, LinkType::Ethernet, frame.into()));
        let p = protocol("ipv6").unwrap();
        assert!((p.matches)(&v));
        let get = |n: &str| (p.field(n).unwrap().accessor)(&v);
        assert_eq!(get("IPVersion"), Some(FieldValue::UInt(6)));
        assert_eq!(get("Protocol"), Some(FieldValue::UInt(6)));
        assert_eq!(get("srcIPv6hi"), Some(FieldValue::UInt(0x2001_0db8_0000_0000)));
        assert_eq!(get("srcIPv6lo"), Some(FieldValue::UInt(5)));
        assert_eq!(get("destIPv6lo"), Some(FieldValue::UInt(9)));
        assert_eq!(get("hopLimit"), Some(FieldValue::UInt(61)));
        assert_eq!(get("flowLabel"), Some(FieldValue::UInt(0x12345)));
        // An IPv4 packet does not match the ipv6 protocol.
        let v4 = PacketView::parse(CapPacket::full(
            0,
            0,
            LinkType::Ethernet,
            crate::builder::FrameBuilder::tcp(1, 2, 3, 4).build_ethernet(),
        ));
        assert!(!(p.matches)(&v4));
    }

    #[test]
    fn field_index_matches_order() {
        let p = protocol("tcp").unwrap();
        for (i, f) in p.fields.iter().enumerate() {
            assert_eq!(p.field_index(f.name), Some(i));
        }
    }
}
