//! Simplified BGP UPDATE messages for router-configuration monitoring
//! queries (the paper lists "router configuration analysis (e.g. BGP
//! monitoring)" among Gigascope's applications).
//!
//! We encode one announced-or-withdrawn prefix per message together with the
//! peer, origin AS, and AS-path length — the attributes BGP monitoring
//! queries actually group and filter on. Full RFC 4271 attribute encoding is
//! out of scope for a monitoring substrate.

use crate::error::PacketError;
use crate::{be16, be32};

/// Wire length of a simplified BGP update record.
pub const MESSAGE_LEN: usize = 20;

/// Message type: prefix announcement.
pub const TYPE_ANNOUNCE: u8 = 1;
/// Message type: prefix withdrawal.
pub const TYPE_WITHDRAW: u8 = 2;

/// A simplified BGP UPDATE: one prefix event from one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BgpUpdate {
    /// Announce or withdraw (see [`TYPE_ANNOUNCE`], [`TYPE_WITHDRAW`]).
    pub msg_type: u8,
    /// Peer router address, host order.
    pub peer: u32,
    /// Peer autonomous system number.
    pub peer_as: u16,
    /// Announced/withdrawn prefix, host order.
    pub prefix: u32,
    /// Prefix length in bits (0–32).
    pub prefix_len: u8,
    /// Origin AS of the route (0 for withdrawals).
    pub origin_as: u16,
    /// Length of the AS path (0 for withdrawals).
    pub path_len: u8,
    /// Sequence number assigned by the collector, monotone per peer session.
    pub seq: u32,
}

impl BgpUpdate {
    /// Decode an update from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<BgpUpdate, PacketError> {
        if buf.len() < MESSAGE_LEN {
            return Err(PacketError::Truncated {
                layer: "bgp",
                needed: MESSAGE_LEN,
                have: buf.len(),
            });
        }
        let msg_type = buf[0];
        if msg_type != TYPE_ANNOUNCE && msg_type != TYPE_WITHDRAW {
            return Err(PacketError::BadVersion { layer: "bgp", found: msg_type });
        }
        let prefix_len = buf[1];
        if prefix_len > 32 {
            return Err(PacketError::BadLength { layer: "bgp", what: "prefix_len > 32" });
        }
        Ok(BgpUpdate {
            msg_type,
            prefix_len,
            peer: be32(buf, 2).expect("bounds checked"),
            peer_as: be16(buf, 6).expect("bounds checked"),
            prefix: be32(buf, 8).expect("bounds checked"),
            origin_as: be16(buf, 12).expect("bounds checked"),
            path_len: buf[14],
            seq: be32(buf, 16).expect("bounds checked"),
        })
    }

    /// Encode this update into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) -> Result<(), PacketError> {
        if self.prefix_len > 32 {
            return Err(PacketError::FieldOverflow { layer: "bgp", field: "prefix_len" });
        }
        out.push(self.msg_type);
        out.push(self.prefix_len);
        out.extend_from_slice(&self.peer.to_be_bytes());
        out.extend_from_slice(&self.peer_as.to_be_bytes());
        out.extend_from_slice(&self.prefix.to_be_bytes());
        out.extend_from_slice(&self.origin_as.to_be_bytes());
        out.push(self.path_len);
        out.push(0); // pad
        out.extend_from_slice(&self.seq.to_be_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let u = BgpUpdate {
            msg_type: TYPE_ANNOUNCE,
            peer: 0x0101_0101,
            peer_as: 7018,
            prefix: 0x0C22_0000,
            prefix_len: 16,
            origin_as: 3356,
            path_len: 4,
            seq: 77,
        };
        let mut buf = Vec::new();
        u.encode(&mut buf).unwrap();
        assert_eq!(buf.len(), MESSAGE_LEN);
        assert_eq!(BgpUpdate::decode(&buf).unwrap(), u);
    }

    #[test]
    fn rejects_bad_type_and_prefix_len() {
        let mut buf = vec![0u8; MESSAGE_LEN];
        buf[0] = 9;
        assert!(matches!(BgpUpdate::decode(&buf), Err(PacketError::BadVersion { .. })));
        buf[0] = TYPE_WITHDRAW;
        buf[1] = 33;
        assert!(matches!(BgpUpdate::decode(&buf), Err(PacketError::BadLength { .. })));
    }
}
