//! K-way timestamp merge of packet sources.
//!
//! Used to build multi-interface scenarios (e.g. the paper's two simplex
//! optical links, or the dual-GigE customer deployment): each interface has
//! its own generator, and the capture simulator consumes a single arrival
//! stream ordered by time.

use gs_packet::CapPacket;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

struct Head {
    ts_ns: u64,
    idx: usize,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.ts_ns == other.ts_ns && self.idx == other.idx
    }
}
impl Eq for Head {}
impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Head {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ts_ns, self.idx).cmp(&(other.ts_ns, other.idx))
    }
}

/// Iterator merging several timestamp-ordered packet sources into one
/// timestamp-ordered stream. Ties break by source index, so the merge is
/// deterministic.
pub struct MergedSources<I> {
    sources: Vec<I>,
    pending: Vec<Option<CapPacket>>,
    heap: BinaryHeap<Reverse<Head>>,
}

/// Merge `sources` (each individually ordered by `ts_ns`) into one ordered
/// stream.
pub fn merge_sources<I>(sources: Vec<I>) -> MergedSources<I>
where
    I: Iterator<Item = CapPacket>,
{
    let mut m = MergedSources {
        pending: sources.iter().map(|_| None).collect(),
        sources,
        heap: BinaryHeap::new(),
    };
    for idx in 0..m.sources.len() {
        m.refill(idx);
    }
    m
}

impl<I: Iterator<Item = CapPacket>> MergedSources<I> {
    fn refill(&mut self, idx: usize) {
        if let Some(pkt) = self.sources[idx].next() {
            self.heap.push(Reverse(Head { ts_ns: pkt.ts_ns, idx }));
            self.pending[idx] = Some(pkt);
        }
    }
}

impl<I: Iterator<Item = CapPacket>> Iterator for MergedSources<I> {
    type Item = CapPacket;

    fn next(&mut self) -> Option<CapPacket> {
        let Reverse(head) = self.heap.pop()?;
        let pkt = self.pending[head.idx].take().expect("heap entry has a pending packet");
        self.refill(head.idx);
        Some(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use gs_packet::capture::LinkType;

    fn pkt(ts: u64, iface: u16) -> CapPacket {
        CapPacket::full(ts, iface, LinkType::RawIp, Bytes::new())
    }

    #[test]
    fn merges_in_order() {
        let a = vec![pkt(1, 0), pkt(4, 0), pkt(9, 0)];
        let b = vec![pkt(2, 1), pkt(3, 1), pkt(10, 1)];
        let merged: Vec<_> = merge_sources(vec![a.into_iter(), b.into_iter()]).collect();
        let ts: Vec<u64> = merged.iter().map(|p| p.ts_ns).collect();
        assert_eq!(ts, vec![1, 2, 3, 4, 9, 10]);
    }

    #[test]
    fn ties_break_by_source_index() {
        let a = vec![pkt(5, 0)];
        let b = vec![pkt(5, 1)];
        let merged: Vec<_> = merge_sources(vec![a.into_iter(), b.into_iter()]).collect();
        assert_eq!(merged[0].iface, 0);
        assert_eq!(merged[1].iface, 1);
    }

    #[test]
    fn empty_and_uneven_sources() {
        let a: Vec<CapPacket> = vec![];
        let b = vec![pkt(1, 1), pkt(2, 1)];
        let merged: Vec<_> = merge_sources(vec![a.into_iter(), b.into_iter()]).collect();
        assert_eq!(merged.len(), 2);
        let none: Vec<CapPacket> = merge_sources(Vec::<std::vec::IntoIter<CapPacket>>::new()).collect();
        assert!(none.is_empty());
    }
}
