//! Flow population model.
//!
//! A [`FlowPopulation`] is a fixed set of five-tuples with Zipf-skewed
//! popularity. Drawing packets from it produces the temporal locality that
//! the paper's LFTA direct-mapped aggregation hash exploits ("Because of
//! temporal locality, aggregation even with a small hash table is effective
//! in early data reduction").

use crate::zipf::Zipf;
use rand::Rng;

/// A transport five-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FiveTuple {
    /// Source address, host order.
    pub src_ip: u32,
    /// Destination address, host order.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP protocol number.
    pub protocol: u8,
}

/// A population of flows with skewed popularity.
#[derive(Debug, Clone)]
pub struct FlowPopulation {
    flows: Vec<FiveTuple>,
    zipf: Zipf,
}

impl FlowPopulation {
    /// Build `n` distinct flows towards `dst_port`, drawn deterministically
    /// from `rng`, with Zipf(`skew`) popularity.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, n: usize, dst_port: u16, skew: f64) -> FlowPopulation {
        assert!(n > 0, "flow population must be non-empty");
        let mut flows = Vec::with_capacity(n);
        for i in 0..n {
            flows.push(FiveTuple {
                // Spread sources over a /8 and destinations over a /16 so
                // LPM queries over the population hit different prefixes.
                src_ip: 0x0a00_0000 | rng.gen_range(0..0x00ff_ffff),
                dst_ip: 0xc0a8_0000 | (i as u32 & 0xffff),
                src_port: rng.gen_range(1024..u16::MAX),
                dst_port,
                protocol: gs_packet::ip::PROTO_TCP,
            });
        }
        FlowPopulation { flows, zipf: Zipf::new(n, skew) }
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the population is empty (never true).
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Draw one flow according to the popularity distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> FiveTuple {
        self.flows[self.zipf.sample(rng)]
    }

    /// The flow at `rank` (0 = most popular).
    pub fn flow(&self, rank: usize) -> FiveTuple {
        self.flows[rank]
    }

    /// All flows, most popular first.
    pub fn flows(&self) -> &[FiveTuple] {
        &self.flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn sampling_respects_skew() {
        let mut rng = SmallRng::seed_from_u64(5);
        let pop = FlowPopulation::new(&mut rng, 500, 80, 1.0);
        let mut counts: HashMap<FiveTuple, usize> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(pop.sample(&mut rng)).or_default() += 1;
        }
        let top = counts.get(&pop.flow(0)).copied().unwrap_or(0);
        let mid = counts.get(&pop.flow(250)).copied().unwrap_or(0);
        assert!(top > mid * 20, "top {top} mid {mid}");
    }

    #[test]
    fn flows_have_requested_port() {
        let mut rng = SmallRng::seed_from_u64(6);
        let pop = FlowPopulation::new(&mut rng, 10, 443, 0.0);
        assert!(pop.flows().iter().all(|f| f.dst_port == 443));
        assert_eq!(pop.len(), 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut rng = SmallRng::seed_from_u64(99);
            FlowPopulation::new(&mut rng, 50, 80, 1.0).flows().to_vec()
        };
        assert_eq!(mk(), mk());
    }
}
