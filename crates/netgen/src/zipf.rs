//! Zipf-distributed sampling over a finite population.
//!
//! Flow popularity on backbone links is heavily skewed; a Zipf law is the
//! standard synthetic model. This sampler precomputes the CDF once and
//! draws by binary search, so sampling is O(log n) with no rejection.

use rand::Rng;

/// A Zipf(`s`) sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s` (`s = 0` is
    /// uniform; typical traffic skew is `s ≈ 1`).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf population must be non-empty");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the population is empty (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n`; rank 0 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf > u.
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_when_s_one() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut top10 = 0usize;
        let n = 50_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                top10 += 1;
            }
        }
        // With s=1 and n=1000, H(10)/H(1000) ≈ 2.93/7.49 ≈ 0.39.
        let frac = top10 as f64 / n as f64;
        assert!((0.3..0.5).contains(&frac), "top-10 fraction {frac}");
    }

    #[test]
    fn sample_always_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_population_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
