//! Rate-controlled packet mixes: the workload driver for the paper's §4
//! experiment and the other benches.
//!
//! A [`PacketMix`] interleaves two sub-streams by timestamp:
//!
//! - *port-80 traffic* at a configured rate, a configured fraction of which
//!   is genuine HTTP (the rest tunneled bytes and anchored near-misses);
//! - *background traffic* to other ports, optionally bursty.
//!
//! The mix yields [`CapPacket`]s in nondecreasing timestamp order and keeps
//! running [`GroundTruth`] counters so harnesses can check query outputs
//! against what was actually generated.

use crate::burst::{OnOffArrivals, PoissonArrivals};
use crate::flows::FlowPopulation;
use crate::http::{payload, PayloadClass};
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Packet wire-size distribution: `(bytes, weight)` pairs.
///
/// The default is the classic trimodal Internet mix.
#[derive(Debug, Clone)]
pub struct SizeDist {
    sizes: Vec<(usize, f64)>,
    mean: f64,
}

impl SizeDist {
    /// Build a size distribution from `(bytes, weight)` pairs.
    ///
    /// # Panics
    /// Panics if empty, or if any size is below 64 bytes (minimum frame) or
    /// weight non-positive.
    pub fn new(pairs: &[(usize, f64)]) -> SizeDist {
        assert!(!pairs.is_empty(), "size distribution must be non-empty");
        let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0);
        for &(s, w) in pairs {
            assert!(s >= 64, "frame sizes below 64 bytes are not representable");
            assert!(w > 0.0);
        }
        let mean = pairs.iter().map(|&(s, w)| s as f64 * w).sum::<f64>() / total;
        let sizes = pairs.iter().map(|&(s, w)| (s, w / total)).collect();
        SizeDist { sizes, mean }
    }

    /// The classic trimodal Internet mix (64 / 576 / 1500 bytes).
    pub fn internet() -> SizeDist {
        SizeDist::new(&[(64, 0.5), (576, 0.25), (1500, 0.25)])
    }

    /// Mean wire size in bytes.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draw a wire size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut u: f64 = rng.gen();
        for &(s, p) in &self.sizes {
            if u < p {
                return s;
            }
            u -= p;
        }
        self.sizes.last().expect("non-empty").0
    }
}

/// Configuration for [`PacketMix`].
#[derive(Debug, Clone)]
pub struct MixConfig {
    /// RNG seed; equal seeds give byte-identical traffic.
    pub seed: u64,
    /// Interface id stamped on generated packets.
    pub iface: u16,
    /// Trace duration in milliseconds of virtual time.
    pub duration_ms: u64,
    /// Offered port-80 rate, megabits per second (0 disables the stream).
    pub http_rate_mbps: f64,
    /// Fraction of port-80 payloads that genuinely match the HTTP regex.
    pub http_match_fraction: f64,
    /// Fraction of non-matching port-80 payloads that are anchored
    /// near-misses rather than plain tunnel bytes.
    pub near_miss_fraction: f64,
    /// Offered background (non-port-80) rate, megabits per second.
    pub background_rate_mbps: f64,
    /// Whether background arrivals are heavy-tailed on/off (vs Poisson).
    pub bursty_background: bool,
    /// Wire-size distribution.
    pub sizes: SizeDist,
    /// Number of distinct flows per sub-stream.
    pub flows: usize,
    /// Zipf skew of flow popularity.
    pub flow_skew: f64,
}

impl Default for MixConfig {
    fn default() -> MixConfig {
        MixConfig {
            seed: 0,
            iface: 0,
            duration_ms: 1_000,
            http_rate_mbps: 60.0,
            http_match_fraction: 0.7,
            near_miss_fraction: 0.1,
            background_rate_mbps: 100.0,
            bursty_background: false,
            sizes: SizeDist::internet(),
            flows: 1_000,
            flow_skew: 1.0,
        }
    }
}

/// Ground-truth counters accumulated while a mix is drained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroundTruth {
    /// Total packets generated.
    pub total_pkts: u64,
    /// Total wire bytes generated.
    pub total_bytes: u64,
    /// Packets with TCP destination port 80.
    pub port80_pkts: u64,
    /// Port-80 packets whose payload matches the HTTP regex.
    pub http_match_pkts: u64,
}

enum Arrivals {
    Poisson(PoissonArrivals<SmallRng>),
    OnOff(OnOffArrivals<SmallRng>),
    Never,
}

impl Arrivals {
    fn next_ts(&mut self) -> u64 {
        match self {
            Arrivals::Poisson(p) => p.next().expect("infinite process"),
            Arrivals::OnOff(p) => p.next().expect("infinite process"),
            Arrivals::Never => u64::MAX,
        }
    }
}

/// Iterator over a generated two-class traffic mix.
///
/// ```
/// use gs_netgen::{MixConfig, PacketMix};
///
/// let mut mix = PacketMix::new(MixConfig { duration_ms: 20, ..MixConfig::default() });
/// let pkts: Vec<_> = (&mut mix).collect();
/// assert!(!pkts.is_empty());
/// assert!(pkts.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns), "time-ordered");
/// assert_eq!(mix.truth().total_pkts as usize, pkts.len());
/// ```
pub struct PacketMix {
    cfg: MixConfig,
    rng: SmallRng,
    http_flows: Option<FlowPopulation>,
    bg_flows: Option<FlowPopulation>,
    next_http_ts: u64,
    next_bg_ts: u64,
    http_arrivals: Arrivals,
    bg_arrivals: Arrivals,
    end_ns: u64,
    truth: GroundTruth,
    /// Wrapping IP identification counter (real stacks number datagrams).
    ip_id: u16,
}

impl PacketMix {
    /// Build a mix from `cfg`.
    pub fn new(cfg: MixConfig) -> PacketMix {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mean = cfg.sizes.mean();
        let pkt_rate = |mbps: f64| mbps * 1e6 / 8.0 / mean;

        let (http_flows, mut http_arrivals) = if cfg.http_rate_mbps > 0.0 {
            let flows = FlowPopulation::new(&mut rng, cfg.flows, 80, cfg.flow_skew);
            let arr = Arrivals::Poisson(PoissonArrivals::new(
                SmallRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15),
                0,
                pkt_rate(cfg.http_rate_mbps),
            ));
            (Some(flows), arr)
        } else {
            (None, Arrivals::Never)
        };

        let (bg_flows, mut bg_arrivals) = if cfg.background_rate_mbps > 0.0 {
            let flows = FlowPopulation::new(&mut rng, cfg.flows, 8080, cfg.flow_skew);
            let rate = pkt_rate(cfg.background_rate_mbps);
            let rng2 = SmallRng::seed_from_u64(cfg.seed ^ 0xdead_beef_cafe_f00d);
            let arr = if cfg.bursty_background {
                // Peak at 4x the mean rate with a 25% duty cycle keeps the
                // long-run rate at the target while stressing buffers.
                Arrivals::OnOff(OnOffArrivals::new(rng2, 0, rate * 4.0, 10.0, 30.0, 1.5))
            } else {
                Arrivals::Poisson(PoissonArrivals::new(rng2, 0, rate))
            };
            (Some(flows), arr)
        } else {
            (None, Arrivals::Never)
        };

        let next_http_ts = http_arrivals.next_ts();
        let next_bg_ts = bg_arrivals.next_ts();
        PacketMix {
            end_ns: cfg.duration_ms * 1_000_000,
            cfg,
            rng,
            http_flows,
            bg_flows,
            next_http_ts,
            next_bg_ts,
            http_arrivals,
            bg_arrivals,
            truth: GroundTruth::default(),
            ip_id: 0,
        }
    }

    /// Ground truth accumulated so far (complete once the iterator is
    /// exhausted).
    pub fn truth(&self) -> GroundTruth {
        self.truth
    }

    fn build_http(&mut self, ts: u64) -> CapPacket {
        let flow = self
            .http_flows
            .as_ref()
            .expect("http stream enabled")
            .sample(&mut self.rng);
        let wire = self.cfg.sizes.sample(&mut self.rng);
        // Headroom: 14 ether + 20 ip + 20 tcp.
        let pay_len = wire.saturating_sub(54).max(8);
        let u: f64 = self.rng.gen();
        let class = if u < self.cfg.http_match_fraction {
            if self.rng.gen_bool(0.5) {
                PayloadClass::HttpRequest
            } else {
                PayloadClass::HttpResponse
            }
        } else if self.rng.gen::<f64>()
            < self.cfg.near_miss_fraction.clamp(0.0, 1.0)
        {
            PayloadClass::NearMiss
        } else {
            PayloadClass::Tunnel
        };
        let pay = payload(&mut self.rng, class, pay_len);
        self.ip_id = self.ip_id.wrapping_add(1);
        let frame = FrameBuilder::tcp(flow.src_ip, flow.dst_ip, flow.src_port, 80)
            .payload(&pay)
            .ip_id(self.ip_id)
            .build_ethernet();
        self.truth.port80_pkts += 1;
        if crate::http::matches_http(&pay) {
            self.truth.http_match_pkts += 1;
        }
        CapPacket::full(ts, self.cfg.iface, LinkType::Ethernet, frame)
    }

    fn build_bg(&mut self, ts: u64) -> CapPacket {
        let flow = self
            .bg_flows
            .as_ref()
            .expect("background stream enabled")
            .sample(&mut self.rng);
        let wire = self.cfg.sizes.sample(&mut self.rng);
        let pay_len = wire.saturating_sub(54);
        let mut pay = vec![0u8; pay_len];
        self.rng.fill(pay.as_mut_slice());
        // Mix of TCP and UDP on non-80 ports.
        self.ip_id = self.ip_id.wrapping_add(1);
        let frame = if self.rng.gen_bool(0.8) {
            FrameBuilder::tcp(flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port)
                .payload(&pay)
                .ip_id(self.ip_id)
                .build_ethernet()
        } else {
            FrameBuilder::udp(flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port)
                .payload(&pay)
                .ip_id(self.ip_id)
                .build_ethernet()
        };
        CapPacket::full(ts, self.cfg.iface, LinkType::Ethernet, frame)
    }
}

impl Iterator for PacketMix {
    type Item = CapPacket;

    fn next(&mut self) -> Option<CapPacket> {
        let (is_http, ts) = if self.next_http_ts <= self.next_bg_ts {
            (true, self.next_http_ts)
        } else {
            (false, self.next_bg_ts)
        };
        if ts >= self.end_ns {
            return None;
        }
        let pkt = if is_http {
            self.next_http_ts = self.http_arrivals.next_ts();
            self.build_http(ts)
        } else {
            self.next_bg_ts = self.bg_arrivals.next_ts();
            self.build_bg(ts)
        };
        self.truth.total_pkts += 1;
        self.truth.total_bytes += u64::from(pkt.wire_len);
        Some(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(cfg: MixConfig) -> (Vec<CapPacket>, GroundTruth) {
        let mut mix = PacketMix::new(cfg);
        let pkts: Vec<_> = (&mut mix).collect();
        let truth = mix.truth();
        (pkts, truth)
    }

    #[test]
    fn timestamps_are_monotone_and_bounded() {
        let (pkts, _) = drain(MixConfig { duration_ms: 200, ..MixConfig::default() });
        assert!(!pkts.is_empty());
        assert!(pkts.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert!(pkts.last().unwrap().ts_ns < 200_000_000);
    }

    #[test]
    fn achieved_rate_tracks_config() {
        let cfg = MixConfig {
            duration_ms: 1_000,
            http_rate_mbps: 60.0,
            background_rate_mbps: 140.0,
            ..MixConfig::default()
        };
        let (_, truth) = drain(cfg);
        let mbps = truth.total_bytes as f64 * 8.0 / 1e6; // over 1 s
        assert!((mbps - 200.0).abs() / 200.0 < 0.10, "achieved {mbps} Mbit/s");
    }

    #[test]
    fn match_fraction_tracks_config() {
        let cfg = MixConfig {
            duration_ms: 2_000,
            http_rate_mbps: 50.0,
            background_rate_mbps: 0.0,
            http_match_fraction: 0.7,
            ..MixConfig::default()
        };
        let (_, truth) = drain(cfg);
        assert!(truth.port80_pkts > 1_000);
        let frac = truth.http_match_pkts as f64 / truth.port80_pkts as f64;
        assert!((frac - 0.7).abs() < 0.05, "match fraction {frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = MixConfig { duration_ms: 50, seed: 77, ..MixConfig::default() };
        let (a, ta) = drain(cfg.clone());
        let (b, tb) = drain(cfg);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn background_only_has_no_port80() {
        let cfg = MixConfig {
            duration_ms: 100,
            http_rate_mbps: 0.0,
            background_rate_mbps: 80.0,
            ..MixConfig::default()
        };
        let (pkts, truth) = drain(cfg);
        assert!(!pkts.is_empty());
        assert_eq!(truth.port80_pkts, 0);
        assert_eq!(truth.http_match_pkts, 0);
    }

    #[test]
    fn bursty_background_still_monotone() {
        let cfg = MixConfig {
            duration_ms: 300,
            bursty_background: true,
            background_rate_mbps: 200.0,
            ..MixConfig::default()
        };
        let (pkts, _) = drain(cfg);
        assert!(pkts.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn size_dist_mean() {
        let d = SizeDist::internet();
        assert!((d.mean() - (0.5 * 64.0 + 0.25 * 576.0 + 0.25 * 1500.0)).abs() < 1e-9);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        for _ in 0..100 {
            let s = d.sample(&mut rng);
            assert!(s == 64 || s == 576 || s == 1500);
        }
    }
}
