//! Synthetic network traffic and workload generation.
//!
//! The paper's experiments run against live optical links and AT&T traffic
//! feeds we do not have. This crate builds the closest synthetic
//! equivalents that exercise the same code paths (see DESIGN.md §3):
//!
//! - [`http`]: port-80 traffic where a configurable fraction of payloads
//!   actually match `^[^\n]*HTTP/1.*` — the §4 experiment's workload;
//! - [`burst`]: heavy-tailed on/off arrival processes ("network traffic is
//!   notoriously bursty in this manner");
//! - [`flows`]: a flow population with Zipf-skewed popularity driving the
//!   temporal locality that makes the LFTA direct-mapped hash effective;
//! - [`netflowgen`]: Netflow export streams with the paper's §2.1 ordering
//!   semantics (end time monotone, start time banded-increasing(30 s));
//! - [`bgpgen`]: BGP update streams with per-peer monotone sequence numbers;
//! - [`prefixes`]: synthetic AS prefix tables standing in for the
//!   `peerid.tbl` routing-table file used by `getlpmid`;
//! - [`mix`]: rate-controlled packet mixes that merge the above into a
//!   single time-ordered arrival stream for the capture-path simulator.
//!
//! All generators are deterministic given a seed and yield packets in
//! nondecreasing timestamp order.

#![warn(missing_docs)]

pub mod bgpgen;
pub mod burst;
pub mod flows;
pub mod http;
pub mod merge;
pub mod mix;
pub mod netflowgen;
pub mod prefixes;
pub mod zipf;

pub use merge::merge_sources;
pub use mix::{GroundTruth, MixConfig, PacketMix, SizeDist};

/// A source of timestamped packets in nondecreasing `ts_ns` order.
///
/// This is just a named iterator bound: generators implement `Iterator`
/// and the capture simulator consumes any `PacketSource`.
pub trait PacketSource: Iterator<Item = gs_packet::CapPacket> {}
impl<T: Iterator<Item = gs_packet::CapPacket>> PacketSource for T {}
