//! Bursty arrival processes.
//!
//! The paper motivates heartbeats with "network traffic is notoriously
//! bursty". We model arrivals two ways:
//!
//! - [`PoissonArrivals`]: memoryless inter-arrival gaps at a target rate —
//!   the smooth baseline;
//! - [`OnOffArrivals`]: an on/off source with bounded-Pareto sojourn times.
//!   During ON periods packets arrive at the peak rate; during OFF periods
//!   nothing arrives. Heavy-tailed sojourns produce the long silences and
//!   intense bursts that stress rings and merge buffers.

use rand::Rng;

/// Exponential inter-arrival gaps at `rate_per_sec`, yielding timestamps
/// in nanoseconds.
#[derive(Debug, Clone)]
pub struct PoissonArrivals<R> {
    rng: R,
    now_ns: u64,
    mean_gap_ns: f64,
}

impl<R: Rng> PoissonArrivals<R> {
    /// Create a process starting at `start_ns` with the given average rate.
    ///
    /// # Panics
    /// Panics if `rate_per_sec` is not strictly positive.
    pub fn new(rng: R, start_ns: u64, rate_per_sec: f64) -> Self {
        assert!(rate_per_sec > 0.0, "arrival rate must be positive");
        PoissonArrivals { rng, now_ns: start_ns, mean_gap_ns: 1e9 / rate_per_sec }
    }
}

impl<R: Rng> Iterator for PoissonArrivals<R> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let u: f64 = self.rng.gen_range(1e-12..1.0f64);
        let gap = (-u.ln() * self.mean_gap_ns).max(1.0);
        self.now_ns = self.now_ns.saturating_add(gap as u64);
        Some(self.now_ns)
    }
}

/// On/off arrival process: bursts at `peak_rate_per_sec` during ON periods
/// whose durations are bounded-Pareto, separated by OFF periods likewise.
#[derive(Debug, Clone)]
pub struct OnOffArrivals<R> {
    rng: R,
    now_ns: u64,
    on_until_ns: u64,
    peak_gap_ns: f64,
    alpha: f64,
    mean_on_ns: f64,
    mean_off_ns: f64,
}

impl<R: Rng> OnOffArrivals<R> {
    /// Create an on/off process.
    ///
    /// `peak_rate_per_sec` applies during ON periods; `mean_on_ms` and
    /// `mean_off_ms` set the sojourn scales; `alpha` (1 < α ≤ 2 for heavy
    /// tails) shapes the Pareto sojourns.
    ///
    /// # Panics
    /// Panics if any rate/duration is non-positive.
    pub fn new(
        rng: R,
        start_ns: u64,
        peak_rate_per_sec: f64,
        mean_on_ms: f64,
        mean_off_ms: f64,
        alpha: f64,
    ) -> Self {
        assert!(peak_rate_per_sec > 0.0 && mean_on_ms > 0.0 && mean_off_ms > 0.0);
        assert!(alpha > 0.0);
        OnOffArrivals {
            rng,
            now_ns: start_ns,
            on_until_ns: start_ns,
            peak_gap_ns: 1e9 / peak_rate_per_sec,
            alpha,
            mean_on_ns: mean_on_ms * 1e6,
            mean_off_ns: mean_off_ms * 1e6,
        }
    }

    fn pareto_sojourn(&mut self, mean_ns: f64) -> u64 {
        // Bounded Pareto with lo chosen so the mean ≈ mean_ns for the
        // configured alpha, capped at 100× the mean to bound single draws.
        let lo = mean_ns * (self.alpha - 1.0).max(0.1) / self.alpha;
        let hi = mean_ns * 100.0;
        let u: f64 = self.rng.gen_range(1e-12..1.0f64);
        let la = lo.powf(self.alpha);
        let ha = hi.powf(self.alpha);
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha);
        x.max(1.0) as u64
    }
}

impl<R: Rng> Iterator for OnOffArrivals<R> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.now_ns >= self.on_until_ns {
            // Take an OFF sojourn, then start a new ON period.
            let off = self.pareto_sojourn(self.mean_off_ns);
            let on = self.pareto_sojourn(self.mean_on_ns);
            self.now_ns = self.now_ns.saturating_add(off);
            self.on_until_ns = self.now_ns.saturating_add(on);
        }
        let u: f64 = self.rng.gen_range(1e-12..1.0f64);
        let gap = (-u.ln() * self.peak_gap_ns).max(1.0);
        self.now_ns = self.now_ns.saturating_add(gap as u64);
        Some(self.now_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_rate_is_close() {
        let rng = SmallRng::seed_from_u64(11);
        let mut p = PoissonArrivals::new(rng, 0, 10_000.0);
        let n = 100_000;
        let last = p.nth(n - 1).unwrap();
        let achieved = n as f64 / (last as f64 / 1e9);
        assert!((achieved - 10_000.0).abs() / 10_000.0 < 0.05, "rate {achieved}");
    }

    #[test]
    fn poisson_is_monotone() {
        let rng = SmallRng::seed_from_u64(3);
        let p = PoissonArrivals::new(rng, 5, 1e6);
        let ts: Vec<u64> = p.take(10_000).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        assert!(ts[0] >= 5);
    }

    #[test]
    fn onoff_is_monotone_and_bursty() {
        let rng = SmallRng::seed_from_u64(42);
        let p = OnOffArrivals::new(rng, 0, 1e6, 10.0, 10.0, 1.5);
        let ts: Vec<u64> = p.take(50_000).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        // Burstiness: the max gap should dwarf the median gap.
        let mut gaps: Vec<u64> = ts.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        let max = *gaps.last().unwrap();
        assert!(max > median * 50, "median {median} max {max}");
    }

    #[test]
    fn onoff_long_run_rate_below_peak() {
        let rng = SmallRng::seed_from_u64(9);
        let p = OnOffArrivals::new(rng, 0, 1e6, 5.0, 15.0, 1.5);
        let ts: Vec<u64> = p.take(100_000).collect();
        let rate = ts.len() as f64 / (*ts.last().unwrap() as f64 / 1e9);
        // Duty cycle ~25% of the 1e6/s peak; allow a broad band since the
        // sojourns are heavy-tailed.
        assert!(rate < 0.9e6, "rate {rate}");
        assert!(rate > 0.02e6, "rate {rate}");
    }
}
