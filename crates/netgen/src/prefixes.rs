//! Synthetic AS prefix tables.
//!
//! The paper's `getlpmid(destIP, 'peerid.tbl')` example loads "a file
//! containing the prefixes of the autonomous systems (AS) of AT&T IP
//! peers (i.e., obtained from a routing table)". We generate an equivalent
//! table: one line per prefix, `a.b.c.d/len id`, with nested prefixes so
//! that longest-prefix-match is actually exercised (a /16 and a more
//! specific /24 inside it mapping to different ids).

use gs_packet::ip::fmt_ipv4;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixEntry {
    /// Network address, host order, host bits zero.
    pub prefix: u32,
    /// Prefix length in bits.
    pub len: u8,
    /// The peer/AS id the prefix maps to.
    pub id: u32,
}

/// Generate `coarse` top-level prefixes (each /8../16) and, inside a third
/// of them, a more-specific child prefix with a *different* id, so LPM and
/// first-match disagree.
pub fn generate_prefixes(seed: u64, coarse: usize) -> Vec<PrefixEntry> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(coarse * 2);
    let mut next_id = 1u32;
    for i in 0..coarse {
        let len = rng.gen_range(8u8..=16);
        // Spread the coarse prefixes across the space deterministically so
        // they do not collide with one another.
        let base = ((i as u32) << 24) | (rng.gen::<u32>() & 0x00ff_ffff);
        let prefix = base & (u32::MAX << (32 - len));
        let id = next_id;
        next_id += 1;
        out.push(PrefixEntry { prefix, len, id });
        if i % 3 == 0 {
            // A more specific child inside this prefix, different id.
            let child_len = rng.gen_range(len + 4..=28);
            let child =
                (prefix | (rng.gen::<u32>() & !(u32::MAX << (32 - len)))) & (u32::MAX << (32 - child_len));
            out.push(PrefixEntry { prefix: child, len: child_len, id: next_id });
            next_id += 1;
        }
    }
    out
}

/// Render a table in the `peerid.tbl` text format the UDF loads.
pub fn render_table(entries: &[PrefixEntry]) -> String {
    let mut s = String::with_capacity(entries.len() * 24);
    for e in entries {
        s.push_str(&fmt_ipv4(e.prefix));
        s.push('/');
        s.push_str(&e.len.to_string());
        s.push(' ');
        s.push_str(&e.id.to_string());
        s.push('\n');
    }
    s
}

/// Reference longest-prefix match over the entry list (linear scan), used
/// by tests to validate the runtime's trie.
pub fn reference_lpm(entries: &[PrefixEntry], addr: u32) -> Option<u32> {
    entries
        .iter()
        .filter(|e| {
            let mask = if e.len == 0 { 0 } else { u32::MAX << (32 - e.len) };
            addr & mask == e.prefix
        })
        .max_by_key(|e| e.len)
        .map(|e| e.id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_are_nested_with_distinct_ids() {
        let entries = generate_prefixes(1, 30);
        assert!(entries.len() > 30);
        // Find at least one (parent, child) nesting where LPM picks the child.
        let mut found = false;
        for c in &entries {
            for p in &entries {
                if p.len < c.len
                    && c.prefix & (u32::MAX << (32 - p.len)) == p.prefix
                    && p.id != c.id
                {
                    // An address inside the child must resolve to the child id.
                    assert_eq!(reference_lpm(&entries, c.prefix), Some(c.id));
                    found = true;
                }
            }
        }
        assert!(found, "generator must produce nested prefixes");
    }

    #[test]
    fn render_parses_back() {
        let entries = generate_prefixes(2, 10);
        let text = render_table(&entries);
        for (line, e) in text.lines().zip(&entries) {
            let (net, rest) = line.split_once('/').unwrap();
            let (len, id) = rest.split_once(' ').unwrap();
            assert_eq!(gs_packet::ip::parse_ipv4(net), Some(e.prefix));
            assert_eq!(len.parse::<u8>().unwrap(), e.len);
            assert_eq!(id.parse::<u32>().unwrap(), e.id);
        }
    }

    #[test]
    fn host_bits_are_clean() {
        for e in generate_prefixes(3, 50) {
            let mask = if e.len == 0 { 0 } else { u32::MAX << (32 - e.len) };
            assert_eq!(e.prefix & !mask, 0);
        }
    }

    #[test]
    fn reference_lpm_miss() {
        let entries = vec![PrefixEntry { prefix: 0x0a000000, len: 8, id: 9 }];
        assert_eq!(reference_lpm(&entries, 0x0b000001), None);
        assert_eq!(reference_lpm(&entries, 0x0a123456), Some(9));
    }
}
