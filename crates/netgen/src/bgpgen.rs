//! BGP update stream generation for router-configuration monitoring
//! queries. Sequence numbers are monotone per peer (the catalog's
//! `increasing-in-group(peer)` ordering example).

use gs_packet::bgp::{BgpUpdate, TYPE_ANNOUNCE, TYPE_WITHDRAW};
use gs_packet::capture::{CapPacket, LinkType};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate_bgp`].
#[derive(Debug, Clone)]
pub struct BgpGenConfig {
    /// RNG seed.
    pub seed: u64,
    /// Interface id stamped on the records.
    pub iface: u16,
    /// Number of peers in the session mix.
    pub peers: usize,
    /// Total updates to generate.
    pub updates: usize,
    /// Mean inter-update gap, milliseconds.
    pub mean_gap_ms: f64,
    /// Fraction of updates that are withdrawals.
    pub withdraw_fraction: f64,
}

impl Default for BgpGenConfig {
    fn default() -> BgpGenConfig {
        BgpGenConfig {
            seed: 0,
            iface: 0,
            peers: 8,
            updates: 10_000,
            mean_gap_ms: 5.0,
            withdraw_fraction: 0.2,
        }
    }
}

/// Generate a time-ordered BGP update stream.
pub fn generate_bgp(cfg: &BgpGenConfig) -> Vec<CapPacket> {
    assert!(cfg.peers > 0, "need at least one peer");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let peers: Vec<(u32, u16)> = (0..cfg.peers)
        .map(|i| (0x0101_0100 + i as u32, 7000 + i as u16))
        .collect();
    let mut seqs = vec![0u32; cfg.peers];
    let mut now_ns: u64 = 0;
    let mut out = Vec::with_capacity(cfg.updates);
    for _ in 0..cfg.updates {
        let u: f64 = rng.gen_range(1e-12..1.0f64);
        now_ns += ((-u.ln()) * cfg.mean_gap_ms * 1e6).max(1.0) as u64;
        let pi = rng.gen_range(0..cfg.peers);
        seqs[pi] += 1;
        let withdraw = rng.gen_bool(cfg.withdraw_fraction.clamp(0.0, 1.0));
        let prefix_len = rng.gen_range(8u8..=24);
        let prefix = (rng.gen::<u32>()) & (u32::MAX << (32 - prefix_len));
        let upd = BgpUpdate {
            msg_type: if withdraw { TYPE_WITHDRAW } else { TYPE_ANNOUNCE },
            peer: peers[pi].0,
            peer_as: peers[pi].1,
            prefix,
            prefix_len,
            origin_as: if withdraw { 0 } else { rng.gen_range(1..65000) },
            path_len: if withdraw { 0 } else { rng.gen_range(1..8) },
            seq: seqs[pi],
        };
        let mut buf = Vec::with_capacity(gs_packet::bgp::MESSAGE_LEN);
        upd.encode(&mut buf).expect("prefix_len <= 24");
        out.push(CapPacket::full(now_ns, cfg.iface, LinkType::BgpUpdate, buf.into()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_packet::PacketView;
    use std::collections::HashMap;

    #[test]
    fn seq_monotone_per_peer() {
        let pkts = generate_bgp(&BgpGenConfig { updates: 5_000, ..Default::default() });
        let mut last: HashMap<u32, u32> = HashMap::new();
        for p in pkts {
            let u = PacketView::parse(p).bgp.expect("valid update");
            let prev = last.insert(u.peer, u.seq);
            if let Some(prev) = prev {
                assert!(u.seq > prev, "per-peer sequence must strictly increase");
            }
        }
    }

    #[test]
    fn timestamps_monotone() {
        let pkts = generate_bgp(&BgpGenConfig::default());
        assert!(pkts.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn withdrawals_have_no_path() {
        let pkts = generate_bgp(&BgpGenConfig { updates: 2_000, ..Default::default() });
        for p in pkts {
            let u = PacketView::parse(p).bgp.unwrap();
            if u.msg_type == TYPE_WITHDRAW {
                assert_eq!((u.origin_as, u.path_len), (0, 0));
            }
        }
    }

    #[test]
    fn prefix_is_masked() {
        let pkts = generate_bgp(&BgpGenConfig { updates: 1_000, ..Default::default() });
        for p in pkts {
            let u = PacketView::parse(p).bgp.unwrap();
            let host_bits = u.prefix & !(u32::MAX << (32 - u.prefix_len));
            assert_eq!(host_bits, 0, "prefix must have clean host bits");
        }
    }
}
