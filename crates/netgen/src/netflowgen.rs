//! Netflow export stream generation with the paper's ordering semantics.
//!
//! §2.1: "A stream of Netflow records produced by a router will have
//! monotonically increasing end timestamps, and generally (but not
//! monotonically) increasing start timestamps ... all Netflow records are
//! dumped every 30 seconds. Therefore the start time of a record is always
//! within 30 seconds of the high water mark."
//!
//! The generator simulates a router flow cache flushed every
//! `dump_interval_ms`: flows begin at random times, accumulate packets and
//! bytes, and are exported when they end or at the dump that follows their
//! last activity. Exported records are emitted sorted by end time (`last`),
//! making `last` monotone and `first` banded-increasing(dump interval) —
//! exactly the property the catalog declares.

use crate::flows::FlowPopulation;
use gs_packet::capture::{CapPacket, LinkType};
use gs_packet::netflow::NetflowRecord;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate_netflow`].
#[derive(Debug, Clone)]
pub struct NetflowGenConfig {
    /// RNG seed.
    pub seed: u64,
    /// Interface id stamped on the records.
    pub iface: u16,
    /// Virtual duration of router activity, milliseconds.
    pub duration_ms: u64,
    /// Router cache dump interval, milliseconds (the paper's 30 000).
    pub dump_interval_ms: u64,
    /// Number of flows to generate.
    pub flow_count: usize,
    /// Maximum flow lifetime, milliseconds.
    pub max_flow_ms: u64,
}

impl Default for NetflowGenConfig {
    fn default() -> NetflowGenConfig {
        NetflowGenConfig {
            seed: 0,
            iface: 0,
            duration_ms: 300_000,
            dump_interval_ms: 30_000,
            flow_count: 10_000,
            max_flow_ms: 120_000,
        }
    }
}

/// Generate an export stream: one [`CapPacket`] per Netflow record, in
/// export order (sorted by record `last` within the whole stream).
pub fn generate_netflow(cfg: &NetflowGenConfig) -> Vec<CapPacket> {
    assert!(cfg.dump_interval_ms > 0, "dump interval must be positive");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let pop = FlowPopulation::new(&mut rng, cfg.flow_count.max(1), 80, 1.0);

    // (export_ms, record)
    let mut exported: Vec<(u64, NetflowRecord)> = Vec::with_capacity(cfg.flow_count);
    for i in 0..cfg.flow_count {
        let f = pop.flow(i % pop.len());
        let first = rng.gen_range(0..cfg.duration_ms.max(1));
        let dur = rng.gen_range(0..cfg.max_flow_ms.max(1));
        let last = (first + dur).min(cfg.duration_ms);
        // The router exports at the first dump boundary at or after `last`.
        let export = (last / cfg.dump_interval_ms + 1) * cfg.dump_interval_ms;
        let packets = rng.gen_range(1..1_000u32);
        exported.push((
            export,
            NetflowRecord {
                src_addr: f.src_ip,
                dst_addr: f.dst_ip,
                src_port: f.src_port,
                dst_port: f.dst_port,
                protocol: f.protocol,
                packets,
                octets: packets * rng.gen_range(40..1500u32),
                first: first as u32,
                last: last as u32,
                tcp_flags: 0x1b,
                tos: 0,
                src_as: rng.gen_range(1..65000),
                dst_as: rng.gen_range(1..65000),
            },
        ));
    }

    // Within each dump the router writes records in end-time order; across
    // dumps export times increase, so sorting by (export, last) yields a
    // stream whose `last` is globally monotone.
    exported.sort_by_key(|(export, r)| (*export, r.last));

    exported
        .into_iter()
        .map(|(export_ms, r)| {
            let mut buf = Vec::with_capacity(gs_packet::netflow::RECORD_LEN);
            r.encode(&mut buf);
            CapPacket::full(export_ms * 1_000_000, cfg.iface, LinkType::NetflowRecord, buf.into())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_packet::PacketView;

    fn records(cfg: &NetflowGenConfig) -> Vec<NetflowRecord> {
        generate_netflow(cfg)
            .into_iter()
            .map(|p| PacketView::parse(p).netflow.expect("valid record"))
            .collect()
    }

    #[test]
    fn last_is_monotone() {
        let recs = records(&NetflowGenConfig { flow_count: 2_000, ..Default::default() });
        assert!(recs.windows(2).all(|w| w[0].last <= w[1].last));
    }

    #[test]
    fn first_is_banded_increasing() {
        let cfg = NetflowGenConfig { flow_count: 2_000, ..Default::default() };
        let recs = records(&cfg);
        let mut high_water = 0u32;
        for r in &recs {
            high_water = high_water.max(r.first);
            assert!(
                u64::from(high_water - r.first) <= cfg.dump_interval_ms + cfg.max_flow_ms,
                "start strays {} ms behind the high-water mark",
                high_water - r.first
            );
        }
        // And it is genuinely non-monotone (otherwise the banded property
        // would be vacuous for the tests that rely on it).
        assert!(recs.windows(2).any(|w| w[0].first > w[1].first));
    }

    #[test]
    fn first_never_exceeds_last() {
        let recs = records(&NetflowGenConfig { flow_count: 500, ..Default::default() });
        assert!(recs.iter().all(|r| r.first <= r.last));
    }

    #[test]
    fn capture_timestamps_monotone() {
        let pkts = generate_netflow(&NetflowGenConfig { flow_count: 500, ..Default::default() });
        assert!(pkts.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn deterministic() {
        let cfg = NetflowGenConfig { flow_count: 100, seed: 5, ..Default::default() };
        assert_eq!(generate_netflow(&cfg), generate_netflow(&cfg));
    }
}
