//! Port-80 payload generation for the §4 experiment.
//!
//! The experiment computes "the fraction of port 80 traffic which is due to
//! the HTTP protocol (port 80 is used to tunnel through firewalls)" by
//! matching payloads against `^[^\n]*HTTP/1.*`. We generate three payload
//! classes:
//!
//! - genuine HTTP request/response heads, which match;
//! - tunneled binary/other-protocol payloads on port 80, which do not;
//! - adversarial near-misses (e.g. `HTTP/1` after the first newline) that
//!   distinguish an anchored matcher from a substring search.

use rand::Rng;

/// The regular expression the experiment matches payloads against,
/// verbatim from the paper.
pub const HTTP_REGEX: &str = "^[^\\n]*HTTP/1.*";

static METHODS: [&str; 5] = ["GET", "POST", "HEAD", "PUT", "DELETE"];
static PATHS: [&str; 6] = ["/", "/index.html", "/images/logo.gif", "/cgi-bin/q", "/a/b/c", "/favicon.ico"];
static STATUS: [&str; 5] = ["200 OK", "304 Not Modified", "404 Not Found", "302 Found", "500 Oops"];

/// Payload class emitted by [`payload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadClass {
    /// An HTTP request head — matches the regex.
    HttpRequest,
    /// An HTTP response head — matches the regex.
    HttpResponse,
    /// Non-HTTP bytes tunneled over port 80 — does not match.
    Tunnel,
    /// `HTTP/1` appears, but only after a newline — must not match the
    /// anchored regex.
    NearMiss,
}

/// Generate a payload of the given class, roughly `target_len` bytes.
pub fn payload<R: Rng + ?Sized>(rng: &mut R, class: PayloadClass, target_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(target_len.max(16));
    match class {
        PayloadClass::HttpRequest => {
            let m = METHODS[rng.gen_range(0..METHODS.len())];
            let p = PATHS[rng.gen_range(0..PATHS.len())];
            let minor = rng.gen_range(0..2);
            out.extend_from_slice(format!("{m} {p} HTTP/1.{minor}\r\nHost: example.com\r\n\r\n").as_bytes());
        }
        PayloadClass::HttpResponse => {
            let s = STATUS[rng.gen_range(0..STATUS.len())];
            let minor = rng.gen_range(0..2);
            out.extend_from_slice(format!("HTTP/1.{minor} {s}\r\nContent-Length: 0\r\n\r\n").as_bytes());
        }
        PayloadClass::Tunnel => {
            // Arbitrary binary-ish bytes, guaranteed free of the literal
            // "HTTP/1" and of newlines in awkward places.
            for _ in 0..target_len.max(8) {
                out.push(rng.gen_range(0x20..0x7e));
            }
            scrub(&mut out);
        }
        PayloadClass::NearMiss => {
            // First line clean, then "HTTP/1" on a later line.
            for _ in 0..16 {
                out.push(rng.gen_range(b'a'..=b'z'));
            }
            out.push(b'\n');
            out.extend_from_slice(b"something HTTP/1.1 later");
        }
    }
    // Pad to the target length with body bytes (after a blank line these are
    // entity bytes and do not affect the first-line match either way).
    while out.len() < target_len {
        out.push(rng.gen_range(0x20..0x7e));
    }
    if matches!(class, PayloadClass::Tunnel) {
        scrub(&mut out);
    }
    out
}

/// Remove accidental "HTTP/1" occurrences from tunneled payloads so the
/// class labels stay ground truth.
fn scrub(buf: &mut [u8]) {
    let pat = b"HTTP/1";
    if buf.len() < pat.len() {
        return;
    }
    for i in 0..=buf.len() - pat.len() {
        if &buf[i..i + pat.len()] == pat {
            buf[i] = b'X';
        }
    }
}

/// Ground truth: does this payload match the anchored experiment regex?
/// A reference implementation used by tests to validate the runtime's
/// regex engine; scans the first line only.
pub fn matches_http(payload: &[u8]) -> bool {
    let first_line = match payload.iter().position(|&b| b == b'\n') {
        Some(i) => &payload[..i],
        None => payload,
    };
    first_line.windows(6).any(|w| w == b"HTTP/1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn request_and_response_match() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let p = payload(&mut rng, PayloadClass::HttpRequest, 200);
            assert!(matches_http(&p), "request must match: {:?}", String::from_utf8_lossy(&p));
            let p = payload(&mut rng, PayloadClass::HttpResponse, 200);
            assert!(matches_http(&p), "response must match");
        }
    }

    #[test]
    fn tunnel_never_matches() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..200 {
            let p = payload(&mut rng, PayloadClass::Tunnel, 300);
            assert!(!matches_http(&p), "tunnel must not match: {:?}", String::from_utf8_lossy(&p));
        }
    }

    #[test]
    fn near_miss_never_matches_anchored() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let p = payload(&mut rng, PayloadClass::NearMiss, 64);
            assert!(!matches_http(&p));
            // ...but a naive substring search over the whole payload would
            // be fooled:
            assert!(p.windows(6).any(|w| w == b"HTTP/1"));
        }
    }

    #[test]
    fn padding_reaches_target() {
        let mut rng = SmallRng::seed_from_u64(4);
        let p = payload(&mut rng, PayloadClass::HttpRequest, 512);
        assert!(p.len() >= 512);
    }
}
