//! LFTA/HFTA query splitting — the paper's signature optimization (§3).
//!
//! "One significant optimization technique is to push the query as far
//! down the processing stack as possible... This is accomplished in part
//! by breaking queries into high level query nodes (HFTAs) and low level
//! query nodes (LFTAs). All HFTAs accept only Stream input and exist as
//! separate processes, while LFTAs accept only Protocol input and are
//! linked into the stream manager."
//!
//! Splitting rules implemented here:
//!
//! 1. **Simple selection/projection** with only cheap predicates runs
//!    entirely as an LFTA ("a simple query can execute entirely as an
//!    LFTA").
//! 2. **Expensive predicates** (UDFs marked [`UdfCost::Expensive`], e.g.
//!    regex matching) always run in the HFTA; the LFTA keeps the cheap
//!    conjuncts and projects the columns the HFTA needs.
//! 3. **Aggregate splitting**: when every predicate and every group/agg
//!    expression is cheap, the LFTA pre-aggregates into a small
//!    direct-mapped hash (sub-aggregates) and the HFTA combines partials
//!    (super-aggregates) — "similar to that of subaggregates and
//!    superaggregates used in data cube computation algorithms".
//! 4. **Joins and merges** over Protocol scans get one trivial
//!    selection/projection LFTA per scan leaf; the join/merge itself is an
//!    HFTA.
//! 5. Each LFTA additionally gets a **BPF prefilter** compiled from its
//!    cheap conjuncts plus protocol guards, and a **snap length** when the
//!    query never reads the payload (§3's NIC optimizations).

use crate::analyze::AnalyzedQuery;
use crate::ast::{AggFunc, BinOp};
use crate::catalog::{Catalog, UdfCost};
use crate::error::GsqlError;
use crate::ordering::OrderProp;
use crate::plan::{AggSpec, ColumnInfo, PExpr, Plan, Schema};
use crate::pushdown::compile_prefilter;
use crate::types::DataType;
use gs_nic::bpf::BpfProgram;
use std::collections::HashMap;

/// Snap length used when the query reads only headers.
pub const HEADER_SNAPLEN: usize = 128;

/// One low-level query node: runs inside the run time system at the
/// capture point.
#[derive(Debug, Clone)]
pub struct LftaSpec {
    /// Registered stream name (mangled: `<query>__lfta<i>`, or the query's
    /// own name when the whole query is a single LFTA).
    pub name: String,
    /// The LFTA's plan (always rooted at a `ProtocolScan`).
    pub plan: Plan,
    /// Compiled NIC prefilter, when pushdown succeeded.
    pub prefilter: Option<BpfProgram>,
    /// Snap length to request from the NIC, when headers suffice.
    pub snaplen: Option<usize>,
    /// Whether this LFTA's aggregation (if any) is a *pre*-aggregation
    /// whose partials an HFTA combines: the runtime then uses the small
    /// direct-mapped eviction hash.
    pub pre_aggregated: bool,
    /// Analyst-requested sampling probability (applied at the capture
    /// point, before any other processing).
    pub sample: Option<f64>,
}

/// A query deployed as LFTAs plus an optional HFTA.
#[derive(Debug, Clone)]
pub struct DeployedQuery {
    /// The query's registered name.
    pub name: String,
    /// Low-level nodes, one per Protocol scan.
    pub lftas: Vec<LftaSpec>,
    /// The high-level plan (reads only Stream inputs). `None` when the
    /// whole query runs as a single LFTA.
    pub hfta: Option<Plan>,
    /// Query parameters.
    pub params: Vec<(String, DataType)>,
    /// Final output schema.
    pub schema: Schema,
}

impl DeployedQuery {
    /// The final output schema, whichever side produces it.
    pub fn output_plan(&self) -> &Plan {
        self.hfta.as_ref().unwrap_or(&self.lftas[0].plan)
    }
}

/// Split an analyzed query into LFTA and HFTA parts.
pub fn split_query(aq: &AnalyzedQuery, catalog: &Catalog) -> Result<DeployedQuery, GsqlError> {
    let mut splitter = Splitter { catalog, query: &aq.name, lftas: Vec::new() };
    let hfta = splitter.split(&aq.plan)?;
    for l in &mut splitter.lftas {
        l.sample = aq.sample;
    }
    let schema = match &hfta {
        Some(p) => p.schema().clone(),
        None => splitter.lftas[0].plan.schema().clone(),
    };
    Ok(DeployedQuery {
        name: aq.name.clone(),
        lftas: splitter.lftas,
        hfta,
        params: aq.params.clone(),
        schema,
    })
}

struct Splitter<'a> {
    catalog: &'a Catalog,
    query: &'a str,
    lftas: Vec<LftaSpec>,
}

impl<'a> Splitter<'a> {
    /// Split `plan`; returns the HFTA plan, or `None` if the whole query
    /// became a single LFTA.
    fn split(&mut self, plan: &Plan) -> Result<Option<Plan>, GsqlError> {
        if !plan.reads_protocol() {
            // Pure stream query: everything is HFTA.
            return Ok(Some(plan.clone()));
        }
        match plan {
            // Canonical single-source shapes produced by the analyzer:
            // Project(...(Filter?(Scan))) and
            // Project(Filter?(Aggregate(Filter?(Scan)))).
            Plan::Project { .. } | Plan::Aggregate { .. } | Plan::Filter { .. } => {
                self.split_single_source(plan, true)
            }
            Plan::Join { left, right, window, residual, cols, schema } => {
                let l = self.leaf_to_stream(left)?;
                let r = self.leaf_to_stream(right)?;
                Ok(Some(Plan::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                    window: window.clone(),
                    residual: residual.clone(),
                    cols: cols.clone(),
                    schema: schema.clone(),
                }))
            }
            Plan::Merge { inputs, on_col, schema } => {
                let mut new_inputs = Vec::with_capacity(inputs.len());
                for i in inputs {
                    new_inputs.push(self.leaf_to_stream(i)?);
                }
                Ok(Some(Plan::Merge {
                    inputs: new_inputs,
                    on_col: *on_col,
                    schema: schema.clone(),
                }))
            }
            Plan::ProtocolScan { .. } => {
                // Bare scan (no projection): wrap as identity LFTA.
                Ok(Some(self.leaf_to_stream(plan)?))
            }
            Plan::StreamScan { .. } => Ok(Some(plan.clone())),
        }
    }

    /// Replace a Protocol-scan subtree used as a join/merge input with a
    /// trivial identity LFTA and a StreamScan of its output.
    fn leaf_to_stream(&mut self, plan: &Plan) -> Result<Plan, GsqlError> {
        if !plan.reads_protocol() {
            return Ok(plan.clone());
        }
        // Inputs to joins/merges are themselves canonical single-source
        // plans; split them (never claiming the whole query's name) and
        // read whichever side is outermost.
        match self.split_single_source(plan, false)? {
            Some(hfta) => Ok(hfta),
            None => {
                let last = self.lftas.last().expect("split_single_source added an LFTA");
                Ok(Plan::StreamScan {
                    stream: last.name.clone(),
                    schema: last.plan.schema().clone(),
                })
            }
        }
    }

    /// Split a canonical single-source plan over a ProtocolScan.
    ///
    /// When `whole_query` is true and the plan fits entirely in an LFTA,
    /// the LFTA takes the query's own name and `None` is returned;
    /// otherwise LFTAs get mangled names.
    fn split_single_source(
        &mut self,
        plan: &Plan,
        whole_query: bool,
    ) -> Result<Option<Plan>, GsqlError> {
        let shape = Shape::of(plan)?;
        let Plan::ProtocolScan { interface, protocol, schema: scan_schema } = shape.scan else {
            // Single-source over a stream: pure HFTA.
            return Ok(Some(plan.clone()));
        };

        // Partition WHERE conjuncts by cost.
        let mut cheap: Vec<PExpr> = Vec::new();
        let mut expensive: Vec<PExpr> = Vec::new();
        for c in &shape.where_conjuncts {
            if self.is_cheap(c) {
                cheap.push(c.clone());
            } else {
                expensive.push(c.clone());
            }
        }

        match (&shape.aggregate, expensive.is_empty()) {
            // ---- Rule 1: whole query as a single LFTA --------------------
            (None, true) => {
                // A bare scan leaf (join/merge input) projects identity.
                let identity: Vec<(String, PExpr)>;
                let cols = match shape.project {
                    Some(p) => p,
                    None => {
                        identity = scan_schema
                            .iter()
                            .enumerate()
                            .map(|(i, c)| {
                                (c.name.clone(), PExpr::Col { index: i, ty: c.ty })
                            })
                            .collect();
                        &identity[..]
                    }
                };
                let lfta_plan = build_select(interface, protocol, scan_schema, &cheap, cols);
                let name =
                    if whole_query { self.query.to_string() } else { self.mangled_name() };
                self.push_lfta(name, lfta_plan, &cheap, false);
                if whole_query {
                    Ok(None)
                } else {
                    let last = self.lftas.last().expect("just pushed");
                    Ok(Some(Plan::StreamScan {
                        stream: last.name.clone(),
                        schema: last.plan.schema().clone(),
                    }))
                }
            }
            // ---- Rule 2: cheap filter + projection LFTA, rest HFTA -------
            (None, false) => {
                let (lfta_name, lfta_schema, col_map) = self.make_projection_lfta(
                    interface,
                    protocol,
                    scan_schema,
                    &cheap,
                    // Columns the HFTA needs: expensive conjuncts + final projection.
                    expensive
                        .iter()
                        .flat_map(|e| e.columns_used())
                        .chain(
                            shape
                                .project
                                .iter()
                                .flat_map(|p| p.iter())
                                .flat_map(|(_, e)| e.columns_used()),
                        )
                        .collect(),
                    scan_schema,
                );
                let mut hfta: Plan =
                    Plan::StreamScan { stream: lfta_name, schema: lfta_schema };
                if let Some(pred) = and_fold(remap_all(&expensive, &col_map)) {
                    hfta = Plan::Filter { pred, input: Box::new(hfta) };
                }
                let project = shape.project.expect("canonical plan has a projection");
                let cols: Vec<(String, PExpr)> = project
                    .iter()
                    .map(|(n, e)| (n.clone(), e.remap_columns(&col_map)))
                    .collect();
                let schema = plan.schema().clone();
                Ok(Some(Plan::Project { cols, input: Box::new(hfta), schema }))
            }
            // ---- Rules 2+3: aggregation ---------------------------------
            (Some(agg), _) => self.split_aggregate(
                plan,
                &shape,
                agg,
                interface,
                protocol,
                scan_schema,
                cheap,
                expensive,
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn split_aggregate(
        &mut self,
        plan: &Plan,
        shape: &Shape<'_>,
        agg: &AggParts<'_>,
        interface: &str,
        protocol: &str,
        scan_schema: &Schema,
        cheap: Vec<PExpr>,
        expensive: Vec<PExpr>,
    ) -> Result<Option<Plan>, GsqlError> {
        let group_cheap = agg.group.iter().all(|(_, e)| self.is_cheap(e));
        let aggs_cheap = agg
            .aggs
            .iter()
            .all(|a| a.arg.as_ref().is_none_or(|e| self.is_cheap(e)));
        let splittable = expensive.is_empty() && group_cheap && aggs_cheap;

        if !splittable {
            // LFTA: cheap filter + project needed columns. HFTA: the rest.
            let mut needed: Vec<usize> = Vec::new();
            needed.extend(expensive.iter().flat_map(|e| e.columns_used()));
            needed.extend(agg.group.iter().flat_map(|(_, e)| e.columns_used()));
            needed.extend(
                agg.aggs.iter().filter_map(|a| a.arg.as_ref()).flat_map(|e| e.columns_used()),
            );
            let (lfta_name, lfta_schema, col_map) = self.make_projection_lfta(
                interface, protocol, scan_schema, &cheap, needed, scan_schema,
            );
            let mut hfta: Plan = Plan::StreamScan { stream: lfta_name, schema: lfta_schema };
            if let Some(pred) = and_fold(remap_all(&expensive, &col_map)) {
                hfta = Plan::Filter { pred, input: Box::new(hfta) };
            }
            let group: Vec<(String, PExpr)> = agg
                .group
                .iter()
                .map(|(n, e)| (n.clone(), e.remap_columns(&col_map)))
                .collect();
            let aggs: Vec<AggSpec> = agg
                .aggs
                .iter()
                .map(|a| AggSpec {
                    name: a.name.clone(),
                    func: a.func,
                    arg: a.arg.as_ref().map(|e| e.remap_columns(&col_map)),
                    ty: a.ty,
                })
                .collect();
            let mut out: Plan = Plan::Aggregate {
                group,
                aggs,
                flush_group_idx: agg.flush_group_idx,
                input: Box::new(hfta),
                schema: agg.schema.clone(),
            };
            out = reapply_post_agg(out, shape, plan);
            return Ok(Some(out));
        }

        // ---- Rule 3: sub-aggregate in the LFTA, super-aggregate in HFTA.
        // LFTA: same groups, partial aggregates.
        let mut partials: Vec<AggSpec> = Vec::new();
        // For each original agg, the indices of its partial columns.
        enum Combine {
            /// The original aggregate is column `i` of the partials; the
            /// super-aggregate's combining function is derived from the
            /// partial's own function (count combines by summing).
            Simple(usize),
            /// avg = sum(partial_sum) / sum(partial_count).
            Avg { sum_idx: usize, cnt_idx: usize },
        }
        let mut combines: Vec<Combine> = Vec::new();
        let add_partial = |spec: AggSpec, partials: &mut Vec<AggSpec>| -> usize {
            if let Some(i) = partials
                .iter()
                .position(|p| p.func == spec.func && p.arg == spec.arg)
            {
                i
            } else {
                partials.push(spec);
                partials.len() - 1
            }
        };
        for a in agg.aggs {
            match a.func {
                AggFunc::Count => {
                    let i = add_partial(
                        AggSpec {
                            name: a.name.clone(),
                            func: AggFunc::Count,
                            arg: a.arg.clone(),
                            ty: DataType::UInt,
                        },
                        &mut partials,
                    );
                    combines.push(Combine::Simple(i));
                }
                AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                    let i = add_partial(
                        AggSpec {
                            name: a.name.clone(),
                            func: a.func,
                            arg: a.arg.clone(),
                            ty: a.ty,
                        },
                        &mut partials,
                    );
                    combines.push(Combine::Simple(i));
                }
                AggFunc::Avg => {
                    let arg = a.arg.clone().expect("avg has an argument");
                    let sum_ty = arg.ty();
                    let sum_idx = add_partial(
                        AggSpec {
                            name: format!("{}__sum", a.name),
                            func: AggFunc::Sum,
                            arg: Some(arg.clone()),
                            ty: sum_ty,
                        },
                        &mut partials,
                    );
                    let cnt_idx = add_partial(
                        AggSpec {
                            name: format!("{}__cnt", a.name),
                            func: AggFunc::Count,
                            arg: None,
                            ty: DataType::UInt,
                        },
                        &mut partials,
                    );
                    combines.push(Combine::Avg { sum_idx, cnt_idx });
                }
            }
        }

        let n_group = agg.group.len();
        let mut lfta_schema: Schema = Vec::new();
        let input_schema = scan_schema.clone();
        for (name, e) in agg.group {
            lfta_schema.push(ColumnInfo {
                name: name.clone(),
                ty: e.ty(),
                order: impute_expr_order(e, &input_schema),
            });
        }
        for p in &partials {
            lfta_schema.push(ColumnInfo { name: p.name.clone(), ty: p.ty, order: OrderProp::None });
        }
        let mut lfta_plan: Plan = Plan::ProtocolScan {
            interface: interface.to_string(),
            protocol: protocol.to_string(),
            schema: scan_schema.clone(),
        };
        if let Some(pred) = and_fold(cheap.clone()) {
            lfta_plan = Plan::Filter { pred, input: Box::new(lfta_plan) };
        }
        let lfta_plan = Plan::Aggregate {
            group: agg.group.to_vec(),
            aggs: partials.clone(),
            flush_group_idx: agg.flush_group_idx,
            input: Box::new(lfta_plan),
            schema: lfta_schema.clone(),
        };
        let lfta_name = self.mangled_name();
        self.push_lfta(lfta_name.clone(), lfta_plan, &cheap, true);

        // HFTA: super-aggregate over the partials, then a combine
        // projection restoring the original aggregate schema.
        let hfta_scan = Plan::StreamScan { stream: lfta_name, schema: lfta_schema.clone() };
        let group: Vec<(String, PExpr)> = agg
            .group
            .iter()
            .enumerate()
            .map(|(i, (n, e))| (n.clone(), PExpr::Col { index: i, ty: e.ty() }))
            .collect();
        let mut super_aggs: Vec<AggSpec> = Vec::new();
        for (i, p) in partials.iter().enumerate() {
            let comb_func = match p.func {
                AggFunc::Count => AggFunc::Sum,
                f => f,
            };
            super_aggs.push(AggSpec {
                name: p.name.clone(),
                func: comb_func,
                arg: Some(PExpr::Col { index: n_group + i, ty: p.ty }),
                ty: p.ty,
            });
        }
        let mut super_schema: Schema = lfta_schema.clone();
        // Flushing in the HFTA follows the same ordered group column; the
        // schema shape (groups then partials) is identical.
        let super_agg_plan = Plan::Aggregate {
            group,
            aggs: super_aggs,
            flush_group_idx: agg.flush_group_idx,
            input: Box::new(hfta_scan),
            schema: std::mem::take(&mut super_schema),
        };

        // Combine projection: original agg schema = groups ++ original aggs.
        let mut cols: Vec<(String, PExpr)> = Vec::new();
        for (i, (n, e)) in agg.group.iter().enumerate() {
            cols.push((n.clone(), PExpr::Col { index: i, ty: e.ty() }));
        }
        for (a, comb) in agg.aggs.iter().zip(&combines) {
            let e = match comb {
                Combine::Simple(i) => PExpr::Col { index: n_group + i, ty: a.ty },
                Combine::Avg { sum_idx, cnt_idx } => {
                    let sum_col = PExpr::Col {
                        index: n_group + sum_idx,
                        ty: partials[*sum_idx].ty,
                    };
                    let cnt_col =
                        PExpr::Col { index: n_group + cnt_idx, ty: DataType::UInt };
                    let to_float = |e: PExpr| PExpr::Call {
                        udf: "to_float".into(),
                        args: vec![e],
                        ret: DataType::Float,
                        partial: false,
                    };
                    let sum_f = if partials[*sum_idx].ty == DataType::Float {
                        sum_col
                    } else {
                        to_float(sum_col)
                    };
                    PExpr::Binary {
                        op: BinOp::Div,
                        left: Box::new(sum_f),
                        right: Box::new(to_float(cnt_col)),
                        ty: DataType::Float,
                    }
                }
            };
            cols.push((a.name.clone(), e));
        }
        let combined = Plan::Project {
            cols,
            input: Box::new(super_agg_plan),
            schema: agg.schema.clone(),
        };
        Ok(Some(reapply_post_agg(combined, shape, plan)))
    }

    /// Build a filter+projection LFTA emitting `needed` scan columns and
    /// register it; returns (name, schema, old→new column map).
    fn make_projection_lfta(
        &mut self,
        interface: &str,
        protocol: &str,
        scan_schema: &Schema,
        cheap: &[PExpr],
        mut needed: Vec<usize>,
        input_schema: &Schema,
    ) -> (String, Schema, HashMap<usize, usize>) {
        needed.sort_unstable();
        needed.dedup();
        let mut col_map = HashMap::new();
        let mut cols = Vec::new();
        let mut schema = Schema::new();
        for (new_i, old_i) in needed.iter().enumerate() {
            let ci = &input_schema[*old_i];
            col_map.insert(*old_i, new_i);
            cols.push((ci.name.clone(), PExpr::Col { index: *old_i, ty: ci.ty }));
            schema.push(ci.clone());
        }
        let plan = build_select(
            interface,
            protocol,
            scan_schema,
            cheap,
            &cols.iter().map(|(n, e)| (n.clone(), e.clone())).collect::<Vec<_>>(),
        );
        let name = self.mangled_name();
        self.push_lfta(name.clone(), plan, cheap, false);
        (name, schema, col_map)
    }

    fn mangled_name(&self) -> String {
        format!("{}__lfta{}", self.query, self.lftas.len())
    }

    fn push_lfta(&mut self, name: String, plan: Plan, cheap: &[PExpr], pre_aggregated: bool) {
        let (prefilter, snaplen) = self.compile_nic_parts(&plan, cheap);
        self.lftas.push(LftaSpec { name, plan, prefilter, snaplen, pre_aggregated, sample: None });
    }

    /// Compile the BPF prefilter and choose a snap length for an LFTA.
    fn compile_nic_parts(
        &self,
        plan: &Plan,
        cheap: &[PExpr],
    ) -> (Option<BpfProgram>, Option<usize>) {
        // Find the scan leaf.
        let mut scan: Option<(&str, &str, &Schema)> = None;
        plan.visit(&mut |p| {
            if let Plan::ProtocolScan { interface, protocol, schema } = p {
                scan = Some((interface, protocol, schema));
            }
        });
        let Some((interface, protocol, scan_schema)) = scan else { return (None, None) };
        let Some(ifd) = self.catalog.interface(interface) else { return (None, None) };

        // Does anything in the LFTA read the payload?
        let mut reads_payload = false;
        let check = |e: &PExpr, schema: &Schema, flag: &mut bool| {
            for i in e.columns_used() {
                if schema.get(i).is_some_and(|c| c.name == "payload") {
                    *flag = true;
                }
            }
        };
        plan.visit(&mut |p| match p {
            Plan::Filter { pred, .. } => check(pred, scan_schema, &mut reads_payload),
            Plan::Project { cols, .. } => {
                cols.iter().for_each(|(_, e)| check(e, scan_schema, &mut reads_payload))
            }
            Plan::Aggregate { group, aggs, .. } => {
                group.iter().for_each(|(_, e)| check(e, scan_schema, &mut reads_payload));
                aggs.iter()
                    .filter_map(|a| a.arg.as_ref())
                    .for_each(|e| check(e, scan_schema, &mut reads_payload));
            }
            _ => {}
        });
        let snaplen = if reads_payload { None } else { Some(HEADER_SNAPLEN) };

        let schema_for_fields = scan_schema.clone();
        let pd = compile_prefilter(
            protocol,
            ifd.link,
            cheap,
            &move |i| schema_for_fields.get(i).map(|c| c.name.clone()),
            &HashMap::new(),
            snaplen.map(|s| s as u32),
        );
        (pd.program, snaplen)
    }

    /// A predicate/expression is cheap when it calls no expensive UDFs.
    fn is_cheap(&self, e: &PExpr) -> bool {
        let mut cheap = true;
        e.walk(&mut |x| {
            if let PExpr::Call { udf, .. } = x {
                if self
                    .catalog
                    .udf(udf)
                    .is_none_or(|sig| sig.cost == UdfCost::Expensive)
                {
                    cheap = false;
                }
            }
        });
        cheap
    }
}

// ----------------------------------------------------------------------
// Canonical-shape decomposition.
// ----------------------------------------------------------------------

struct AggParts<'p> {
    group: &'p [(String, PExpr)],
    aggs: &'p [AggSpec],
    flush_group_idx: Option<usize>,
    schema: Schema,
}

/// The analyzer's canonical single-source plan, decomposed.
struct Shape<'p> {
    scan: &'p Plan,
    where_conjuncts: Vec<PExpr>,
    aggregate: Option<AggParts<'p>>,
    /// Post-aggregation HAVING predicate (over the aggregate schema).
    having: Option<&'p PExpr>,
    /// Final projection (over the aggregate schema when aggregating, else
    /// over the scan schema).
    project: Option<&'p [(String, PExpr)]>,
    project_schema: Option<&'p Schema>,
}

impl<'p> Shape<'p> {
    fn of(plan: &'p Plan) -> Result<Shape<'p>, GsqlError> {
        let mut project = None;
        let mut project_schema = None;
        let mut having = None;
        let mut aggregate = None;
        let mut node = plan;
        if let Plan::Project { cols, input, schema } = node {
            project = Some(cols.as_slice());
            project_schema = Some(schema);
            node = input;
        }
        if let Plan::Filter { pred, input } = node {
            if matches!(**input, Plan::Aggregate { .. }) {
                having = Some(pred);
                node = input;
            }
        }
        if let Plan::Aggregate { group, aggs, flush_group_idx, input, schema } = node {
            aggregate = Some(AggParts {
                group,
                aggs,
                flush_group_idx: *flush_group_idx,
                schema: schema.clone(),
            });
            node = input;
        }
        let mut where_conjuncts = Vec::new();
        if let Plan::Filter { pred, input } = node {
            where_conjuncts = pred.conjuncts_owned();
            node = input;
        }
        match node {
            Plan::ProtocolScan { .. } | Plan::StreamScan { .. } => Ok(Shape {
                scan: node,
                where_conjuncts,
                aggregate,
                having,
                project,
                project_schema,
            }),
            other => Err(GsqlError::plan(format!(
                "unexpected plan shape below aggregation: {other:?}"
            ))),
        }
    }
}

impl PExpr {
    /// Top-level AND conjuncts, owned.
    pub fn conjuncts_owned(&self) -> Vec<PExpr> {
        let mut out = Vec::new();
        fn go(e: &PExpr, out: &mut Vec<PExpr>) {
            match e {
                PExpr::Binary { op: BinOp::And, left, right, .. } => {
                    go(left, out);
                    go(right, out);
                }
                other => out.push(other.clone()),
            }
        }
        go(self, &mut out);
        out
    }
}

fn and_fold(mut v: Vec<PExpr>) -> Option<PExpr> {
    let first = if v.is_empty() { return None } else { v.remove(0) };
    Some(v.into_iter().fold(first, |acc, e| PExpr::Binary {
        op: BinOp::And,
        left: Box::new(acc),
        right: Box::new(e),
        ty: DataType::Bool,
    }))
}

fn remap_all(exprs: &[PExpr], map: &HashMap<usize, usize>) -> Vec<PExpr> {
    exprs.iter().map(|e| e.remap_columns(map)).collect()
}

fn build_select(
    interface: &str,
    protocol: &str,
    scan_schema: &Schema,
    cheap: &[PExpr],
    cols: &[(String, PExpr)],
) -> Plan {
    let mut plan: Plan = Plan::ProtocolScan {
        interface: interface.to_string(),
        protocol: protocol.to_string(),
        schema: scan_schema.clone(),
    };
    if let Some(pred) = and_fold(cheap.to_vec()) {
        plan = Plan::Filter { pred, input: Box::new(plan) };
    }
    let schema: Schema = cols
        .iter()
        .map(|(n, e)| ColumnInfo {
            name: n.clone(),
            ty: e.ty(),
            order: impute_expr_order(e, scan_schema),
        })
        .collect();
    Plan::Project { cols: cols.to_vec(), input: Box::new(plan), schema }
}

/// Minimal ordering imputation shared with the analyzer's rules.
fn impute_expr_order(e: &PExpr, schema: &Schema) -> OrderProp {
    match e {
        PExpr::Col { index, .. } => {
            schema.get(*index).map(|c| c.order.clone()).unwrap_or(OrderProp::None)
        }
        PExpr::Binary { op, left, right, .. } => {
            if let (inner, PExpr::Lit(crate::plan::Literal::UInt(k))) = (&**left, &**right) {
                let base = impute_expr_order(inner, schema);
                return match op {
                    BinOp::Div if *k > 0 => base.after_div(*k),
                    BinOp::Add | BinOp::Sub => base.after_monotone_map(1),
                    BinOp::Mul if *k > 0 => base.after_monotone_map(*k),
                    _ => OrderProp::None,
                };
            }
            OrderProp::None
        }
        _ => OrderProp::None,
    }
}

/// Re-apply the original plan's post-aggregation HAVING filter and final
/// projection on top of the reconstructed aggregate.
fn reapply_post_agg(mut agg_plan: Plan, shape: &Shape<'_>, original: &Plan) -> Plan {
    if let Some(h) = shape.having {
        agg_plan = Plan::Filter { pred: h.clone(), input: Box::new(agg_plan) };
    }
    if let (Some(cols), Some(schema)) = (shape.project, shape.project_schema) {
        agg_plan = Plan::Project {
            cols: cols.to_vec(),
            input: Box::new(agg_plan),
            schema: schema.clone(),
        };
    } else {
        debug_assert!(
            matches!(original, Plan::Aggregate { .. }),
            "canonical plans always project on top of aggregation"
        );
    }
    agg_plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::catalog::InterfaceDef;
    use crate::parser::parse_query;
    use gs_packet::capture::LinkType;

    fn catalog() -> Catalog {
        let mut c = Catalog::with_builtins();
        c.add_interface(InterfaceDef { name: "eth0".into(), id: 0, link: LinkType::Ethernet });
        c.add_interface(InterfaceDef { name: "eth1".into(), id: 1, link: LinkType::Ethernet });
        c
    }

    fn deploy(src: &str) -> DeployedQuery {
        let c = catalog();
        let aq = analyze(&parse_query(src).unwrap(), &c).unwrap();
        split_query(&aq, &c).unwrap()
    }

    #[test]
    fn simple_query_is_single_lfta() {
        let d = deploy(
            "DEFINE { query_name t0; } \
             Select destIP, destPort, time From eth0.tcp Where destPort = 80",
        );
        assert!(d.hfta.is_none(), "simple query executes entirely as an LFTA");
        assert_eq!(d.lftas.len(), 1);
        assert_eq!(d.lftas[0].name, "t0");
        assert!(!d.lftas[0].pre_aggregated);
        assert!(d.lftas[0].prefilter.is_some(), "port filter pushes down to BPF");
        assert_eq!(d.lftas[0].snaplen, Some(HEADER_SNAPLEN), "no payload read -> snap");
    }

    #[test]
    fn regex_query_splits_filter() {
        // The §4 experiment's query shape: LFTA filters port 80, HFTA does
        // the regex.
        let d = deploy(
            "DEFINE { query_name http_frac; } \
             Select time, payload From eth0.tcp \
             Where destPort = 80 and str_match_regex(payload, '^[^\\n]*HTTP/1.*') = TRUE",
        );
        assert_eq!(d.lftas.len(), 1);
        let lfta = &d.lftas[0];
        assert_eq!(lfta.name, "http_frac__lfta0");
        assert!(lfta.snaplen.is_none(), "HFTA reads the payload: no snap");
        // LFTA keeps the cheap conjunct.
        let mut lfta_has_filter = false;
        lfta.plan.visit(&mut |p| {
            if matches!(p, Plan::Filter { .. }) {
                lfta_has_filter = true;
            }
        });
        assert!(lfta_has_filter);
        // HFTA holds the expensive predicate.
        let hfta = d.hfta.as_ref().unwrap();
        let mut has_regex = false;
        hfta.visit(&mut |p| {
            if let Plan::Filter { pred, .. } = p {
                pred.walk(&mut |e| {
                    if matches!(e, PExpr::Call { udf, .. } if udf == "str_match_regex") {
                        has_regex = true;
                    }
                });
            }
        });
        assert!(has_regex);
        assert_eq!(hfta.upstream_streams(), vec!["http_frac__lfta0".to_string()]);
    }

    #[test]
    fn aggregate_splits_into_sub_and_super() {
        let d = deploy(
            "DEFINE { query_name counts; } \
             Select tb, count(*), sum(len) From eth0.ip Group By time/60 as tb",
        );
        assert_eq!(d.lftas.len(), 1);
        let lfta = &d.lftas[0];
        assert!(lfta.pre_aggregated, "cheap aggregation pre-aggregates in the LFTA");
        let Plan::Aggregate { aggs, flush_group_idx, .. } = &lfta.plan else {
            panic!("{:?}", lfta.plan)
        };
        assert_eq!(aggs.len(), 2); // partial count + partial sum
        assert_eq!(*flush_group_idx, Some(0));
        // HFTA combines: count -> sum of partial counts.
        let hfta = d.hfta.as_ref().unwrap();
        let mut super_aggs = None;
        hfta.visit(&mut |p| {
            if let Plan::Aggregate { aggs, .. } = p {
                super_aggs = Some(aggs.clone());
            }
        });
        let super_aggs = super_aggs.unwrap();
        assert!(super_aggs.iter().all(|a| matches!(a.func, AggFunc::Sum)));
        // Final schema matches the original query.
        assert_eq!(d.schema.len(), 3);
        assert_eq!(d.schema[0].name, "tb");
    }

    #[test]
    fn avg_splits_into_sum_and_count() {
        let d = deploy("Select tb, avg(len) From eth0.ip Group By time/60 as tb");
        let lfta = &d.lftas[0];
        let Plan::Aggregate { aggs, .. } = &lfta.plan else { panic!() };
        // avg -> partial sum + partial count.
        assert_eq!(aggs.len(), 2);
        assert!(matches!(aggs[0].func, AggFunc::Sum));
        assert!(matches!(aggs[1].func, AggFunc::Count));
        // The HFTA combine projection divides floats.
        assert_eq!(d.schema[1].ty, DataType::Float);
    }

    #[test]
    fn expensive_group_key_disables_preaggregation() {
        let d = deploy(
            "Select tb, count(*) From eth0.tcp \
             Where destPort = 80 \
             Group By time/60 as tb, str_find_substr(payload, 'GET') as isget",
        );
        let lfta = &d.lftas[0];
        assert!(!lfta.pre_aggregated);
        assert!(matches!(lfta.plan, Plan::Project { .. }), "LFTA reduces to filter+project");
        let hfta = d.hfta.as_ref().unwrap();
        let mut hfta_aggregates = false;
        hfta.visit(&mut |p| {
            if matches!(p, Plan::Aggregate { .. }) {
                hfta_aggregates = true;
            }
        });
        assert!(hfta_aggregates);
    }

    #[test]
    fn join_gets_one_lfta_per_leaf() {
        let d = deploy(
            "DEFINE { query_name j; } \
             Select B.time FROM eth0.tcp B, eth1.tcp C \
             WHERE B.time = C.time and B.srcIP = C.srcIP",
        );
        assert_eq!(d.lftas.len(), 2);
        let hfta = d.hfta.as_ref().unwrap();
        assert!(matches!(hfta, Plan::Join { .. }));
        assert_eq!(hfta.upstream_streams().len(), 2);
    }

    #[test]
    fn pure_stream_query_has_no_lftas() {
        let mut c = catalog();
        c.add_stream(
            "upstream",
            vec![ColumnInfo {
                name: "time".into(),
                ty: DataType::UInt,
                order: OrderProp::Increasing { strict: false },
            }],
        );
        let aq = analyze(
            &parse_query("Select time From upstream Where time > 10").unwrap(),
            &c,
        )
        .unwrap();
        let d = split_query(&aq, &c).unwrap();
        assert!(d.lftas.is_empty());
        assert!(d.hfta.is_some());
    }

    #[test]
    fn having_survives_the_split() {
        let d = deploy(
            "Select tb, count(*) From eth0.ip Group By time/60 as tb Having count(*) > 5",
        );
        let hfta = d.hfta.as_ref().unwrap();
        // Plan: Project(Filter(Project(Aggregate(...)))) — the HAVING
        // filter sits above the combine projection.
        let mut filters = 0;
        hfta.visit(&mut |p| {
            if matches!(p, Plan::Filter { .. }) {
                filters += 1;
            }
        });
        assert_eq!(filters, 1);
    }
}
