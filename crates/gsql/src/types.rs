//! The GSQL type system.
//!
//! Deliberately small: network monitoring data is unsigned integers, IP
//! addresses, byte strings, booleans, and the occasional ratio (float).

use std::fmt;

/// A GSQL value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// Unsigned 64-bit integer (all packet counters/ports/timestamps).
    UInt,
    /// 64-bit float (ratios, averages).
    Float,
    /// IPv4 address (a `u32` with address literal syntax).
    Ip,
    /// Byte string (payloads, matched text).
    Str,
}

impl DataType {
    /// Whether values of this type can be compared with `<`/`>`.
    pub fn is_ordered(self) -> bool {
        !matches!(self, DataType::Bool)
    }

    /// Whether this type supports arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::UInt | DataType::Float)
    }

    /// Convert a packet-schema field type.
    pub fn from_field(ft: gs_packet::interp::FieldType) -> DataType {
        match ft {
            gs_packet::interp::FieldType::Bool => DataType::Bool,
            gs_packet::interp::FieldType::UInt => DataType::UInt,
            gs_packet::interp::FieldType::Ip => DataType::Ip,
            gs_packet::interp::FieldType::Str => DataType::Str,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::UInt => "uint",
            DataType::Float => "float",
            DataType::Ip => "ip",
            DataType::Str => "string",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(DataType::UInt.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Ip.is_numeric());
        assert!(DataType::Ip.is_ordered());
        assert!(!DataType::Bool.is_ordered());
        assert!(DataType::Str.is_ordered());
    }

    #[test]
    fn from_field_maps() {
        use gs_packet::interp::FieldType as F;
        assert_eq!(DataType::from_field(F::UInt), DataType::UInt);
        assert_eq!(DataType::from_field(F::Ip), DataType::Ip);
        assert_eq!(DataType::from_field(F::Str), DataType::Str);
        assert_eq!(DataType::from_field(F::Bool), DataType::Bool);
    }
}
