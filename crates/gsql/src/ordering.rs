//! Ordering properties of stream attributes (paper §2.1).
//!
//! "We make use of timestamps and sequence numbers by defining them to be
//! ordered attributes having ordering properties." The properties here are
//! the paper's illustrative set:
//!
//! - strictly / monotonically increasing (and decreasing),
//! - monotone nonrepeating,
//! - banded-increasing(B) — within `B` of the high-water mark,
//! - increasing within a group of fields.
//!
//! Query operators *impute* the ordering properties of their outputs from
//! those of their inputs; the imputation rules live here so both the
//! analyzer and the splitter use the same lattice.

use std::fmt;

/// Ordering property of one attribute within its stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderProp {
    /// No known ordering.
    None,
    /// Nondecreasing with stream position; `strict` means strictly
    /// increasing.
    Increasing {
        /// Whether repeats are impossible.
        strict: bool,
    },
    /// Nonincreasing with stream position; `strict` means strictly
    /// decreasing.
    Decreasing {
        /// Whether repeats are impossible.
        strict: bool,
    },
    /// Values never repeat but are otherwise unordered (e.g. a hash of a
    /// monotone attribute).
    MonotoneNonrepeating,
    /// Always within `band` of the running maximum
    /// (banded-increasing(B)).
    BandedIncreasing {
        /// Band width, in the attribute's own units.
        band: u64,
    },
    /// Increasing among tuples that agree on the named group fields.
    IncreasingInGroup {
        /// The grouping fields (names in the same schema).
        group: Vec<String>,
    },
}

impl OrderProp {
    /// Whether this property lets an operator advance a window / close
    /// groups when it observes a new value: any banded or monotone
    /// increase qualifies.
    pub fn is_progressing(&self) -> bool {
        matches!(
            self,
            OrderProp::Increasing { .. }
                | OrderProp::Decreasing { .. }
                | OrderProp::BandedIncreasing { .. }
        )
    }

    /// The slack (in attribute units) by which a new maximum may still be
    /// followed by smaller values: 0 for monotone, `band` for banded,
    /// `None` when the attribute gives no progress guarantee at all.
    pub fn slack(&self) -> Option<u64> {
        match self {
            OrderProp::Increasing { .. } | OrderProp::Decreasing { .. } => Some(0),
            OrderProp::BandedIncreasing { band } => Some(*band),
            _ => None,
        }
    }

    /// Whether the attribute can reunify hash-partitioned copies of its
    /// stream through an order-preserving merge: the merge watermark
    /// logic tracks a running maximum, so the attribute must be
    /// increasing (possibly within a band). Decreasing attributes have
    /// slack but run against the watermark direction; grouped and
    /// nonrepeating orders give no global progress bound at all.
    pub fn partition_mergeable(&self) -> bool {
        matches!(self, OrderProp::Increasing { .. } | OrderProp::BandedIncreasing { .. })
    }

    /// Imputed property after dividing the attribute by a positive
    /// constant (the `time/60` bucket idiom): monotonicity survives but
    /// strictness does not; bands shrink by the divisor (rounded up).
    pub fn after_div(&self, divisor: u64) -> OrderProp {
        if divisor == 0 {
            return OrderProp::None;
        }
        match self {
            OrderProp::Increasing { .. } => OrderProp::Increasing { strict: false },
            OrderProp::Decreasing { .. } => OrderProp::Decreasing { strict: false },
            OrderProp::BandedIncreasing { band } => {
                OrderProp::BandedIncreasing { band: band.div_ceil(divisor) }
            }
            _ => OrderProp::None,
        }
    }

    /// Imputed property after adding/subtracting/multiplying by a positive
    /// constant: order-preserving transforms keep the property (bands
    /// scale under multiplication).
    pub fn after_monotone_map(&self, scale: u64) -> OrderProp {
        match self {
            OrderProp::Increasing { strict } => OrderProp::Increasing { strict: *strict },
            OrderProp::Decreasing { strict } => OrderProp::Decreasing { strict: *strict },
            OrderProp::BandedIncreasing { band } => {
                OrderProp::BandedIncreasing { band: band.saturating_mul(scale.max(1)) }
            }
            OrderProp::MonotoneNonrepeating => OrderProp::MonotoneNonrepeating,
            _ => OrderProp::None,
        }
    }

    /// Meet of two properties: the strongest property that holds for a
    /// stream interleaved from two streams having `self` and `other` on
    /// the same attribute **when the interleaving preserves that
    /// attribute's order** (the merge operator's contract).
    pub fn merge_meet(&self, other: &OrderProp) -> OrderProp {
        use OrderProp::*;
        match (self, other) {
            (Increasing { strict: a }, Increasing { strict: b }) => {
                // An order-preserving merge can still interleave equal
                // values from the two sides, so strictness is lost.
                let _ = (a, b);
                Increasing { strict: false }
            }
            (Decreasing { .. }, Decreasing { .. }) => Decreasing { strict: false },
            (BandedIncreasing { band: a }, BandedIncreasing { band: b }) => {
                BandedIncreasing { band: *a.max(b) }
            }
            (BandedIncreasing { band }, Increasing { .. })
            | (Increasing { .. }, BandedIncreasing { band }) => {
                BandedIncreasing { band: *band }
            }
            _ => None,
        }
    }

    /// Convert a packet-schema ordering hint.
    pub fn from_hint(hint: gs_packet::interp::OrderHint) -> OrderProp {
        match hint {
            gs_packet::interp::OrderHint::None => OrderProp::None,
            gs_packet::interp::OrderHint::Increasing => OrderProp::Increasing { strict: false },
            gs_packet::interp::OrderHint::BandedIncreasing(b) => {
                OrderProp::BandedIncreasing { band: b }
            }
            gs_packet::interp::OrderHint::IncreasingInGroup(fields) => {
                OrderProp::IncreasingInGroup {
                    group: fields.iter().map(|s| s.to_string()).collect(),
                }
            }
        }
    }
}

impl fmt::Display for OrderProp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderProp::None => write!(f, "unordered"),
            OrderProp::Increasing { strict: true } => write!(f, "strictly-increasing"),
            OrderProp::Increasing { strict: false } => write!(f, "increasing"),
            OrderProp::Decreasing { strict: true } => write!(f, "strictly-decreasing"),
            OrderProp::Decreasing { strict: false } => write!(f, "decreasing"),
            OrderProp::MonotoneNonrepeating => write!(f, "monotone-nonrepeating"),
            OrderProp::BandedIncreasing { band } => write!(f, "banded-increasing({band})"),
            OrderProp::IncreasingInGroup { group } => {
                write!(f, "increasing-in-group({})", group.join(","))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_and_slack() {
        assert!(OrderProp::Increasing { strict: true }.is_progressing());
        assert!(OrderProp::BandedIncreasing { band: 30 }.is_progressing());
        assert!(!OrderProp::MonotoneNonrepeating.is_progressing());
        assert_eq!(OrderProp::Increasing { strict: false }.slack(), Some(0));
        assert_eq!(OrderProp::BandedIncreasing { band: 30 }.slack(), Some(30));
        assert_eq!(OrderProp::None.slack(), None);
    }

    #[test]
    fn division_weakens_strictness_and_shrinks_bands() {
        let p = OrderProp::Increasing { strict: true }.after_div(60);
        assert_eq!(p, OrderProp::Increasing { strict: false });
        let p = OrderProp::BandedIncreasing { band: 30_000 }.after_div(1_000);
        assert_eq!(p, OrderProp::BandedIncreasing { band: 30 });
        // Ceil: band 31 / 10 -> 4.
        let p = OrderProp::BandedIncreasing { band: 31 }.after_div(10);
        assert_eq!(p, OrderProp::BandedIncreasing { band: 4 });
        assert_eq!(OrderProp::Increasing { strict: true }.after_div(0), OrderProp::None);
    }

    #[test]
    fn partition_mergeable_requires_increasing() {
        assert!(OrderProp::Increasing { strict: true }.partition_mergeable());
        assert!(OrderProp::BandedIncreasing { band: 30 }.partition_mergeable());
        assert!(!OrderProp::Decreasing { strict: true }.partition_mergeable());
        assert!(!OrderProp::MonotoneNonrepeating.partition_mergeable());
        assert!(!OrderProp::IncreasingInGroup { group: vec!["a".into()] }.partition_mergeable());
        assert!(!OrderProp::None.partition_mergeable());
    }

    #[test]
    fn merge_meet_rules() {
        let inc = OrderProp::Increasing { strict: true };
        assert_eq!(inc.merge_meet(&inc), OrderProp::Increasing { strict: false });
        let b30 = OrderProp::BandedIncreasing { band: 30 };
        let b10 = OrderProp::BandedIncreasing { band: 10 };
        assert_eq!(b30.merge_meet(&b10), OrderProp::BandedIncreasing { band: 30 });
        assert_eq!(inc.merge_meet(&b10), OrderProp::BandedIncreasing { band: 10 });
        assert_eq!(inc.merge_meet(&OrderProp::None), OrderProp::None);
    }

    #[test]
    fn from_hint_roundtrip() {
        use gs_packet::interp::OrderHint as H;
        assert_eq!(OrderProp::from_hint(H::Increasing), OrderProp::Increasing { strict: false });
        assert_eq!(
            OrderProp::from_hint(H::BandedIncreasing(30_000)),
            OrderProp::BandedIncreasing { band: 30_000 }
        );
        assert!(matches!(
            OrderProp::from_hint(H::IncreasingInGroup(&["peer"])),
            OrderProp::IncreasingInGroup { .. }
        ));
    }

    #[test]
    fn display_forms() {
        assert_eq!(OrderProp::BandedIncreasing { band: 30 }.to_string(), "banded-increasing(30)");
        assert_eq!(
            OrderProp::IncreasingInGroup { group: vec!["a".into(), "b".into()] }.to_string(),
            "increasing-in-group(a,b)"
        );
    }
}
