//! Partition-parallel rewrite of aggregation HFTAs.
//!
//! A group-by HFTA is embarrassingly parallel in its group key: hashing
//! the full key routes every tuple of a logical group to the same shard,
//! each shard sees a *subsequence* of the original stream (so every §2.1
//! ordering property of the input still holds per shard), and each shard
//! therefore stays a streaming aggregate. The shards are reunified by the
//! existing order-preserving merge on the aggregate's temporal (flush)
//! attribute, which survives to the HFTA output ordered.
//!
//! The rewrite is applied at *deployment* time (engine/manager build), not
//! in the catalog: registered plans, EXPLAIN output, and `parallelism = 1`
//! runs are untouched.

use crate::ordering::OrderProp;
use crate::plan::{PExpr, Plan};
use crate::types::DataType;

/// The result of rewriting one HFTA into K partition instances plus a
/// reunifying merge.
#[derive(Debug, Clone)]
pub struct PartitionedHfta {
    /// The shard plans, named `<query>#<k>`: each is a full copy of the
    /// original HFTA chain fed a hash-partitioned subsequence of the
    /// input stream.
    pub partitions: Vec<(String, Plan)>,
    /// The reunifying plan: an order-preserving [`Plan::Merge`] over the
    /// shard output streams on the surviving flush column.
    pub merge: Plan,
    /// The single input stream the original HFTA scanned; the deployer
    /// installs the hash router on this stream's edge.
    pub input: String,
    /// The aggregate's group-key expressions, valid over `input`'s
    /// schema. Hashing the evaluated key picks the shard.
    pub hash_exprs: Vec<PExpr>,
}

/// Try to rewrite `hfta` (deployed as query `name`) into `k` partition
/// instances plus a reunifying merge. Returns `None` when `k < 2` or the
/// plan is ineligible, in which case the caller deploys the plan as-is.
///
/// Eligibility (per the §2.1 ordering rules):
///
/// - the plan is a chain `Project/Filter* → Aggregate → Filter* →
///   StreamScan` — exactly one aggregate over exactly one input stream;
/// - the aggregate has a flush attribute whose imputed order is
///   increasing (possibly banded), i.e. [`OrderProp::partition_mergeable`];
/// - no group expression calls a UDF (hash routing must be a pure
///   function of the tuple, cheap enough to run once per routed tuple);
/// - the flush column survives to the root schema as an identity column
///   reference through every projection, still partition-mergeable and
///   of uint type there — that column is what the merge reunifies on.
pub fn partition_hfta(name: &str, hfta: &Plan, k: usize) -> Option<PartitionedHfta> {
    if k < 2 {
        return None;
    }
    // Peel the chain above the aggregate, remembering it top-down so the
    // flush column can be traced back up to the root schema.
    let mut above: Vec<&Plan> = Vec::new();
    let mut node = hfta;
    let agg = loop {
        match node {
            Plan::Project { input, .. } | Plan::Filter { input, .. } => {
                above.push(node);
                node = input;
            }
            Plan::Aggregate { .. } => break node,
            _ => return None,
        }
    };
    let Plan::Aggregate { group, flush_group_idx, input, schema: agg_schema, .. } = agg else {
        unreachable!("loop breaks only on Aggregate")
    };
    let fi = (*flush_group_idx)?;
    if !agg_schema.get(fi)?.order.partition_mergeable() {
        return None;
    }
    if group.iter().any(|(_, e)| e.has_call()) {
        return None;
    }
    // Below the aggregate: only schema-preserving filters down to a
    // single stream scan, so the group key can be evaluated directly on
    // the routed input tuples (a filter's schema IS its input's schema).
    let mut below = &**input;
    let stream = loop {
        match below {
            Plan::Filter { input, .. } => below = input,
            Plan::StreamScan { stream, .. } => break stream.clone(),
            _ => return None,
        }
    };
    // Trace the flush column from the aggregate's output to the root: it
    // must survive every projection as an identity column reference.
    let mut on_col = fi;
    for n in above.iter().rev() {
        match n {
            Plan::Filter { .. } => {}
            Plan::Project { cols, .. } => {
                on_col = cols
                    .iter()
                    .position(|(_, e)| matches!(e, PExpr::Col { index, .. } if *index == on_col))?;
            }
            _ => unreachable!("above holds only Project/Filter nodes"),
        }
    }
    let root_schema = hfta.schema();
    let on = root_schema.get(on_col)?;
    if !on.order.partition_mergeable() || on.ty != DataType::UInt {
        return None;
    }

    // K identical copies of the whole chain (pre-agg filters, aggregate,
    // HAVING, combine projection): each shard computes final answers for
    // the groups hashed to it.
    let partitions: Vec<(String, Plan)> =
        (0..k).map(|i| (format!("{name}#{i}"), hfta.clone())).collect();
    // The merge output keeps only the reunified column's order (weakened
    // by the interleave, e.g. strictness is lost); all other columns are
    // interleaved across shards and lose their ordering.
    let mut merged_schema = root_schema.clone();
    for (i, c) in merged_schema.iter_mut().enumerate() {
        c.order = if i == on_col {
            root_schema[on_col].order.merge_meet(&root_schema[on_col].order)
        } else {
            OrderProp::None
        };
    }
    let merge = Plan::Merge {
        inputs: partitions
            .iter()
            .map(|(pname, _)| Plan::StreamScan {
                stream: pname.clone(),
                schema: root_schema.clone(),
            })
            .collect(),
        on_col,
        schema: merged_schema,
    };
    let hash_exprs = group.iter().map(|(_, e)| e.clone()).collect();
    Some(PartitionedHfta { partitions, merge, input: stream, hash_exprs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AggFunc, BinOp};
    use crate::plan::{AggSpec, ColumnInfo, Literal};

    fn uintcol(name: &str, order: OrderProp) -> ColumnInfo {
        ColumnInfo { name: name.into(), ty: DataType::UInt, order }
    }

    fn col(i: usize) -> PExpr {
        PExpr::Col { index: i, ty: DataType::UInt }
    }

    /// `Project(Aggregate(StreamScan))` with group (time, key) flushing
    /// on time — the canonical eligible shape.
    fn eligible_hfta() -> Plan {
        let scan = Plan::StreamScan {
            stream: "src".into(),
            schema: vec![
                uintcol("time", OrderProp::Increasing { strict: false }),
                uintcol("key", OrderProp::None),
                uintcol("len", OrderProp::None),
            ],
        };
        let agg_schema = vec![
            uintcol("time", OrderProp::Increasing { strict: false }),
            uintcol("key", OrderProp::None),
            uintcol("cnt", OrderProp::None),
        ];
        let agg = Plan::Aggregate {
            group: vec![("time".into(), col(0)), ("key".into(), col(1))],
            aggs: vec![AggSpec {
                name: "cnt".into(),
                func: AggFunc::Count,
                arg: None,
                ty: DataType::UInt,
            }],
            flush_group_idx: Some(0),
            input: Box::new(scan),
            schema: agg_schema.clone(),
        };
        Plan::Project {
            // Reorders columns: the flush column lands at index 1.
            cols: vec![("cnt".into(), col(2)), ("time".into(), col(0))],
            input: Box::new(agg),
            schema: vec![
                uintcol("cnt", OrderProp::None),
                uintcol("time", OrderProp::Increasing { strict: false }),
            ],
        }
    }

    #[test]
    fn rewrites_eligible_aggregate() {
        let part = partition_hfta("q", &eligible_hfta(), 3).expect("eligible");
        assert_eq!(part.input, "src");
        let names: Vec<&str> = part.partitions.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["q#0", "q#1", "q#2"]);
        assert_eq!(part.hash_exprs, vec![col(0), col(1)]);
        let Plan::Merge { inputs, on_col, schema } = &part.merge else {
            panic!("merge root expected");
        };
        assert_eq!(inputs.len(), 3);
        assert_eq!(*on_col, 1, "flush column traced through the projection");
        assert_eq!(schema[1].order, OrderProp::Increasing { strict: false });
        assert_eq!(schema[0].order, OrderProp::None, "non-merge columns lose order");
    }

    #[test]
    fn parallelism_one_is_a_no_op() {
        assert!(partition_hfta("q", &eligible_hfta(), 1).is_none());
        assert!(partition_hfta("q", &eligible_hfta(), 0).is_none());
    }

    #[test]
    fn rejects_ineligible_shapes() {
        // No flush attribute: groups never close incrementally.
        let mut p = eligible_hfta();
        if let Plan::Project { input, .. } = &mut p {
            if let Plan::Aggregate { flush_group_idx, .. } = &mut **input {
                *flush_group_idx = None;
            }
        }
        assert!(partition_hfta("q", &p, 2).is_none());

        // Flush attribute not partition-mergeable (grouped order only).
        let mut p = eligible_hfta();
        if let Plan::Project { input, .. } = &mut p {
            if let Plan::Aggregate { schema, .. } = &mut **input {
                schema[0].order = OrderProp::IncreasingInGroup { group: vec!["key".into()] };
            }
        }
        assert!(partition_hfta("q", &p, 2).is_none());

        // UDF in the group key: routing must stay a pure hash.
        let mut p = eligible_hfta();
        if let Plan::Project { input, .. } = &mut p {
            if let Plan::Aggregate { group, .. } = &mut **input {
                group[1].1 = PExpr::Call {
                    udf: "f".into(),
                    args: vec![col(1)],
                    ret: DataType::UInt,
                    partial: false,
                };
            }
        }
        assert!(partition_hfta("q", &p, 2).is_none());

        // Flush column projected away: nothing to merge on.
        let mut p = eligible_hfta();
        if let Plan::Project { cols, .. } = &mut p {
            cols[1].1 = PExpr::Binary {
                op: BinOp::Add,
                left: Box::new(col(0)),
                right: Box::new(PExpr::Lit(Literal::UInt(1))),
                ty: DataType::UInt,
            };
        }
        assert!(partition_hfta("q", &p, 2).is_none());

        // Non-chain plan (merge leaf) is left alone.
        let m = Plan::Merge {
            inputs: vec![
                Plan::StreamScan { stream: "a".into(), schema: vec![] },
                Plan::StreamScan { stream: "b".into(), schema: vec![] },
            ],
            on_col: 0,
            schema: vec![],
        };
        assert!(partition_hfta("q", &m, 2).is_none());
    }
}
