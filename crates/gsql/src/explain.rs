//! Human-readable rendering of deployed query plans.
//!
//! Shows exactly what the paper's optimizer decided: which part of a query
//! became an LFTA at the capture point, what was pushed further down into
//! the (simulated) NIC as a BPF prefilter and snap length, and what remains
//! as HFTA stream operators.

use crate::ast::UnOp;
use crate::plan::{AggSpec, Literal, PExpr, Plan, Schema};
use crate::split::DeployedQuery;
use std::fmt::Write;

/// Render a deployed query as an indented plan description.
pub fn explain(dq: &DeployedQuery) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "query {}:", dq.name);
    if !dq.params.is_empty() {
        let ps: Vec<String> =
            dq.params.iter().map(|(n, t)| format!("${n}:{t}")).collect();
        let _ = writeln!(s, "  parameters: {}", ps.join(", "));
    }
    for l in &dq.lftas {
        let _ = writeln!(s, "  LFTA {} (at the capture point):", l.name);
        if let Some(p) = &l.prefilter {
            let _ = writeln!(
                s,
                "    NIC prefilter: BPF, {} instructions{}",
                p.insns().len(),
                match l.snaplen {
                    Some(sn) => format!(", snap length {sn} B"),
                    None => String::new(),
                }
            );
        } else if let Some(sn) = l.snaplen {
            let _ = writeln!(s, "    NIC snap length: {sn} B");
        }
        if let Some(p) = l.sample {
            let _ = writeln!(s, "    sampling: p = {p}");
        }
        if l.pre_aggregated {
            let _ = writeln!(s, "    pre-aggregation: direct-mapped eviction table");
        }
        render_plan(&mut s, &l.plan, 2);
    }
    match &dq.hfta {
        Some(h) => {
            let _ = writeln!(s, "  HFTA (stream operators):");
            render_plan(&mut s, h, 2);
        }
        None => {
            let _ = writeln!(s, "  HFTA: none (the query executes entirely as an LFTA)");
        }
    }
    let cols: Vec<String> = dq
        .schema
        .iter()
        .map(|c| format!("{}:{} [{}]", c.name, c.ty, c.order))
        .collect();
    let _ = writeln!(s, "  output: {}", cols.join(", "));
    s
}

/// Render one plan subtree, deepest (source) last, like EXPLAIN output.
pub fn render_plan(out: &mut String, plan: &Plan, indent: usize) {
    let pad = "  ".repeat(indent);
    match plan {
        Plan::ProtocolScan { interface, protocol, .. } => {
            let _ = writeln!(out, "{pad}scan {interface}.{protocol}");
        }
        Plan::StreamScan { stream, .. } => {
            let _ = writeln!(out, "{pad}read stream {stream}");
        }
        Plan::Filter { pred, input } => {
            let _ = writeln!(out, "{pad}filter {}", expr_str(pred, input.schema()));
            render_plan(out, input, indent);
        }
        Plan::Project { cols, input, .. } => {
            let cs: Vec<String> = cols
                .iter()
                .map(|(n, e)| {
                    let rendered = expr_str(e, input.schema());
                    if &rendered == n {
                        rendered
                    } else {
                        format!("{rendered} as {n}")
                    }
                })
                .collect();
            let _ = writeln!(out, "{pad}project {}", cs.join(", "));
            render_plan(out, input, indent);
        }
        Plan::Aggregate { group, aggs, flush_group_idx, input, .. } => {
            let gs: Vec<String> = group
                .iter()
                .enumerate()
                .map(|(i, (n, e))| {
                    let star = if Some(i) == *flush_group_idx { "*" } else { "" };
                    format!("{}{star} = {}", n, expr_str(e, input.schema()))
                })
                .collect();
            let as_: Vec<String> =
                aggs.iter().map(|a| agg_str(a, input.schema())).collect();
            let _ = writeln!(
                out,
                "{pad}aggregate [{}] compute [{}]  (* = ordered flush key)",
                gs.join(", "),
                as_.join(", ")
            );
            render_plan(out, input, indent);
        }
        Plan::Join { left, right, window, residual, cols, .. } => {
            let l = left.schema();
            let r = right.schema();
            let win = if window.lo == window.hi {
                format!(
                    "{} = {}{}",
                    col_name(l, window.left_col),
                    col_name(r, window.right_col),
                    if window.lo != 0 { format!(" {}", fmt_signed(window.lo)) } else { String::new() }
                )
            } else {
                format!(
                    "{} in [{} {}, {} {}]",
                    col_name(l, window.left_col),
                    col_name(r, window.right_col),
                    fmt_signed(window.lo),
                    col_name(r, window.right_col),
                    fmt_signed(window.hi),
                )
            };
            let mut concat = l.clone();
            concat.extend(r.iter().cloned());
            let mut line = format!("{pad}join window [{win}]");
            if let Some(res) = residual {
                // The same classification the executor applies, so EXPLAIN
                // shows exactly what will run.
                let (eq_keys, rest) =
                    crate::plan::split_join_conjuncts(res, l.len());
                if !eq_keys.is_empty() {
                    let hk: Vec<String> = eq_keys
                        .iter()
                        .map(|&(li, ri)| {
                            format!("{} = {}", col_name(l, li), col_name(r, ri))
                        })
                        .collect();
                    let _ = write!(line, " hash [{}]", hk.join(", "));
                }
                if !rest.is_empty() {
                    let rs: Vec<String> =
                        rest.iter().map(|c| expr_str(c, &concat)).collect();
                    let _ = write!(line, " residual {}", rs.join(" AND "));
                }
            }
            let cs: Vec<String> =
                cols.iter().map(|(n, e)| {
                    let rendered = expr_str(e, &concat);
                    if &rendered == n { rendered } else { format!("{rendered} as {n}") }
                }).collect();
            let _ = writeln!(out, "{line} project {}", cs.join(", "));
            render_plan(out, left, indent + 1);
            render_plan(out, right, indent + 1);
        }
        Plan::Merge { inputs, on_col, schema } => {
            let _ = writeln!(out, "{pad}merge on {}", col_name(schema, *on_col));
            for i in inputs {
                render_plan(out, i, indent + 1);
            }
        }
    }
}

fn fmt_signed(v: i64) -> String {
    if v >= 0 {
        format!("+ {v}")
    } else {
        format!("- {}", -v)
    }
}

fn col_name(schema: &Schema, i: usize) -> String {
    schema.get(i).map(|c| c.name.clone()).unwrap_or_else(|| format!("#{i}"))
}

fn agg_str(a: &AggSpec, schema: &Schema) -> String {
    match &a.arg {
        Some(e) => format!("{} = {}({})", a.name, a.func, expr_str(e, schema)),
        None => format!("{} = {}(*)", a.name, a.func),
    }
}

/// Render a resolved expression with column names from `schema`.
pub fn expr_str(e: &PExpr, schema: &Schema) -> String {
    match e {
        PExpr::Col { index, .. } => col_name(schema, *index),
        PExpr::Lit(l) => lit_str(l),
        PExpr::Param { name, .. } => format!("${name}"),
        PExpr::Unary { op: UnOp::Not, arg } => format!("NOT ({})", expr_str(arg, schema)),
        PExpr::Binary { op, left, right, .. } => {
            let l = expr_str(left, schema);
            let r = expr_str(right, schema);
            // Parenthesize nested binaries for unambiguous output.
            let wrap = |s: String, e: &PExpr| {
                if matches!(e, PExpr::Binary { .. }) {
                    format!("({s})")
                } else {
                    s
                }
            };
            format!("{} {} {}", wrap(l, left), op.symbol(), wrap(r, right))
        }
        PExpr::Call { udf, args, .. } => {
            let a: Vec<String> = args.iter().map(|x| expr_str(x, schema)).collect();
            format!("{udf}({})", a.join(", "))
        }
    }
}

fn lit_str(l: &Literal) -> String {
    match l {
        Literal::Bool(b) => b.to_string().to_uppercase(),
        Literal::UInt(v) => v.to_string(),
        Literal::Float(v) => format!("{v}"),
        Literal::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Literal::Ip(v) => gs_packet::ip::fmt_ipv4(*v),
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::catalog::{Catalog, InterfaceDef};
    use crate::parser::parse_query;
    use crate::split::split_query;
    use gs_packet::capture::LinkType;

    fn deploy(src: &str) -> DeployedQuery {
        let mut c = Catalog::with_builtins();
        c.add_interface(InterfaceDef { name: "eth0".into(), id: 0, link: LinkType::Ethernet });
        c.add_interface(InterfaceDef { name: "eth1".into(), id: 1, link: LinkType::Ethernet });
        let aq = analyze(&parse_query(src).unwrap(), &c).unwrap();
        split_query(&aq, &c).unwrap()
    }

    #[test]
    fn explains_single_lfta_query() {
        let text = explain(&deploy(
            "DEFINE { query_name q; } \
             Select time, destPort From eth0.tcp Where destPort = 80",
        ));
        assert!(text.contains("LFTA q (at the capture point):"), "{text}");
        assert!(text.contains("NIC prefilter: BPF"), "{text}");
        assert!(text.contains("snap length 128 B"), "{text}");
        assert!(text.contains("filter destPort = 80"), "{text}");
        assert!(text.contains("scan eth0.tcp"), "{text}");
        assert!(text.contains("HFTA: none"), "{text}");
        assert!(text.contains("time:uint [increasing]"), "{text}");
    }

    #[test]
    fn explains_split_aggregation() {
        let text = explain(&deploy(
            "DEFINE { query_name counts; } \
             Select tb, count(*), sum(len) From eth0.ip Group By time/60 as tb",
        ));
        assert!(text.contains("pre-aggregation: direct-mapped eviction table"), "{text}");
        assert!(text.contains("aggregate [tb* = time / 60]"), "{text}");
        assert!(text.contains("HFTA (stream operators):"), "{text}");
        assert!(text.contains("read stream counts__lfta0"), "{text}");
        assert!(text.contains("sum(count)"), "{text}");
    }

    #[test]
    fn explains_join_with_window_and_residual() {
        let text = explain(&deploy(
            "DEFINE { query_name j; } \
             Select B.time FROM eth0.tcp B, eth1.tcp C \
             WHERE B.time >= C.time - 1 and B.time <= C.time + 1 \
             and B.srcIP = C.srcIP and B.len > C.len",
        ));
        assert!(text.contains("join window [time in [time - 1, time + 1]]"), "{text}");
        assert!(text.contains("hash [srcIP = srcIP]"), "{text}");
        assert!(text.contains("residual len > len"), "{text}");
        assert!(text.contains("banded-increasing(2)"), "{text}");
    }

    #[test]
    fn explains_parameters_and_sampling() {
        let mut c = Catalog::with_builtins();
        c.add_interface(InterfaceDef { name: "eth0".into(), id: 0, link: LinkType::Ethernet });
        let q = parse_query(
            "DEFINE { query_name s; sample 0.25; } \
             Select time From eth0.tcp Where destPort = $port",
        )
        .unwrap();
        let aq = analyze(&q, &c).unwrap();
        let dq = split_query(&aq, &c).unwrap();
        let text = explain(&dq);
        assert!(text.contains("parameters: $port:uint"), "{text}");
        assert!(text.contains("sampling: p = 0.25"), "{text}");
        assert!(text.contains("$port"), "{text}");
    }
}
