//! Predicate pushdown to the NIC: compile simple selection conjuncts into
//! BPF programs ("push the query as far down the processing stack as
//! possible, even into the network interface card itself", paper §3).
//!
//! A conjunct compiles when it compares a fixed-offset packet field with a
//! constant (literal, or a parameter whose binding is supplied). The
//! emitted program always begins with the protocol guards (ethertype,
//! IP version, transport protocol, zero fragment offset when transport
//! fields are read), so it implements the Protocol prefilter too.

use crate::ast::BinOp;
use crate::plan::{Literal, PExpr};
use gs_nic::bpf::{BpfProgram, Insn};
use gs_packet::capture::LinkType;
use std::collections::HashMap;

/// Result of attempting pushdown for one LFTA.
#[derive(Debug, Clone)]
pub struct Pushdown {
    /// The compiled prefilter, when at least the protocol guard compiled.
    pub program: Option<BpfProgram>,
    /// Indices (into the supplied conjunct list) that the program absorbs.
    /// They may safely stay in the LFTA as well — the program is a
    /// data-reduction prefilter, not a replacement.
    pub compiled_conjuncts: Vec<usize>,
}

/// A packet field the compiler knows how to load.
struct FieldLoad {
    /// Instructions leaving the field value in `A`.
    insns: Vec<Insn>,
    /// Whether the load needs the transport guards (frag offset 0).
    needs_transport: bool,
}

/// Compile the prefilter for a protocol scan.
///
/// * `protocol` — the Protocol stream (`ip`, `tcp`, `udp`, `icmp`);
///   Netflow/BGP links have no packet-level prefilter.
/// * `link` — the interface link type (affects the L3 offset).
/// * `conjuncts` — candidate cheap conjuncts over the protocol schema.
/// * `field_of_col` — maps a `PExpr::Col` index to its field name.
/// * `params` — bound parameter values, if instantiated.
/// * `snaplen` — snap length to return on accept (`None` = whole packet).
pub fn compile_prefilter(
    protocol: &str,
    link: LinkType,
    conjuncts: &[PExpr],
    field_of_col: &dyn Fn(usize) -> Option<String>,
    params: &HashMap<String, Literal>,
    snaplen: Option<u32>,
) -> Pushdown {
    let l3: u32 = match link {
        LinkType::Ethernet => 14,
        LinkType::RawIp => 0,
        // Record-oriented links carry no packet headers to filter on.
        LinkType::NetflowRecord | LinkType::BgpUpdate => {
            return Pushdown { program: None, compiled_conjuncts: Vec::new() }
        }
    };
    let transport_proto: Option<u32> = match protocol {
        "tcp" => Some(6),
        "udp" => Some(17),
        "icmp" => Some(1),
        "ip" => None,
        // `pkt` accepts non-IP traffic; no guard can be emitted.
        _ => return Pushdown { program: None, compiled_conjuncts: Vec::new() },
    };

    let mut asm = Asm::new();
    // Protocol guards.
    if link == LinkType::Ethernet {
        asm.push(Insn::LdH(12));
        asm.jump_unless_eq(0x0800);
    }
    asm.push(Insn::LdB(l3));
    asm.push(Insn::Rsh(4));
    asm.jump_unless_eq(4);
    if let Some(proto) = transport_proto {
        asm.push(Insn::LdB(l3 + 9));
        asm.jump_unless_eq(proto);
    }

    // Compile each conjunct that fits the `field cmp const` shape.
    let mut compiled = Vec::new();
    let mut needs_transport = transport_proto.is_some() && protocol != "ip";
    let mut tests: Vec<(FieldLoad, BinOp, u32)> = Vec::new();
    for (i, c) in conjuncts.iter().enumerate() {
        if let Some((load, op, k)) = compile_comparison(c, l3, field_of_col, params) {
            needs_transport |= load.needs_transport;
            tests.push((load, op, k));
            compiled.push(i);
        }
    }
    if needs_transport {
        // Transport fields of non-first fragments are payload bytes;
        // reject fragments before testing them.
        asm.push(Insn::LdH(l3 + 6));
        asm.jump_if_set(0x1fff);
    }
    for (load, op, k) in tests {
        for insn in load.insns {
            asm.push(insn);
        }
        asm.jump_unless(op, k);
    }

    let program = asm.finish(snaplen.unwrap_or(u32::MAX));
    let compiled_conjuncts = if program.is_some() { compiled } else { Vec::new() };
    Pushdown { program, compiled_conjuncts }
}

/// Compile `col cmp literal` (either orientation) into a field load plus a
/// comparison against a 32-bit constant.
fn compile_comparison(
    pe: &PExpr,
    l3: u32,
    field_of_col: &dyn Fn(usize) -> Option<String>,
    params: &HashMap<String, Literal>,
) -> Option<(FieldLoad, BinOp, u32)> {
    let PExpr::Binary { op, left, right, .. } = pe else { return None };
    if !op.is_comparison() {
        return None;
    }
    let (col, lit, op) = match (const_value(left, params), const_value(right, params)) {
        (None, Some(k)) => (left, k, *op),
        (Some(k), None) => (right, k, mirror(*op)),
        _ => return None,
    };
    let PExpr::Col { index, .. } = **col else { return None };
    let field = field_of_col(index)?;
    let load = field_load(&field, l3)?;
    Some((load, op, lit))
}

fn mirror(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn const_value(e: &PExpr, params: &HashMap<String, Literal>) -> Option<u32> {
    let lit = match e {
        PExpr::Lit(l) => l,
        PExpr::Param { name, .. } => params.get(name)?,
        _ => return None,
    };
    match lit {
        Literal::UInt(v) => u32::try_from(*v).ok(),
        Literal::Ip(v) => Some(*v),
        Literal::Bool(b) => Some(u32::from(*b)),
        _ => None,
    }
}

/// Loader for a protocol field, or `None` if it cannot be read at a fixed
/// or IHL-relative offset.
fn field_load(field: &str, l3: u32) -> Option<FieldLoad> {
    let fixed = |insns: Vec<Insn>| Some(FieldLoad { insns, needs_transport: false });
    let transport = |insns: Vec<Insn>| Some(FieldLoad { insns, needs_transport: true });
    match field {
        "IPVersion" => fixed(vec![Insn::LdB(l3), Insn::Rsh(4)]),
        "Protocol" => fixed(vec![Insn::LdB(l3 + 9)]),
        "tos" => fixed(vec![Insn::LdB(l3 + 1)]),
        "ttl" => fixed(vec![Insn::LdB(l3 + 8)]),
        "id" => fixed(vec![Insn::LdH(l3 + 4)]),
        "totalLen" => fixed(vec![Insn::LdH(l3 + 2)]),
        "srcIP" => fixed(vec![Insn::LdW(l3 + 12)]),
        "destIP" => fixed(vec![Insn::LdW(l3 + 16)]),
        // Transport fields: X = IP header length, loads are X-relative.
        "srcPort" => transport(vec![Insn::LdxMshB(l3), Insn::LdIndH(l3)]),
        "destPort" => transport(vec![Insn::LdxMshB(l3), Insn::LdIndH(l3 + 2)]),
        "icmpType" => transport(vec![Insn::LdxMshB(l3), Insn::LdIndB(l3)]),
        "icmpCode" => transport(vec![Insn::LdxMshB(l3), Insn::LdIndB(l3 + 1)]),
        _ => None,
    }
}

/// One atomic conjunct of a query's selection predicate, normalized for
/// cross-query sharing.
///
/// Two queries that filter on the same protocol with equivalent conjuncts
/// (after parameter substitution and constant-side normalization) produce
/// atoms with equal `key`s, so the shared prefilter evaluates the conjunct
/// once per packet and both queries read the same verdict bit.
#[derive(Debug, Clone)]
pub struct Atom {
    /// Canonical identity: protocol name plus the normalized rendering.
    pub key: String,
    /// The normalized, parameter-substituted conjunct, over the protocol
    /// schema's column indices.
    pub expr: PExpr,
}

/// Result of [`extract_atoms`]: the shareable atoms plus the conjuncts
/// that must stay private to the query.
#[derive(Debug, Clone, Default)]
pub struct AtomSplit {
    /// Shareable atomic conjuncts (deduplicated within the query).
    pub atoms: Vec<Atom>,
    /// Conjuncts that did not atomize (UDF calls or unbound parameters);
    /// the query evaluates these itself after dispatch.
    pub residual: Vec<PExpr>,
}

/// Split a query's selection conjuncts into shareable atoms and a private
/// residual.
///
/// A conjunct atomizes when it is UDF-free and every parameter it mentions
/// has a binding (so the substituted expression is a closed function of the
/// packet). Atomized conjuncts are normalized — parameters replaced by
/// their literals, top-level `literal cmp column` comparisons mirrored to
/// `column cmp literal` — and keyed on the protocol name plus a canonical
/// rendering, so structurally equivalent predicates from different queries
/// collide into one shared table entry.
pub fn extract_atoms(
    protocol: &str,
    conjuncts: &[PExpr],
    params: &HashMap<String, Literal>,
) -> AtomSplit {
    let mut split = AtomSplit::default();
    for c in conjuncts {
        match subst_params(c, params) {
            Some(e) => {
                let e = normalize_mirror(e);
                let mut key = String::new();
                key.push_str(protocol);
                key.push(':');
                canon(&e, &mut key);
                if !split.atoms.iter().any(|a| a.key == key) {
                    split.atoms.push(Atom { key, expr: e });
                }
            }
            None => split.residual.push(c.clone()),
        }
    }
    split
}

/// Replace bound parameters with their literals; `None` when the
/// expression contains a UDF call or an unbound parameter.
fn subst_params(e: &PExpr, params: &HashMap<String, Literal>) -> Option<PExpr> {
    match e {
        PExpr::Param { name, .. } => params.get(name).cloned().map(PExpr::Lit),
        PExpr::Lit(_) | PExpr::Col { .. } => Some(e.clone()),
        PExpr::Unary { op, arg } => {
            Some(PExpr::Unary { op: *op, arg: Box::new(subst_params(arg, params)?) })
        }
        PExpr::Binary { op, left, right, ty } => Some(PExpr::Binary {
            op: *op,
            left: Box::new(subst_params(left, params)?),
            right: Box::new(subst_params(right, params)?),
            ty: *ty,
        }),
        PExpr::Call { .. } => None,
    }
}

/// Put the constant on the right of a top-level comparison so `80 =
/// destPort` and `destPort = 80` share a key.
fn normalize_mirror(e: PExpr) -> PExpr {
    if let PExpr::Binary { op, left, right, ty } = &e {
        if op.is_comparison() && matches!(**left, PExpr::Lit(_)) && !matches!(**right, PExpr::Lit(_))
        {
            return PExpr::Binary {
                op: mirror(*op),
                left: right.clone(),
                right: left.clone(),
                ty: *ty,
            };
        }
    }
    e
}

/// Deterministic structural rendering used for atom identity.
fn canon(e: &PExpr, out: &mut String) {
    use std::fmt::Write;
    match e {
        PExpr::Col { index, .. } => {
            let _ = write!(out, "#{index}");
        }
        PExpr::Lit(l) => {
            let _ = write!(out, "{l:?}");
        }
        PExpr::Param { name, .. } => {
            let _ = write!(out, "${name}");
        }
        PExpr::Unary { op, arg } => {
            let _ = write!(out, "{op:?}(");
            canon(arg, out);
            out.push(')');
        }
        PExpr::Binary { op, left, right, .. } => {
            let _ = write!(out, "{op:?}(");
            canon(left, out);
            out.push(',');
            canon(right, out);
            out.push(')');
        }
        PExpr::Call { udf, args, .. } => {
            let _ = write!(out, "{udf}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                canon(a, out);
            }
            out.push(')');
        }
    }
}

/// Tiny assembler: straight-line tests that each either fall through or
/// jump to a shared reject label at the end.
struct Asm {
    insns: Vec<Insn>,
    /// Positions of jumps whose reject offset needs patching, with which
    /// slot (`true` = jt is the reject branch).
    fixups: Vec<(usize, bool)>,
}

impl Asm {
    fn new() -> Asm {
        Asm { insns: Vec::new(), fixups: Vec::new() }
    }

    fn push(&mut self, i: Insn) {
        self.insns.push(i);
    }

    /// Fall through when `A == k`, else reject.
    fn jump_unless_eq(&mut self, k: u32) {
        self.fixups.push((self.insns.len(), false));
        self.insns.push(Insn::Jeq(k, 0, 0xFF));
    }

    /// Reject when `A & k != 0` (fragment test).
    fn jump_if_set(&mut self, k: u32) {
        self.fixups.push((self.insns.len(), true));
        self.insns.push(Insn::Jset(k, 0xFF, 0));
    }

    /// Fall through when `A op k` holds, else reject.
    fn jump_unless(&mut self, op: BinOp, k: u32) {
        let (insn, reject_on_true) = match op {
            BinOp::Eq => (Insn::Jeq(k, 0, 0xFF), false),
            BinOp::Ne => (Insn::Jeq(k, 0xFF, 0), true),
            BinOp::Gt => (Insn::Jgt(k, 0, 0xFF), false),
            BinOp::Ge => (Insn::Jge(k, 0, 0xFF), false),
            BinOp::Lt => (Insn::Jge(k, 0xFF, 0), true),
            BinOp::Le => (Insn::Jgt(k, 0xFF, 0), true),
            _ => unreachable!("comparison ops only"),
        };
        self.fixups.push((self.insns.len(), reject_on_true));
        self.insns.push(insn);
    }

    /// Append accept/reject returns and patch the reject offsets.
    fn finish(mut self, accept: u32) -> Option<BpfProgram> {
        let accept_idx = self.insns.len();
        self.insns.push(Insn::RetImm(accept));
        self.insns.push(Insn::RetImm(0));
        let reject_idx = accept_idx + 1;
        for (pc, reject_is_jt) in self.fixups {
            let delta = reject_idx - pc - 1;
            let delta = u8::try_from(delta).ok()?;
            match &mut self.insns[pc] {
                Insn::Jeq(_, jt, jf)
                | Insn::Jgt(_, jt, jf)
                | Insn::Jge(_, jt, jf)
                | Insn::Jset(_, jt, jf) => {
                    if reject_is_jt {
                        *jt = delta;
                    } else {
                        *jf = delta;
                    }
                }
                _ => unreachable!("fixups only reference jumps"),
            }
        }
        BpfProgram::new(self.insns).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;
    use gs_packet::builder::FrameBuilder;

    /// TCP protocol schema column mapping for tests.
    fn tcp_fields(i: usize) -> Option<String> {
        gs_packet::interp::protocol("tcp").unwrap().fields.get(i).map(|f| f.name.to_string())
    }

    fn col(name: &str) -> PExpr {
        let p = gs_packet::interp::protocol("tcp").unwrap();
        let i = p.field_index(name).unwrap();
        PExpr::Col { index: i, ty: DataType::UInt }
    }

    fn cmp(l: PExpr, op: BinOp, k: u64) -> PExpr {
        PExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(PExpr::Lit(Literal::UInt(k))),
            ty: DataType::Bool,
        }
    }

    fn push(conjuncts: &[PExpr]) -> Pushdown {
        compile_prefilter(
            "tcp",
            LinkType::Ethernet,
            conjuncts,
            &tcp_fields,
            &HashMap::new(),
            None,
        )
    }

    #[test]
    fn port_filter_compiles_and_filters() {
        let pd = push(&[cmp(col("destPort"), BinOp::Eq, 80)]);
        let prog = pd.program.unwrap();
        assert_eq!(pd.compiled_conjuncts, vec![0]);
        let yes = FrameBuilder::tcp(1, 2, 999, 80).payload(b"x").build_ethernet();
        let no = FrameBuilder::tcp(1, 2, 999, 81).payload(b"x").build_ethernet();
        let udp = FrameBuilder::udp(1, 2, 999, 80).payload(b"x").build_ethernet();
        assert!(prog.accepts(&yes));
        assert!(!prog.accepts(&no));
        assert!(!prog.accepts(&udp), "protocol guard rejects UDP");
    }

    #[test]
    fn guards_alone_when_nothing_compiles() {
        // A payload comparison cannot compile, but the TCP guard still can.
        let payload_idx =
            gs_packet::interp::protocol("tcp").unwrap().field_index("payload").unwrap();
        let pd = push(&[cmp(
            PExpr::Col { index: payload_idx, ty: DataType::Str },
            BinOp::Eq,
            0,
        )]);
        let prog = pd.program.unwrap();
        let tcp = FrameBuilder::tcp(1, 2, 1, 2).build_ethernet();
        let udp = FrameBuilder::udp(1, 2, 1, 2).build_ethernet();
        assert!(prog.accepts(&tcp));
        assert!(!prog.accepts(&udp));
    }

    #[test]
    fn range_and_ip_comparisons() {
        let src_idx = gs_packet::interp::protocol("tcp").unwrap().field_index("srcIP").unwrap();
        let pd = push(&[
            cmp(col("ttl"), BinOp::Gt, 5),
            PExpr::Binary {
                op: BinOp::Eq,
                left: Box::new(PExpr::Col { index: src_idx, ty: DataType::Ip }),
                right: Box::new(PExpr::Lit(Literal::Ip(0x0a000001))),
                ty: DataType::Bool,
            },
        ]);
        let prog = pd.program.unwrap();
        assert_eq!(pd.compiled_conjuncts, vec![0, 1]);
        let ok = FrameBuilder::tcp(0x0a000001, 2, 1, 2).ttl(64).build_ethernet();
        let low_ttl = FrameBuilder::tcp(0x0a000001, 2, 1, 2).ttl(3).build_ethernet();
        let wrong_src = FrameBuilder::tcp(0x0a000002, 2, 1, 2).ttl(64).build_ethernet();
        assert!(prog.accepts(&ok));
        assert!(!prog.accepts(&low_ttl));
        assert!(!prog.accepts(&wrong_src));
    }

    #[test]
    fn mirrored_literal_first() {
        // `80 = destPort`
        let pd = push(&[PExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(PExpr::Lit(Literal::UInt(80))),
            right: Box::new(col("destPort")),
            ty: DataType::Bool,
        }]);
        let prog = pd.program.unwrap();
        assert!(prog.accepts(&FrameBuilder::tcp(1, 2, 9, 80).build_ethernet()));
        assert!(!prog.accepts(&FrameBuilder::tcp(1, 2, 9, 81).build_ethernet()));
    }

    #[test]
    fn bound_params_compile() {
        let mut params = HashMap::new();
        params.insert("port".to_string(), Literal::UInt(443));
        let conj = PExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(col("destPort")),
            right: Box::new(PExpr::Param { name: "port".into(), ty: DataType::UInt }),
            ty: DataType::Bool,
        };
        let pd = compile_prefilter(
            "tcp",
            LinkType::Ethernet,
            std::slice::from_ref(&conj),
            &tcp_fields,
            &params,
            Some(96),
        );
        let prog = pd.program.unwrap();
        let yes = FrameBuilder::tcp(1, 2, 9, 443).build_ethernet();
        assert_eq!(prog.run(&yes), 96, "accept returns the snap length");
        // Unbound parameter: the conjunct is skipped but guards remain.
        let pd2 = compile_prefilter(
            "tcp",
            LinkType::Ethernet,
            std::slice::from_ref(&conj),
            &tcp_fields,
            &HashMap::new(),
            None,
        );
        assert!(pd2.compiled_conjuncts.is_empty());
        assert!(pd2.program.unwrap().accepts(&FrameBuilder::tcp(1, 2, 9, 80).build_ethernet()));
    }

    #[test]
    fn fragments_rejected_when_ports_tested() {
        let pd = push(&[cmp(col("destPort"), BinOp::Eq, 80)]);
        let prog = pd.program.unwrap();
        let frag = FrameBuilder::tcp(1, 2, 9, 80)
            .payload(&[0u8; 64])
            .fragment(4, false)
            .build_ethernet();
        assert!(!prog.accepts(&frag));
    }

    #[test]
    fn record_links_have_no_prefilter() {
        let pd = compile_prefilter(
            "netflow",
            LinkType::NetflowRecord,
            &[],
            &|_| None,
            &HashMap::new(),
            None,
        );
        assert!(pd.program.is_none());
    }

    #[test]
    fn raw_ip_link_offsets() {
        let pd = compile_prefilter(
            "tcp",
            LinkType::RawIp,
            &[cmp(col("destPort"), BinOp::Eq, 80)],
            &tcp_fields,
            &HashMap::new(),
            None,
        );
        let prog = pd.program.unwrap();
        assert!(prog.accepts(&FrameBuilder::tcp(1, 2, 9, 80).build_raw_ip()));
        assert!(!prog.accepts(&FrameBuilder::tcp(1, 2, 9, 81).build_raw_ip()));
    }

    #[test]
    fn atoms_dedupe_and_mirror() {
        // `destPort = 80` and `80 = destPort` share one key.
        let a = cmp(col("destPort"), BinOp::Eq, 80);
        let b = PExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(PExpr::Lit(Literal::UInt(80))),
            right: Box::new(col("destPort")),
            ty: DataType::Bool,
        };
        let s1 = extract_atoms("tcp", std::slice::from_ref(&a), &HashMap::new());
        let s2 = extract_atoms("tcp", std::slice::from_ref(&b), &HashMap::new());
        assert_eq!(s1.atoms.len(), 1);
        assert_eq!(s1.atoms[0].key, s2.atoms[0].key);
        assert!(s1.residual.is_empty() && s2.residual.is_empty());
        // Mirroring an ordering comparison flips the operator.
        let c = PExpr::Binary {
            op: BinOp::Lt,
            left: Box::new(PExpr::Lit(Literal::UInt(5))),
            right: Box::new(col("ttl")),
            ty: DataType::Bool,
        };
        let d = cmp(col("ttl"), BinOp::Gt, 5);
        let s3 = extract_atoms("tcp", std::slice::from_ref(&c), &HashMap::new());
        let s4 = extract_atoms("tcp", std::slice::from_ref(&d), &HashMap::new());
        assert_eq!(s3.atoms[0].key, s4.atoms[0].key);
        // Different protocols never share, even with identical expressions.
        let s5 = extract_atoms("udp", std::slice::from_ref(&a), &HashMap::new());
        assert_ne!(s1.atoms[0].key, s5.atoms[0].key);
    }

    #[test]
    fn atoms_substitute_bound_params_and_reject_unbound() {
        let conj = PExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(col("destPort")),
            right: Box::new(PExpr::Param { name: "port".into(), ty: DataType::UInt }),
            ty: DataType::Bool,
        };
        let mut params = HashMap::new();
        params.insert("port".to_string(), Literal::UInt(443));
        let bound = extract_atoms("tcp", std::slice::from_ref(&conj), &params);
        assert_eq!(bound.atoms.len(), 1);
        // Bound param keys match the equivalent literal form.
        let lit = cmp(col("destPort"), BinOp::Eq, 443);
        let lit_split = extract_atoms("tcp", std::slice::from_ref(&lit), &HashMap::new());
        assert_eq!(bound.atoms[0].key, lit_split.atoms[0].key);
        // Unbound param -> residual, not an atom.
        let unbound = extract_atoms("tcp", std::slice::from_ref(&conj), &HashMap::new());
        assert!(unbound.atoms.is_empty());
        assert_eq!(unbound.residual.len(), 1);
    }

    #[test]
    fn udf_calls_stay_residual() {
        let call = PExpr::Call {
            udf: "str_regex_match".into(),
            args: vec![col("destPort")],
            ret: DataType::Bool,
            partial: false,
        };
        let s = extract_atoms("tcp", std::slice::from_ref(&call), &HashMap::new());
        assert!(s.atoms.is_empty());
        assert_eq!(s.residual.len(), 1);
    }

    #[test]
    fn ne_lt_le_ops() {
        for (op, port, pass) in [
            (BinOp::Ne, 80u64, false),
            (BinOp::Ne, 81, true),
            (BinOp::Lt, 81, true),
            (BinOp::Lt, 80, false),
            (BinOp::Le, 80, true),
            (BinOp::Le, 79, false),
        ] {
            let pd = push(&[cmp(col("destPort"), op, port)]);
            let prog = pd.program.unwrap();
            let pkt = FrameBuilder::tcp(1, 2, 9, 80).build_ethernet();
            assert_eq!(prog.accepts(&pkt), pass, "destPort(80) {op:?} {port}");
        }
    }
}
