//! Diagnostics for the GSQL front end.

use std::fmt;

/// Source position (byte offset and 1-based line/column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Byte offset into the source text.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Any error produced while lexing, parsing, analyzing, or splitting GSQL.
#[derive(Debug, Clone, PartialEq)]
pub struct GsqlError {
    /// Which phase rejected the input.
    pub phase: Phase,
    /// Human-readable description.
    pub message: String,
    /// Source position, when known.
    pub pos: Option<Pos>,
}

/// Front-end phase that produced an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenizer.
    Lex,
    /// Parser.
    Parse,
    /// Semantic analysis (names, types, restrictions).
    Analyze,
    /// Query splitting / optimization.
    Plan,
}

impl GsqlError {
    /// Build a lexer error.
    pub fn lex(message: impl Into<String>, pos: Pos) -> GsqlError {
        GsqlError { phase: Phase::Lex, message: message.into(), pos: Some(pos) }
    }

    /// Build a parser error.
    pub fn parse(message: impl Into<String>, pos: Pos) -> GsqlError {
        GsqlError { phase: Phase::Parse, message: message.into(), pos: Some(pos) }
    }

    /// Build an analyzer error.
    pub fn analyze(message: impl Into<String>) -> GsqlError {
        GsqlError { phase: Phase::Analyze, message: message.into(), pos: None }
    }

    /// Build a planner error.
    pub fn plan(message: impl Into<String>) -> GsqlError {
        GsqlError { phase: Phase::Plan, message: message.into(), pos: None }
    }
}

impl fmt::Display for GsqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Analyze => "analyze",
            Phase::Plan => "plan",
        };
        match self.pos {
            Some(p) => write!(f, "{phase} error at {p}: {}", self.message),
            None => write!(f, "{phase} error: {}", self.message),
        }
    }
}

impl std::error::Error for GsqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_pos() {
        let e = GsqlError::parse("expected FROM", Pos { offset: 10, line: 2, col: 3 });
        assert_eq!(e.to_string(), "parse error at 2:3: expected FROM");
        let e = GsqlError::analyze("unknown column x");
        assert_eq!(e.to_string(), "analyze error: unknown column x");
    }
}
