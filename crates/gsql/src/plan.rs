//! Logical query plans.
//!
//! The analyzer lowers an AST into a [`Plan`] tree whose expressions
//! ([`PExpr`]) reference input columns by index and whose every node knows
//! its output [`Schema`] — column names, types, and imputed ordering
//! properties. The optimizer (split/pushdown) rewrites these trees; the
//! runtime compiles them into operators.

use crate::ast::{AggFunc, BinOp, UnOp};
use crate::ordering::OrderProp;
use crate::types::DataType;

/// One output column: name, type, and imputed ordering property.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnInfo {
    /// Column name (alias or derived).
    pub name: String,
    /// Value type.
    pub ty: DataType,
    /// Imputed ordering property within the output stream.
    pub order: OrderProp,
}

/// An output schema.
pub type Schema = Vec<ColumnInfo>;

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// IPv4 address.
    Ip(u32),
}

impl Literal {
    /// The literal's type.
    pub fn ty(&self) -> DataType {
        match self {
            Literal::Bool(_) => DataType::Bool,
            Literal::UInt(_) => DataType::UInt,
            Literal::Float(_) => DataType::Float,
            Literal::Str(_) => DataType::Str,
            Literal::Ip(_) => DataType::Ip,
        }
    }
}

/// A resolved, typed expression over an input schema.
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    /// Input column by index.
    Col {
        /// Index into the input schema (for joins, left columns then right).
        index: usize,
        /// Type of the column.
        ty: DataType,
    },
    /// Constant.
    Lit(Literal),
    /// Query parameter, bound at instantiation.
    Param {
        /// Parameter name (without the `$`).
        name: String,
        /// Inferred type.
        ty: DataType,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        arg: Box<PExpr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<PExpr>,
        /// Right operand.
        right: Box<PExpr>,
        /// Result type.
        ty: DataType,
    },
    /// Resolved UDF call.
    Call {
        /// Function name (the runtime resolves the implementation).
        udf: String,
        /// Arguments; pass-by-handle positions hold literals/params only.
        args: Vec<PExpr>,
        /// Return type.
        ret: DataType,
        /// Whether the function is *partial*: no result discards the tuple
        /// (the paper's foreign-key-join-like semantics).
        partial: bool,
    },
}

impl PExpr {
    /// The expression's result type.
    pub fn ty(&self) -> DataType {
        match self {
            PExpr::Col { ty, .. } => *ty,
            PExpr::Lit(l) => l.ty(),
            PExpr::Param { ty, .. } => *ty,
            PExpr::Unary { .. } => DataType::Bool,
            PExpr::Binary { ty, .. } => *ty,
            PExpr::Call { ret, .. } => *ret,
        }
    }

    /// Visit all subexpressions pre-order.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a PExpr)) {
        f(self);
        match self {
            PExpr::Unary { arg, .. } => arg.walk(f),
            PExpr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            PExpr::Call { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Indices of all input columns this expression reads.
    pub fn columns_used(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.walk(&mut |e| {
            if let PExpr::Col { index, .. } = e {
                cols.push(*index);
            }
        });
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Whether any partial UDF appears (evaluation may discard the tuple).
    pub fn has_partial_call(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, PExpr::Call { partial: true, .. }) {
                found = true;
            }
        });
        found
    }

    /// Whether any UDF call appears at all.
    pub fn has_call(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, PExpr::Call { .. }) {
                found = true;
            }
        });
        found
    }

    /// Rewrite column indices through `map` (new index = `map[old]`).
    /// Panics if a used column is absent from the map — the optimizer only
    /// remaps expressions whose columns it has arranged to keep.
    pub fn remap_columns(&self, map: &std::collections::HashMap<usize, usize>) -> PExpr {
        match self {
            PExpr::Col { index, ty } => PExpr::Col {
                index: *map.get(index).expect("remap covers all used columns"),
                ty: *ty,
            },
            PExpr::Lit(l) => PExpr::Lit(l.clone()),
            PExpr::Param { name, ty } => PExpr::Param { name: name.clone(), ty: *ty },
            PExpr::Unary { op, arg } => {
                PExpr::Unary { op: *op, arg: Box::new(arg.remap_columns(map)) }
            }
            PExpr::Binary { op, left, right, ty } => PExpr::Binary {
                op: *op,
                left: Box::new(left.remap_columns(map)),
                right: Box::new(right.remap_columns(map)),
                ty: *ty,
            },
            PExpr::Call { udf, args, ret, partial } => PExpr::Call {
                udf: udf.clone(),
                args: args.iter().map(|a| a.remap_columns(map)).collect(),
                ret: *ret,
                partial: *partial,
            },
        }
    }
}

/// One aggregate computation within an Aggregate node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Output column name.
    pub name: String,
    /// The aggregate function.
    pub func: AggFunc,
    /// Aggregated input expression (`None` = `count(*)`).
    pub arg: Option<PExpr>,
    /// Output type.
    pub ty: DataType,
}

/// Split a join's residual conjuncts the way the executor does: cross-side
/// equality conjuncts `Eq(Col(left), Col(right))` become hash-key pairs
/// `(left col, right col)`, everything else stays residual. Shared by the
/// operator builder and EXPLAIN so the two can never drift.
pub fn split_join_conjuncts(residual: &PExpr, n_left: usize) -> (Vec<(usize, usize)>, Vec<PExpr>) {
    let mut eq_keys = Vec::new();
    let mut rest = Vec::new();
    for c in residual.conjuncts_owned() {
        if let PExpr::Binary { op: crate::ast::BinOp::Eq, left: a, right: b, .. } = &c {
            if let (PExpr::Col { index: i, .. }, PExpr::Col { index: j, .. }) = (&**a, &**b) {
                let (i, j) = (*i, *j);
                if i < n_left && j >= n_left {
                    eq_keys.push((i, j - n_left));
                    continue;
                }
                if j < n_left && i >= n_left {
                    eq_keys.push((j, i - n_left));
                    continue;
                }
            }
        }
        rest.push(c);
    }
    (eq_keys, rest)
}

/// The time window of a two-stream join, extracted from ordered-attribute
/// constraints in the join predicate (paper §2.1: "The join predicate must
/// contain a constraint on an ordered attribute from each table which can
/// be used to define a join window").
#[derive(Debug, Clone, PartialEq)]
pub struct JoinWindow {
    /// Ordered column on the left input (index into the left schema).
    pub left_col: usize,
    /// Ordered column on the right input (index into the right schema).
    pub right_col: usize,
    /// Window low bound: tuples match only if
    /// `left ∈ [right + lo, right + hi]`.
    pub lo: i64,
    /// Window high bound (see `lo`); equality joins have `lo == hi == 0`.
    pub hi: i64,
}

/// A logical plan node. Every variant caches its output schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Leaf: interpret packets from an interface as a Protocol stream.
    ProtocolScan {
        /// Interface name (e.g. `eth0`).
        interface: String,
        /// Protocol name in the interpretation registry (e.g. `tcp`).
        protocol: String,
        /// The protocol stream's schema.
        schema: Schema,
    },
    /// Leaf: subscribe to a named query's output stream.
    StreamScan {
        /// Registered query name.
        stream: String,
        /// That stream's schema.
        schema: Schema,
    },
    /// Keep tuples satisfying a predicate.
    Filter {
        /// Boolean predicate over the input schema.
        pred: PExpr,
        /// Input plan.
        input: Box<Plan>,
    },
    /// Compute output columns.
    Project {
        /// `(name, expr)` pairs in output order.
        cols: Vec<(String, PExpr)>,
        /// Input plan.
        input: Box<Plan>,
        /// Output schema (types/ordering imputed by the analyzer).
        schema: Schema,
    },
    /// Group-by / aggregation with ordered-attribute flushing.
    Aggregate {
        /// Grouping expressions `(name, expr)`; output columns come first.
        group: Vec<(String, PExpr)>,
        /// Aggregates; output columns follow the group columns.
        aggs: Vec<AggSpec>,
        /// Index within `group` of the ordered attribute whose advance
        /// closes groups, when one exists (paper §2.1: "When a tuple
        /// arrives ... whose ordered attribute is larger than that in any
        /// current group, ... all of the closed groups are flushed").
        flush_group_idx: Option<usize>,
        /// Input plan.
        input: Box<Plan>,
        /// Output schema: group columns then aggregate columns.
        schema: Schema,
    },
    /// Two-stream window join.
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// The extracted ordered-attribute window.
        window: JoinWindow,
        /// Residual predicate over the concatenated schema (left then
        /// right), beyond the window constraint.
        residual: Option<PExpr>,
        /// Projection over the concatenated schema.
        cols: Vec<(String, PExpr)>,
        /// Output schema.
        schema: Schema,
    },
    /// Order-preserving union of same-schema streams.
    Merge {
        /// Input plans (all schemas identical).
        inputs: Vec<Plan>,
        /// Index of the merged (ordered) column, same in every input.
        on_col: usize,
        /// Output schema.
        schema: Schema,
    },
}

impl Plan {
    /// The node's output schema.
    pub fn schema(&self) -> &Schema {
        match self {
            Plan::ProtocolScan { schema, .. }
            | Plan::StreamScan { schema, .. }
            | Plan::Project { schema, .. }
            | Plan::Aggregate { schema, .. }
            | Plan::Join { schema, .. }
            | Plan::Merge { schema, .. } => schema,
            Plan::Filter { input, .. } => input.schema(),
        }
    }

    /// Find a column index by name in this node's output schema.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.schema().iter().position(|c| c.name == name)
    }

    /// All `StreamScan` names this plan subscribes to.
    pub fn upstream_streams(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let Plan::StreamScan { stream, .. } = p {
                out.push(stream.clone());
            }
        });
        out
    }

    /// Whether any leaf is a `ProtocolScan` (the plan touches raw packets).
    pub fn reads_protocol(&self) -> bool {
        let mut found = false;
        self.visit(&mut |p| {
            if matches!(p, Plan::ProtocolScan { .. }) {
                found = true;
            }
        });
        found
    }

    /// Visit every node pre-order.
    pub fn visit<'a>(&'a self, f: &mut dyn FnMut(&'a Plan)) {
        f(self);
        match self {
            Plan::Filter { input, .. } => input.visit(f),
            Plan::Project { input, .. } => input.visit(f),
            Plan::Aggregate { input, .. } => input.visit(f),
            Plan::Join { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Plan::Merge { inputs, .. } => {
                for i in inputs {
                    i.visit(f);
                }
            }
            Plan::ProtocolScan { .. } | Plan::StreamScan { .. } => {}
        }
    }

    /// Collect the names of all query parameters used anywhere in the plan.
    pub fn params(&self) -> Vec<(String, DataType)> {
        let mut out: Vec<(String, DataType)> = Vec::new();
        let mut add = |e: &PExpr| {
            e.walk(&mut |x| {
                if let PExpr::Param { name, ty } = x {
                    if !out.iter().any(|(n, _)| n == name) {
                        out.push((name.clone(), *ty));
                    }
                }
            });
        };
        self.visit(&mut |p| match p {
            Plan::Filter { pred, .. } => add(pred),
            Plan::Project { cols, .. } => cols.iter().for_each(|(_, e)| add(e)),
            Plan::Aggregate { group, aggs, .. } => {
                group.iter().for_each(|(_, e)| add(e));
                aggs.iter().for_each(|a| {
                    if let Some(e) = &a.arg {
                        add(e)
                    }
                });
            }
            Plan::Join { residual, cols, .. } => {
                if let Some(r) = residual {
                    add(r)
                }
                cols.iter().for_each(|(_, e)| add(e));
            }
            _ => {}
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(i: usize) -> PExpr {
        PExpr::Col { index: i, ty: DataType::UInt }
    }

    #[test]
    fn columns_used_dedups_and_sorts() {
        let e = PExpr::Binary {
            op: BinOp::Add,
            left: Box::new(col(3)),
            right: Box::new(PExpr::Binary {
                op: BinOp::Mul,
                left: Box::new(col(1)),
                right: Box::new(col(3)),
                ty: DataType::UInt,
            }),
            ty: DataType::UInt,
        };
        assert_eq!(e.columns_used(), vec![1, 3]);
    }

    #[test]
    fn remap_columns() {
        let map: std::collections::HashMap<usize, usize> = [(3, 0), (1, 1)].into();
        let e = PExpr::Binary {
            op: BinOp::Add,
            left: Box::new(col(3)),
            right: Box::new(col(1)),
            ty: DataType::UInt,
        };
        let r = e.remap_columns(&map);
        assert_eq!(r.columns_used(), vec![0, 1]);
    }

    #[test]
    fn schema_passthrough_for_filter() {
        let scan = Plan::StreamScan {
            stream: "s".into(),
            schema: vec![ColumnInfo {
                name: "x".into(),
                ty: DataType::UInt,
                order: OrderProp::None,
            }],
        };
        let f = Plan::Filter {
            pred: PExpr::Lit(Literal::Bool(true)),
            input: Box::new(scan),
        };
        assert_eq!(f.schema().len(), 1);
        assert_eq!(f.column_index("x"), Some(0));
        assert_eq!(f.column_index("y"), None);
    }

    #[test]
    fn params_collected_once() {
        let p = PExpr::Param { name: "port".into(), ty: DataType::UInt };
        let plan = Plan::Filter {
            pred: PExpr::Binary {
                op: BinOp::And,
                left: Box::new(p.clone()),
                right: Box::new(p),
                ty: DataType::Bool,
            },
            input: Box::new(Plan::StreamScan { stream: "s".into(), schema: vec![] }),
        };
        assert_eq!(plan.params(), vec![("port".into(), DataType::UInt)]);
    }

    #[test]
    fn upstream_streams_found() {
        let plan = Plan::Merge {
            inputs: vec![
                Plan::StreamScan { stream: "a".into(), schema: vec![] },
                Plan::StreamScan { stream: "b".into(), schema: vec![] },
            ],
            on_col: 0,
            schema: vec![],
        };
        assert_eq!(plan.upstream_streams(), vec!["a".to_string(), "b".to_string()]);
        assert!(!plan.reads_protocol());
    }
}
