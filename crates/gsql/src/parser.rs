//! Recursive-descent parser for GSQL.

use crate::ast::*;
use crate::error::{GsqlError, Pos};
use crate::lexer::{lex, Keyword, Sym, Token, TokenKind};

/// Parse a single GSQL query. FROM-clause subqueries are rejected here —
/// they desugar into extra named queries and need [`parse_program`].
pub fn parse_query(src: &str) -> Result<Query, GsqlError> {
    let mut p = Parser::new(src)?;
    let q = p.query()?;
    p.expect_eof_or_semi()?;
    if !p.hoisted.is_empty() {
        return Err(GsqlError::parse(
            "FROM-clause subqueries need a program context (use parse_program)",
            Pos::default(),
        ));
    }
    Ok(q)
}

/// Parse a program: one or more queries, optionally semicolon-separated.
///
/// FROM-clause subqueries are supported by desugaring (the paper §5:
/// "supporting subqueries in the FROM clause requires only an update of
/// the parser"): each `(Select ...) alias` becomes a hoisted named query
/// `<parent>__sub<i>` emitted before its parent, and the FROM clause
/// reads it by name — exactly GSQL's existing composition mechanism.
pub fn parse_program(src: &str) -> Result<Vec<Query>, GsqlError> {
    let prog = parse_program_full(src)?;
    if let Some(i) = prog.interfaces.first() {
        return Err(GsqlError {
            phase: crate::error::Phase::Parse,
            message: format!("interface declaration `{}` needs parse_program_full", i.name),
            pos: None,
        });
    }
    Ok(prog.queries)
}

/// Parse a full program: `INTERFACE` declarations (the DDL binding
/// symbolic names to packet sources) interleaved with queries.
///
/// ```text
/// INTERFACE eth0 0 ether;
/// INTERFACE nf0 2 netflow;
/// DEFINE { query_name q; } Select ... From eth0.tcp ...
/// ```
pub fn parse_program_full(src: &str) -> Result<ProgramAst, GsqlError> {
    let mut p = Parser::new(src)?;
    let mut queries = Vec::new();
    let mut interfaces = Vec::new();
    loop {
        while p.eat_sym(Sym::Semi) {}
        if p.at_eof() {
            if queries.is_empty() && interfaces.is_empty() {
                return Err(GsqlError::parse("empty program", p.pos()));
            }
            return Ok(ProgramAst { interfaces, queries });
        }
        if p.at_interface_decl() {
            interfaces.push(p.interface_decl()?);
            continue;
        }
        let q = p.query()?;
        queries.append(&mut p.hoisted);
        queries.push(q);
    }
}

struct Parser {
    toks: Vec<Token>,
    idx: usize,
    /// Subqueries hoisted out of FROM clauses, emitted before their parent.
    hoisted: Vec<Query>,
    /// Name of the query currently being parsed (for subquery mangling).
    current_query: String,
    sub_counter: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, GsqlError> {
        Ok(Parser {
            toks: lex(src)?,
            idx: 0,
            hoisted: Vec::new(),
            current_query: "_anon".to_string(),
            sub_counter: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.toks[self.idx].kind
    }

    fn pos(&self) -> Pos {
        self.toks[self.idx].pos
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.toks[self.idx].kind.clone();
        if !matches!(t, TokenKind::Eof) {
            self.idx += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.peek() == &TokenKind::Keyword(kw) {
            self.idx += 1;
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, s: Sym) -> bool {
        if self.peek() == &TokenKind::Sym(s) {
            self.idx += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Keyword, what: &str) -> Result<(), GsqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(GsqlError::parse(format!("expected {what}"), self.pos()))
        }
    }

    fn expect_sym(&mut self, s: Sym, what: &str) -> Result<(), GsqlError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(GsqlError::parse(format!("expected {what}"), self.pos()))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, GsqlError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.idx += 1;
                Ok(s)
            }
            _ => Err(GsqlError::parse(format!("expected {what}"), self.pos())),
        }
    }

    fn expect_eof_or_semi(&mut self) -> Result<(), GsqlError> {
        while self.eat_sym(Sym::Semi) {}
        if self.at_eof() {
            Ok(())
        } else {
            Err(GsqlError::parse("trailing input after query", self.pos()))
        }
    }

    // ---- DDL -----------------------------------------------------------

    fn at_interface_decl(&self) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case("interface"))
    }

    /// `INTERFACE <name> <id> [<link>];` — link is one of `ether`,
    /// `rawip`, `netflow`, `bgp` (default `ether`).
    fn interface_decl(&mut self) -> Result<InterfaceDecl, GsqlError> {
        self.bump(); // the INTERFACE word
        let name = self.expect_ident("an interface name")?;
        let id = match self.bump() {
            TokenKind::UInt(v) if v <= u64::from(u16::MAX) => v as u16,
            _ => {
                return Err(GsqlError::parse(
                    "expected a numeric interface id (0..65535)",
                    self.pos(),
                ))
            }
        };
        use gs_packet::capture::LinkType;
        let link = match self.peek() {
            TokenKind::Ident(s) => {
                let link = match s.to_ascii_lowercase().as_str() {
                    "ether" | "ethernet" => LinkType::Ethernet,
                    "rawip" | "ip" => LinkType::RawIp,
                    "netflow" => LinkType::NetflowRecord,
                    "bgp" => LinkType::BgpUpdate,
                    other => {
                        return Err(GsqlError::parse(
                            format!("unknown link type `{other}` (ether|rawip|netflow|bgp)"),
                            self.pos(),
                        ))
                    }
                };
                self.idx += 1;
                link
            }
            _ => LinkType::Ethernet,
        };
        self.expect_sym(Sym::Semi, "`;` after an interface declaration")?;
        Ok(InterfaceDecl { name, id, link })
    }

    // ---- queries -------------------------------------------------------

    fn query(&mut self) -> Result<Query, GsqlError> {
        let defines = if self.eat_kw(Keyword::Define) { self.define_block()? } else { Vec::new() };
        if let Some((_, name)) = defines.iter().find(|(k, _)| k == "query_name") {
            self.current_query = name.clone();
        }
        let body = if self.eat_kw(Keyword::Select) {
            QueryBody::Select(self.select_body()?)
        } else if self.eat_kw(Keyword::Merge) {
            QueryBody::Merge(self.merge_body()?)
        } else {
            return Err(GsqlError::parse("expected SELECT or MERGE", self.pos()));
        };
        Ok(Query { defines, body })
    }

    /// `DEFINE { key value; key value; ... }`
    fn define_block(&mut self) -> Result<Vec<(String, String)>, GsqlError> {
        self.expect_sym(Sym::LBrace, "`{` after DEFINE")?;
        let mut out = Vec::new();
        while !self.eat_sym(Sym::RBrace) {
            let key = self.expect_ident("a DEFINE property name")?;
            let value = match self.bump() {
                TokenKind::Ident(s) | TokenKind::Str(s) => s,
                TokenKind::UInt(v) => v.to_string(),
                TokenKind::Float(v) => v.to_string(),
                TokenKind::Ip(v) => gs_packet::ip::fmt_ipv4(v),
                _ => {
                    return Err(GsqlError::parse(
                        format!("expected a value for DEFINE property `{key}`"),
                        self.pos(),
                    ))
                }
            };
            self.expect_sym(Sym::Semi, "`;` after DEFINE property")?;
            out.push((key, value));
        }
        Ok(out)
    }

    fn select_body(&mut self) -> Result<SelectBody, GsqlError> {
        let projections = self.select_list()?;
        self.expect_kw(Keyword::From, "FROM")?;
        let from = self.table_list()?;
        let where_clause = if self.eat_kw(Keyword::Where) { Some(self.expr()?) } else { None };
        let group_by = if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By, "BY after GROUP")?;
            self.group_list()?
        } else {
            Vec::new()
        };
        let having = if self.eat_kw(Keyword::Having) { Some(self.expr()?) } else { None };
        Ok(SelectBody { projections, from, where_clause, group_by, having })
    }

    /// `MERGE a.ts : b.ts [: c.ts ...] FROM a, b [, c ...]`
    fn merge_body(&mut self) -> Result<MergeBody, GsqlError> {
        let mut columns = Vec::new();
        loop {
            let stream = self.expect_ident("a stream name in the MERGE list")?;
            self.expect_sym(Sym::Dot, "`.` in MERGE column")?;
            let col = self.expect_ident("a column name in the MERGE list")?;
            columns.push((stream, col));
            if !self.eat_sym(Sym::Colon) {
                break;
            }
        }
        self.expect_kw(Keyword::From, "FROM in MERGE")?;
        let from = self.table_list()?;
        Ok(MergeBody { columns, from })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, GsqlError> {
        let mut out = Vec::new();
        loop {
            let expr = self.expr()?;
            let alias = if self.eat_kw(Keyword::As) {
                Some(self.expect_ident("an alias after AS")?)
            } else {
                None
            };
            out.push(SelectItem { expr, alias });
            if !self.eat_sym(Sym::Comma) {
                return Ok(out);
            }
        }
    }

    fn group_list(&mut self) -> Result<Vec<SelectItem>, GsqlError> {
        // Same grammar as the select list: GSQL allows `GROUP BY time/60 as tb`.
        self.select_list()
    }

    fn table_list(&mut self) -> Result<Vec<TableRef>, GsqlError> {
        let mut out = Vec::new();
        loop {
            out.push(self.table_ref()?);
            if !self.eat_sym(Sym::Comma) {
                return Ok(out);
            }
        }
    }

    /// `eth0.tcp [alias]` | `streamname [alias]` | `(Select ...) alias`
    fn table_ref(&mut self) -> Result<TableRef, GsqlError> {
        if self.eat_sym(Sym::LParen) {
            // FROM-clause subquery: parse, hoist as a named query, and
            // reference it by its mangled name.
            let parent = self.current_query.clone();
            let inner = self.query()?;
            self.expect_sym(Sym::RParen, "`)` closing the subquery")?;
            self.current_query = parent.clone();
            let name = match inner.name() {
                Some(n) => n.to_string(),
                None => {
                    let n = format!("{parent}__sub{}", self.sub_counter);
                    self.sub_counter += 1;
                    n
                }
            };
            let mut inner = inner;
            if inner.name().is_none() {
                inner.defines.push(("query_name".to_string(), name.clone()));
            }
            // Structural marker: downstream tooling can tell plumbing from
            // user-named queries without name sniffing.
            inner.defines.push(("hoisted".to_string(), "true".to_string()));
            self.hoisted.push(inner);
            let alias = self.expect_ident("an alias after a FROM-clause subquery")?;
            return Ok(TableRef { interface: None, name, alias: Some(alias) });
        }
        let first = self.expect_ident("a stream or interface name")?;
        let (interface, name) = if self.eat_sym(Sym::Dot) {
            let proto = self.expect_ident("a protocol name after `.`")?;
            (Some(first), proto)
        } else {
            (None, first)
        };
        let alias = match self.peek() {
            TokenKind::Ident(_) => Some(self.expect_ident("alias")?),
            _ => None,
        };
        Ok(TableRef { interface, name, alias })
    }

    // ---- expressions ---------------------------------------------------
    // Precedence (low→high): OR, AND, NOT, comparison, |, ^, &,
    // + -, * / %, primary.

    fn expr(&mut self) -> Result<Expr, GsqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, GsqlError> {
        let mut left = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.and_expr()?;
            left = Expr::Binary { op: BinOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, GsqlError> {
        let mut left = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let right = self.not_expr()?;
            left = Expr::Binary { op: BinOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, GsqlError> {
        if self.eat_kw(Keyword::Not) {
            let arg = self.not_expr()?;
            Ok(Expr::Unary { op: UnOp::Not, arg: Box::new(arg) })
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, GsqlError> {
        let left = self.bitor_expr()?;
        let op = match self.peek() {
            TokenKind::Sym(Sym::Eq) => BinOp::Eq,
            TokenKind::Sym(Sym::Ne) => BinOp::Ne,
            TokenKind::Sym(Sym::Lt) => BinOp::Lt,
            TokenKind::Sym(Sym::Le) => BinOp::Le,
            TokenKind::Sym(Sym::Gt) => BinOp::Gt,
            TokenKind::Sym(Sym::Ge) => BinOp::Ge,
            _ => return Ok(left),
        };
        self.idx += 1;
        let right = self.bitor_expr()?;
        Ok(Expr::Binary { op, left: Box::new(left), right: Box::new(right) })
    }

    fn bitor_expr(&mut self) -> Result<Expr, GsqlError> {
        let mut left = self.bitxor_expr()?;
        while self.eat_sym(Sym::Pipe) {
            let right = self.bitxor_expr()?;
            left = Expr::Binary { op: BinOp::BitOr, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn bitxor_expr(&mut self) -> Result<Expr, GsqlError> {
        let mut left = self.bitand_expr()?;
        while self.eat_sym(Sym::Caret) {
            let right = self.bitand_expr()?;
            left = Expr::Binary { op: BinOp::BitXor, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn bitand_expr(&mut self) -> Result<Expr, GsqlError> {
        let mut left = self.add_expr()?;
        while self.eat_sym(Sym::Amp) {
            let right = self.add_expr()?;
            left = Expr::Binary { op: BinOp::BitAnd, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> Result<Expr, GsqlError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Sym(Sym::Plus) => BinOp::Add,
                TokenKind::Sym(Sym::Minus) => BinOp::Sub,
                _ => return Ok(left),
            };
            self.idx += 1;
            let right = self.mul_expr()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, GsqlError> {
        let mut left = self.primary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Sym(Sym::Star) => BinOp::Mul,
                TokenKind::Sym(Sym::Slash) => BinOp::Div,
                TokenKind::Sym(Sym::Percent) => BinOp::Mod,
                _ => return Ok(left),
            };
            self.idx += 1;
            let right = self.primary()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
    }

    fn primary(&mut self) -> Result<Expr, GsqlError> {
        let pos = self.pos();
        match self.bump() {
            TokenKind::UInt(v) => Ok(Expr::UIntLit(v)),
            TokenKind::Float(v) => Ok(Expr::FloatLit(v)),
            TokenKind::Str(s) => Ok(Expr::StrLit(s)),
            TokenKind::Ip(v) => Ok(Expr::IpLit(v)),
            TokenKind::Param(p) => Ok(Expr::Param(p)),
            TokenKind::Keyword(Keyword::True) => Ok(Expr::BoolLit(true)),
            TokenKind::Keyword(Keyword::False) => Ok(Expr::BoolLit(false)),
            TokenKind::Sym(Sym::LParen) => {
                let e = self.expr()?;
                self.expect_sym(Sym::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.eat_sym(Sym::LParen) {
                    return self.call(name);
                }
                if self.eat_sym(Sym::Dot) {
                    let col = self.expect_ident("a column name after `.`")?;
                    return Ok(Expr::Column { qualifier: Some(name), name: col });
                }
                Ok(Expr::Column { qualifier: None, name })
            }
            other => Err(GsqlError::parse(format!("unexpected token {other:?} in expression"), pos)),
        }
    }

    /// Arguments of `name(...)` — aggregate or UDF.
    fn call(&mut self, name: String) -> Result<Expr, GsqlError> {
        if let Some(func) = AggFunc::from_name(&name) {
            // count(*) special case.
            if func == AggFunc::Count && self.eat_sym(Sym::Star) {
                self.expect_sym(Sym::RParen, "`)` after count(*)")?;
                return Ok(Expr::Agg { func, arg: None });
            }
            let arg = self.expr()?;
            self.expect_sym(Sym::RParen, "`)` after aggregate argument")?;
            return Ok(Expr::Agg { func, arg: Some(Box::new(arg)) });
        }
        let mut args = Vec::new();
        if !self.eat_sym(Sym::RParen) {
            loop {
                args.push(self.expr()?);
                if self.eat_sym(Sym::RParen) {
                    break;
                }
                self.expect_sym(Sym::Comma, "`,` or `)` in argument list")?;
            }
        }
        Ok(Expr::Func { name, args })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_tcpdest0() {
        // The paper's first example query (§2.2).
        let q = parse_query(
            "DEFINE { query_name tcpdest0; }\n\
             Select destIP, destPort, time From eth0.tcp\n\
             Where IPVersion = 4 and Protocol = 6",
        )
        .unwrap();
        assert_eq!(q.name(), Some("tcpdest0"));
        let QueryBody::Select(s) = &q.body else { panic!("expected select") };
        assert_eq!(s.projections.len(), 3);
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.from[0].interface.as_deref(), Some("eth0"));
        assert_eq!(s.from[0].name, "tcp");
        let w = s.where_clause.as_ref().unwrap();
        assert_eq!(w.conjuncts().len(), 2);
    }

    #[test]
    fn parses_paper_merge() {
        let q = parse_query(
            "DEFINE { query_name tcpdest; }\n\
             Merge tcpdest0.time : tcpdest1.time From tcpdest0, tcpdest1",
        )
        .unwrap();
        let QueryBody::Merge(m) = &q.body else { panic!("expected merge") };
        assert_eq!(m.columns.len(), 2);
        assert_eq!(m.columns[0], ("tcpdest0".into(), "time".into()));
        assert_eq!(m.from.len(), 2);
    }

    #[test]
    fn parses_paper_lpm_aggregation() {
        // The paper's getlpmid example (§2.2), modulo the SELECT/GROUP BY
        // alias plumbing.
        let q = parse_query(
            "Select peerid, tb, count(*) FROM tcpdest \
             Group by time/60 as tb, getlpmid(destIP, 'peerid.tbl') as peerid",
        )
        .unwrap();
        let QueryBody::Select(s) = &q.body else { panic!() };
        assert_eq!(s.group_by.len(), 2);
        assert_eq!(s.group_by[0].alias.as_deref(), Some("tb"));
        assert!(matches!(s.group_by[0].expr, Expr::Binary { op: BinOp::Div, .. }));
        assert!(matches!(s.group_by[1].expr, Expr::Func { .. }));
        assert!(matches!(s.projections[2].expr, Expr::Agg { func: AggFunc::Count, arg: None }));
    }

    #[test]
    fn parses_join_with_window() {
        let q = parse_query(
            "Select B.time, B.srcIP FROM backbone B, customer C \
             WHERE B.srcIP = C.srcIP and B.time >= C.time - 1 and B.time <= C.time + 1",
        )
        .unwrap();
        let QueryBody::Select(s) = &q.body else { panic!() };
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].binding(), "B");
        assert_eq!(s.where_clause.as_ref().unwrap().conjuncts().len(), 3);
    }

    #[test]
    fn precedence_and_parens() {
        let q = parse_query("Select a + b * c, (a + b) * c FROM s").unwrap();
        let QueryBody::Select(s) = &q.body else { panic!() };
        // a + (b*c)
        let Expr::Binary { op: BinOp::Add, right, .. } = &s.projections[0].expr else {
            panic!()
        };
        assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
        // (a+b) * c
        let Expr::Binary { op: BinOp::Mul, left, .. } = &s.projections[1].expr else { panic!() };
        assert!(matches!(**left, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn comparison_binds_looser_than_bitand() {
        // flags & 2 = 2 parses as (flags & 2) = 2.
        let q = parse_query("Select x FROM s WHERE flags & 2 = 2").unwrap();
        let QueryBody::Select(s) = &q.body else { panic!() };
        let Expr::Binary { op: BinOp::Eq, left, .. } = s.where_clause.as_ref().unwrap() else {
            panic!()
        };
        assert!(matches!(**left, Expr::Binary { op: BinOp::BitAnd, .. }));
    }

    #[test]
    fn params_and_literals() {
        let q = parse_query(
            "Select 1, 2.5, 'str', 10.0.0.1, TRUE, $thresh FROM s WHERE destPort = $port",
        )
        .unwrap();
        let QueryBody::Select(s) = &q.body else { panic!() };
        assert_eq!(s.projections.len(), 6);
        assert!(matches!(s.projections[3].expr, Expr::IpLit(0x0a000001)));
        assert!(matches!(s.projections[5].expr, Expr::Param(_)));
    }

    #[test]
    fn having_and_aggregates() {
        let q = parse_query(
            "Select tb, sum(len) FROM ip Group by time/60 as tb Having count(*) > 100",
        )
        .unwrap();
        let QueryBody::Select(s) = &q.body else { panic!() };
        assert!(s.having.as_ref().unwrap().contains_agg());
    }

    #[test]
    fn program_with_multiple_queries() {
        let qs = parse_program(
            "DEFINE { query_name a; } Select x FROM s;\n\
             DEFINE { query_name b; } Select y FROM a;",
        )
        .unwrap();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[1].name(), Some("b"));
    }

    #[test]
    fn errors_are_positioned() {
        let err = parse_query("Select FROM s").unwrap_err();
        assert!(err.pos.is_some());
        assert!(parse_query("Select x").is_err()); // missing FROM
        assert!(parse_query("Merge a.t FROM").is_err());
        assert!(parse_query("").is_err());
        assert!(parse_query("Select x FROM s extra garbage ,").is_err());
    }

    #[test]
    fn not_and_nested_not() {
        let q = parse_query("Select x FROM s WHERE NOT NOT a = b").unwrap();
        let QueryBody::Select(s) = &q.body else { panic!() };
        let Expr::Unary { op: UnOp::Not, arg } = s.where_clause.as_ref().unwrap() else {
            panic!()
        };
        assert!(matches!(**arg, Expr::Unary { .. }));
    }

    #[test]
    fn interface_ddl_parses() {
        use gs_packet::capture::LinkType;
        let p = crate::parser::parse_program_full(
            "INTERFACE eth0 0 ether;\n\
             interface nf0 2 netflow;\n\
             INTERFACE oc48 3 rawip;\n\
             DEFINE { query_name q; } Select time From eth0.tcp",
        )
        .unwrap();
        assert_eq!(p.interfaces.len(), 3);
        assert_eq!(p.interfaces[0], InterfaceDecl { name: "eth0".into(), id: 0, link: LinkType::Ethernet });
        assert_eq!(p.interfaces[1].link, LinkType::NetflowRecord);
        assert_eq!(p.interfaces[2].link, LinkType::RawIp);
        assert_eq!(p.queries.len(), 1);
        // Link type defaults to Ethernet.
        let p = crate::parser::parse_program_full("INTERFACE e 1; Select time From e.tcp").unwrap();
        assert_eq!(p.interfaces[0].link, LinkType::Ethernet);
    }

    #[test]
    fn interface_ddl_errors() {
        assert!(crate::parser::parse_program_full("INTERFACE eth0 99999;").is_err());
        assert!(crate::parser::parse_program_full("INTERFACE eth0 1 warp;").is_err());
        assert!(crate::parser::parse_program_full("INTERFACE eth0 1 ether").is_err()); // missing ;
        // The queries-only entry point rejects DDL.
        assert!(parse_program("INTERFACE eth0 0 ether; Select time From eth0.tcp").is_err());
    }

    #[test]
    fn from_clause_subquery_is_hoisted() {
        let qs = parse_program(
            "DEFINE { query_name outer_q; } \
             Select tb, count(*) FROM (Select time/60 as tb FROM eth0.tcp Where destPort = 80) S \
             Group By tb",
        )
        .unwrap();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0].name(), Some("outer_q__sub0"));
        assert_eq!(qs[1].name(), Some("outer_q"));
        let QueryBody::Select(outer) = &qs[1].body else { panic!() };
        assert_eq!(outer.from[0].name, "outer_q__sub0");
        assert_eq!(outer.from[0].alias.as_deref(), Some("S"));
        let QueryBody::Select(inner) = &qs[0].body else { panic!() };
        assert_eq!(inner.from[0].interface.as_deref(), Some("eth0"));
    }

    #[test]
    fn named_subquery_keeps_its_name() {
        let qs = parse_program(
            "Select x FROM (DEFINE { query_name inner_q; } Select destPort as x FROM eth0.tcp) S",
        )
        .unwrap();
        assert_eq!(qs[0].name(), Some("inner_q"));
        let QueryBody::Select(outer) = &qs[1].body else { panic!() };
        assert_eq!(outer.from[0].name, "inner_q");
    }

    #[test]
    fn nested_subqueries_hoist_innermost_first() {
        let qs = parse_program(
            "DEFINE { query_name top_q; } \
             Select a FROM (Select a FROM (Select time as a FROM eth0.tcp) T) S",
        )
        .unwrap();
        assert_eq!(qs.len(), 3);
        // Innermost first, then the middle, then the parent.
        assert!(qs[0].name().unwrap().contains("__sub"));
        assert!(qs[1].name().unwrap().contains("__sub"));
        assert_eq!(qs[2].name(), Some("top_q"));
    }

    #[test]
    fn subquery_requires_alias_and_program_context() {
        assert!(parse_program("Select x FROM (Select y FROM s)").is_err());
        assert!(parse_query("Select x FROM (Select y FROM s) S").is_err());
    }

    #[test]
    fn udf_with_no_args() {
        let q = parse_query("Select now() FROM s").unwrap();
        let QueryBody::Select(s) = &q.body else { panic!() };
        let Expr::Func { name, args } = &s.projections[0].expr else { panic!() };
        assert_eq!(name, "now");
        assert!(args.is_empty());
    }
}
