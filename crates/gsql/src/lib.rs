//! The GSQL language front end.
//!
//! GSQL is "a pure stream query language with SQL-like syntax (being mostly
//! a restriction of SQL)" (paper §2). All inputs are streams, the output is
//! a stream, and blocking operators are made streaming by analyzing the
//! *ordering properties* of attributes rather than by sliding windows.
//!
//! Pipeline:
//!
//! ```text
//! GSQL text ──lexer──▶ tokens ──parser──▶ AST ──analyze──▶ logical Plan
//!                                                     │
//!                                 (catalog: protocols, streams, UDFs,
//!                                  interfaces, ordering properties)
//!                                                     │
//!                    optimizer: predicate pushdown, LFTA/HFTA split,
//!                    aggregate splitting, BPF compilation
//!                                                     ▼
//!                               DeployedQuery { lfta plans, hfta plans }
//! ```
//!
//! The runtime crate consumes the plans; this crate is purely front end
//! and depends only on the packet schema definitions.

#![warn(missing_docs)]

pub mod analyze;
pub mod ast;
pub mod catalog;
pub mod error;
pub mod explain;
pub mod lexer;
pub mod ordering;
pub mod parallel;
pub mod parser;
pub mod plan;
pub mod pretty;
pub mod pushdown;
pub mod split;
pub mod types;

pub use analyze::{analyze, AnalyzedQuery};
pub use ast::{Expr, Query, QueryBody};
pub use catalog::{Catalog, UdfCost, UdfSig};
pub use error::GsqlError;
pub use ordering::OrderProp;
pub use parallel::{partition_hfta, PartitionedHfta};
pub use ast::{InterfaceDecl, ProgramAst};
pub use parser::{parse_program, parse_program_full, parse_query};
pub use plan::{ColumnInfo, Plan, Schema};
pub use split::{split_query, DeployedQuery};
pub use types::DataType;
