//! Semantic analysis: names, types, GSQL restrictions, window extraction,
//! and ordering-property imputation. Lowers an AST [`Query`] into a typed
//! logical [`Plan`].

use crate::ast::{AggFunc, BinOp, Expr, Query, QueryBody, SelectBody, SelectItem, TableRef, UnOp};
use crate::catalog::Catalog;
use crate::error::GsqlError;
use crate::ordering::OrderProp;
use crate::plan::{AggSpec, ColumnInfo, JoinWindow, Literal, PExpr, Plan, Schema};
use crate::types::DataType;
use std::collections::HashMap;

/// The result of analyzing one query.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedQuery {
    /// Query name (from `DEFINE { query_name ...; }`, or `_anon`).
    pub name: String,
    /// The typed logical plan.
    pub plan: Plan,
    /// Query parameters with inferred types.
    pub params: Vec<(String, DataType)>,
    /// Non-fatal diagnostics (e.g. aggregation without an ordered key).
    pub warnings: Vec<String>,
    /// Analyst-controlled sampling probability from `DEFINE { sample p; }`
    /// (the paper's §5 research direction: sampling "must be integrated
    /// into the query language under the control of the analyst").
    pub sample: Option<f64>,
}

/// Analyze `q` against `catalog`.
pub fn analyze(q: &Query, catalog: &Catalog) -> Result<AnalyzedQuery, GsqlError> {
    let name = q.name().unwrap_or("_anon").to_string();
    let sample = match q.defines.iter().find(|(k, _)| k == "sample") {
        Some((_, v)) => {
            let p: f64 = v.parse().map_err(|_| {
                GsqlError::analyze(format!("DEFINE sample must be a probability, got `{v}`"))
            })?;
            if !(0.0..=1.0).contains(&p) || p == 0.0 {
                return Err(GsqlError::analyze(format!(
                    "DEFINE sample must be in (0, 1], got {p}"
                )));
            }
            (p < 1.0).then_some(p)
        }
        None => None,
    };
    let mut cx = Context {
        catalog,
        param_types: collect_param_constraints(q, catalog),
        warnings: Vec::new(),
    };
    let plan = match &q.body {
        QueryBody::Select(body) => cx.analyze_select(body)?,
        QueryBody::Merge(body) => cx.analyze_merge(body)?,
    };
    let params = plan.params();
    Ok(AnalyzedQuery { name, plan, params, warnings: cx.warnings, sample })
}

// ----------------------------------------------------------------------
// Parameter type inference (syntactic pre-pass).
// ----------------------------------------------------------------------

/// Infer `$param` types from the contexts they appear in: comparison with a
/// column adopts the column's type; a UDF argument adopts the declared
/// argument type. Unconstrained parameters default to `uint`.
fn collect_param_constraints(q: &Query, catalog: &Catalog) -> HashMap<String, DataType> {
    let mut out = HashMap::new();
    let mut visit_expr = |e: &Expr, col_ty: &dyn Fn(&str) -> Option<DataType>| {
        e.walk(&mut |node| match node {
            Expr::Binary { op, left, right } if op.is_comparison() => {
                let pairs = [(&**left, &**right), (&**right, &**left)];
                for (a, b) in pairs {
                    if let (Expr::Param(p), Expr::Column { name, .. }) = (a, b) {
                        if let Some(ty) = col_ty(name) {
                            out.entry(p.clone()).or_insert(ty);
                        }
                    }
                }
            }
            Expr::Func { name, args } => {
                if let Some(sig) = catalog.udf(name) {
                    for (i, a) in args.iter().enumerate() {
                        if let (Expr::Param(p), Some(ty)) = (a, sig.args.get(i)) {
                            out.entry(p.clone()).or_insert(*ty);
                        }
                    }
                }
            }
            _ => {}
        });
    };

    if let QueryBody::Select(body) = &q.body {
        // Build a name→type view across all FROM sources for the pre-pass.
        let mut col_types: HashMap<String, DataType> = HashMap::new();
        for t in &body.from {
            let schema = source_schema_for(t, catalog);
            if let Some(s) = schema {
                for c in &s {
                    col_types.entry(c.name.clone()).or_insert(c.ty);
                }
            }
        }
        let lookup = |n: &str| col_types.get(n).copied();
        for item in body.projections.iter().chain(body.group_by.iter()) {
            visit_expr(&item.expr, &lookup);
        }
        if let Some(w) = &body.where_clause {
            visit_expr(w, &lookup);
        }
        if let Some(h) = &body.having {
            visit_expr(h, &lookup);
        }
    }
    out
}

fn source_schema_for(t: &TableRef, catalog: &Catalog) -> Option<Schema> {
    if t.interface.is_some() {
        catalog.protocol_schema(&t.name)
    } else if let Some(s) = catalog.stream(&t.name) {
        Some(s.clone())
    } else {
        catalog.protocol_schema(&t.name)
    }
}

// ----------------------------------------------------------------------
// Analysis context.
// ----------------------------------------------------------------------

struct Context<'a> {
    catalog: &'a Catalog,
    param_types: HashMap<String, DataType>,
    warnings: Vec<String>,
}

/// Column resolution environment: bindings over a concatenated schema.
struct Env {
    /// `(binding name, start offset, schema)` per FROM source.
    bindings: Vec<(String, usize, Schema)>,
}

impl Env {
    fn total_schema(&self) -> Schema {
        let mut s = Schema::new();
        for (_, _, sch) in &self.bindings {
            s.extend(sch.iter().cloned());
        }
        s
    }

    fn resolve_column(
        &self,
        qualifier: Option<&str>,
        name: &str,
    ) -> Result<(usize, DataType), GsqlError> {
        let mut hits = Vec::new();
        for (binding, off, schema) in &self.bindings {
            if let Some(q) = qualifier {
                if q != binding {
                    continue;
                }
            }
            if let Some(i) = schema.iter().position(|c| c.name == name) {
                hits.push((off + i, schema[i].ty));
            }
        }
        match hits.len() {
            0 => Err(GsqlError::analyze(match qualifier {
                Some(q) => format!("unknown column `{q}.{name}`"),
                None => format!("unknown column `{name}`"),
            })),
            1 => Ok(hits[0]),
            _ => Err(GsqlError::analyze(format!("ambiguous column `{name}`"))),
        }
    }
}

impl<'a> Context<'a> {
    // ---- sources -------------------------------------------------------

    fn scan_plan(&mut self, t: &TableRef) -> Result<Plan, GsqlError> {
        if let Some(iface) = &t.interface {
            let ifd = self.catalog.interface(iface).ok_or_else(|| {
                GsqlError::analyze(format!("unknown interface `{iface}`"))
            })?;
            let schema = self.catalog.protocol_schema(&t.name).ok_or_else(|| {
                GsqlError::analyze(format!("unknown protocol `{}`", t.name))
            })?;
            return Ok(Plan::ProtocolScan {
                interface: ifd.name.clone(),
                protocol: t.name.clone(),
                schema,
            });
        }
        if let Some(schema) = self.catalog.stream(&t.name) {
            return Ok(Plan::StreamScan { stream: t.name.clone(), schema: schema.clone() });
        }
        if let Some(schema) = self.catalog.protocol_schema(&t.name) {
            let ifd = self.catalog.default_interface().ok_or_else(|| {
                GsqlError::analyze(format!(
                    "protocol `{}` used without an interface and no default interface exists",
                    t.name
                ))
            })?;
            return Ok(Plan::ProtocolScan {
                interface: ifd.name.clone(),
                protocol: t.name.clone(),
                schema,
            });
        }
        Err(GsqlError::analyze(format!("unknown stream or protocol `{}`", t.name)))
    }

    // ---- expressions ---------------------------------------------------

    fn resolve_expr(&mut self, e: &Expr, env: &Env) -> Result<PExpr, GsqlError> {
        match e {
            Expr::Column { qualifier, name } => {
                let (index, ty) = env.resolve_column(qualifier.as_deref(), name)?;
                Ok(PExpr::Col { index, ty })
            }
            Expr::UIntLit(v) => Ok(PExpr::Lit(Literal::UInt(*v))),
            Expr::FloatLit(v) => Ok(PExpr::Lit(Literal::Float(*v))),
            Expr::StrLit(s) => Ok(PExpr::Lit(Literal::Str(s.clone()))),
            Expr::IpLit(v) => Ok(PExpr::Lit(Literal::Ip(*v))),
            Expr::BoolLit(b) => Ok(PExpr::Lit(Literal::Bool(*b))),
            Expr::Param(p) => Ok(PExpr::Param {
                name: p.clone(),
                ty: self.param_types.get(p).copied().unwrap_or(DataType::UInt),
            }),
            Expr::Star => Err(GsqlError::analyze("`*` is only valid inside count(*)")),
            Expr::Unary { op: UnOp::Not, arg } => {
                let arg = self.resolve_expr(arg, env)?;
                if arg.ty() != DataType::Bool {
                    return Err(GsqlError::analyze("NOT requires a boolean operand"));
                }
                Ok(PExpr::Unary { op: UnOp::Not, arg: Box::new(arg) })
            }
            Expr::Binary { op, left, right } => {
                let l = self.resolve_expr(left, env)?;
                let r = self.resolve_expr(right, env)?;
                let ty = binary_result_type(*op, l.ty(), r.ty())?;
                Ok(PExpr::Binary { op: *op, left: Box::new(l), right: Box::new(r), ty })
            }
            Expr::Func { name, args } => {
                let sig = self
                    .catalog
                    .udf(name)
                    .ok_or_else(|| GsqlError::analyze(format!("unknown function `{name}`")))?
                    .clone();
                if args.len() != sig.args.len() {
                    return Err(GsqlError::analyze(format!(
                        "function `{name}` takes {} arguments, got {}",
                        sig.args.len(),
                        args.len()
                    )));
                }
                let mut pargs = Vec::with_capacity(args.len());
                for (i, a) in args.iter().enumerate() {
                    let pa = self.resolve_expr(a, env)?;
                    if pa.ty() != sig.args[i] {
                        return Err(GsqlError::analyze(format!(
                            "argument {} of `{name}` must be {}, got {}",
                            i + 1,
                            sig.args[i],
                            pa.ty()
                        )));
                    }
                    if sig.handle_params.contains(&i)
                        && !matches!(pa, PExpr::Lit(_) | PExpr::Param { .. })
                    {
                        return Err(GsqlError::analyze(format!(
                            "argument {} of `{name}` is pass-by-handle and must be a literal \
                             or query parameter",
                            i + 1
                        )));
                    }
                    pargs.push(pa);
                }
                Ok(PExpr::Call {
                    udf: name.clone(),
                    args: pargs,
                    ret: sig.ret,
                    partial: sig.partial,
                })
            }
            Expr::Agg { .. } => Err(GsqlError::analyze(
                "aggregate used where none is allowed (WHERE / GROUP BY / join predicates)",
            )),
        }
    }

    /// Imputed ordering property of a resolved expression over `schema`
    /// (paper §2.1: projection passes ordering through; order-preserving
    /// arithmetic keeps it; `ts/k` buckets stay nondecreasing).
    fn impute_order(&self, e: &PExpr, schema: &Schema) -> OrderProp {
        match e {
            PExpr::Col { index, .. } => {
                schema.get(*index).map(|c| c.order.clone()).unwrap_or(OrderProp::None)
            }
            PExpr::Binary { op, left, right, .. } => {
                let (inner, k) = match (&**left, &**right) {
                    (x, PExpr::Lit(Literal::UInt(k))) => (x, *k),
                    (PExpr::Lit(Literal::UInt(k)), x) if matches!(op, BinOp::Add | BinOp::Mul) => {
                        (x, *k)
                    }
                    _ => return OrderProp::None,
                };
                let base = self.impute_order(inner, schema);
                match op {
                    BinOp::Div if k > 0 => base.after_div(k),
                    BinOp::Add | BinOp::Sub => base.after_monotone_map(1),
                    BinOp::Mul if k > 0 => base.after_monotone_map(k),
                    _ => OrderProp::None,
                }
            }
            _ => OrderProp::None,
        }
    }

    // ---- SELECT --------------------------------------------------------

    fn analyze_select(&mut self, body: &SelectBody) -> Result<Plan, GsqlError> {
        match body.from.len() {
            0 => Err(GsqlError::analyze("FROM clause is empty")),
            1 => self.analyze_single_source(body),
            2 => self.analyze_join(body),
            n => Err(GsqlError::analyze(format!(
                "joins are restricted to two streams, got {n} (compose queries instead)"
            ))),
        }
    }

    fn analyze_single_source(&mut self, body: &SelectBody) -> Result<Plan, GsqlError> {
        let scan = self.scan_plan(&body.from[0])?;
        let env = Env {
            bindings: vec![(body.from[0].binding().to_string(), 0, scan.schema().clone())],
        };

        let mut plan = scan;
        if let Some(w) = &body.where_clause {
            if w.contains_agg() {
                return Err(GsqlError::analyze("aggregates are not allowed in WHERE"));
            }
            let pred = self.resolve_expr(w, &env)?;
            if pred.ty() != DataType::Bool {
                return Err(GsqlError::analyze("WHERE predicate must be boolean"));
            }
            plan = Plan::Filter { pred, input: Box::new(plan) };
        }

        let has_aggs = body.projections.iter().any(|p| p.expr.contains_agg())
            || !body.group_by.is_empty()
            || body.having.is_some();
        if has_aggs {
            self.analyze_aggregation(body, plan, &env)
        } else {
            let input_schema = env.total_schema();
            let mut cols = Vec::new();
            let mut schema = Schema::new();
            for (i, item) in body.projections.iter().enumerate() {
                let pe = self.resolve_expr(&item.expr, &env)?;
                let name = output_name(item, i, &input_schema, &pe);
                schema.push(ColumnInfo {
                    name: name.clone(),
                    ty: pe.ty(),
                    order: self.impute_order(&pe, &input_schema),
                });
                cols.push((name, pe));
            }
            Ok(Plan::Project { cols, input: Box::new(plan), schema })
        }
    }

    fn analyze_aggregation(
        &mut self,
        body: &SelectBody,
        input: Plan,
        env: &Env,
    ) -> Result<Plan, GsqlError> {
        let input_schema = env.total_schema();

        // Resolve the grouping expressions.
        let mut group: Vec<(String, PExpr)> = Vec::new();
        for (i, item) in body.group_by.iter().enumerate() {
            if item.expr.contains_agg() {
                return Err(GsqlError::analyze("aggregates are not allowed in GROUP BY"));
            }
            let pe = self.resolve_expr(&item.expr, env)?;
            let name = output_name(item, i, &input_schema, &pe);
            group.push((name, pe));
        }

        // Resolve projections/HAVING over the aggregate output, discovering
        // the aggregate specs along the way.
        let mut aggs: Vec<AggSpec> = Vec::new();
        let mut out_cols: Vec<(String, PExpr)> = Vec::new();
        for (i, item) in body.projections.iter().enumerate() {
            let pe = self.resolve_agg_output(&item.expr, env, &group, &mut aggs)?;
            let name = match &item.alias {
                Some(a) => a.clone(),
                None => agg_output_name(&item.expr, i, &input_schema, &group, &pe),
            };
            out_cols.push((name, pe));
        }
        let having = match &body.having {
            Some(h) => {
                let pred = self.resolve_agg_output(h, env, &group, &mut aggs)?;
                if pred.ty() != DataType::Bool {
                    return Err(GsqlError::analyze("HAVING predicate must be boolean"));
                }
                Some(pred)
            }
            None => None,
        };

        // Aggregate output schema: group columns then aggregate columns.
        let mut agg_schema = Schema::new();
        let mut flush_group_idx = None;
        for (i, (name, pe)) in group.iter().enumerate() {
            let order = self.impute_order(pe, &input_schema);
            if flush_group_idx.is_none() && order.is_progressing() {
                flush_group_idx = Some(i);
            }
            // Closed groups are flushed as the ordered attribute advances,
            // so the flush column is nondecreasing in the output; other
            // group columns have no inherited order across groups.
            agg_schema.push(ColumnInfo { name: name.clone(), ty: pe.ty(), order });
        }
        for a in &aggs {
            agg_schema.push(ColumnInfo { name: a.name.clone(), ty: a.ty, order: OrderProp::None });
        }
        if flush_group_idx.is_none() {
            self.warnings.push(
                "aggregation has no ordered group-by attribute: groups can only be \
                 flushed at end of stream (the paper warns but permits this)"
                    .to_string(),
            );
        }

        let mut plan = Plan::Aggregate {
            group,
            aggs,
            flush_group_idx,
            input: Box::new(input),
            schema: agg_schema.clone(),
        };
        if let Some(pred) = having {
            plan = Plan::Filter { pred, input: Box::new(plan) };
        }
        // Reorder/compute the final projection over the aggregate output.
        let mut schema = Schema::new();
        for (name, pe) in &out_cols {
            schema.push(ColumnInfo {
                name: name.clone(),
                ty: pe.ty(),
                order: self.impute_order(pe, &agg_schema),
            });
        }
        Ok(Plan::Project { cols: out_cols, input: Box::new(plan), schema })
    }

    /// Resolve an expression in the post-aggregation context: group
    /// expressions become columns `0..n_group`, aggregates become columns
    /// `n_group..`, anything else recurses; bare input columns not in the
    /// group are errors.
    fn resolve_agg_output(
        &mut self,
        e: &Expr,
        env: &Env,
        group: &[(String, PExpr)],
        aggs: &mut Vec<AggSpec>,
    ) -> Result<PExpr, GsqlError> {
        // Group alias or identical expression?
        if let Expr::Column { qualifier: None, name } = e {
            if let Some(i) = group.iter().position(|(n, _)| n == name) {
                return Ok(PExpr::Col { index: i, ty: group[i].1.ty() });
            }
        }
        if let Ok(resolved) = self.try_resolve_quiet(e, env) {
            if let Some(i) = group.iter().position(|(_, g)| *g == resolved) {
                return Ok(PExpr::Col { index: i, ty: group[i].1.ty() });
            }
        }
        match e {
            Expr::Agg { func, arg } => {
                let parg = match arg {
                    Some(a) => {
                        if a.contains_agg() {
                            return Err(GsqlError::analyze("aggregates cannot be nested"));
                        }
                        Some(self.resolve_expr(a, env)?)
                    }
                    None => None,
                };
                let ty = agg_result_type(*func, parg.as_ref())?;
                // Reuse an identical aggregate if present.
                let idx = aggs
                    .iter()
                    .position(|s| s.func == *func && s.arg == parg)
                    .unwrap_or_else(|| {
                        let name = unique_agg_name(func.name(), aggs, group);
                        aggs.push(AggSpec { name, func: *func, arg: parg, ty });
                        aggs.len() - 1
                    });
                Ok(PExpr::Col { index: group.len() + idx, ty: aggs[idx].ty })
            }
            Expr::Binary { op, left, right } => {
                let l = self.resolve_agg_output(left, env, group, aggs)?;
                let r = self.resolve_agg_output(right, env, group, aggs)?;
                let ty = binary_result_type(*op, l.ty(), r.ty())?;
                Ok(PExpr::Binary { op: *op, left: Box::new(l), right: Box::new(r), ty })
            }
            Expr::Unary { op, arg } => {
                let a = self.resolve_agg_output(arg, env, group, aggs)?;
                if a.ty() != DataType::Bool {
                    return Err(GsqlError::analyze("NOT requires a boolean operand"));
                }
                Ok(PExpr::Unary { op: *op, arg: Box::new(a) })
            }
            Expr::Func { name, args } => {
                let sig = self
                    .catalog
                    .udf(name)
                    .ok_or_else(|| GsqlError::analyze(format!("unknown function `{name}`")))?
                    .clone();
                if args.len() != sig.args.len() {
                    return Err(GsqlError::analyze(format!(
                        "function `{name}` takes {} arguments, got {}",
                        sig.args.len(),
                        args.len()
                    )));
                }
                let mut pargs = Vec::new();
                for (i, a) in args.iter().enumerate() {
                    let pa = self.resolve_agg_output(a, env, group, aggs)?;
                    if pa.ty() != sig.args[i] {
                        return Err(GsqlError::analyze(format!(
                            "argument {} of `{name}` must be {}, got {}",
                            i + 1,
                            sig.args[i],
                            pa.ty()
                        )));
                    }
                    pargs.push(pa);
                }
                Ok(PExpr::Call { udf: name.clone(), args: pargs, ret: sig.ret, partial: sig.partial })
            }
            Expr::Column { .. } => Err(GsqlError::analyze(format!(
                "column in SELECT must appear in GROUP BY or inside an aggregate: {e:?}"
            ))),
            // Literals and params resolve as usual.
            other => self.resolve_expr(other, env),
        }
    }

    fn try_resolve_quiet(&mut self, e: &Expr, env: &Env) -> Result<PExpr, GsqlError> {
        if e.contains_agg() {
            return Err(GsqlError::analyze("contains aggregate"));
        }
        self.resolve_expr(e, env)
    }

    // ---- JOIN ----------------------------------------------------------

    fn analyze_join(&mut self, body: &SelectBody) -> Result<Plan, GsqlError> {
        if !body.group_by.is_empty()
            || body.having.is_some()
            || body.projections.iter().any(|p| p.expr.contains_agg())
        {
            return Err(GsqlError::analyze(
                "aggregation over a join must be expressed as a composed query \
                 (aggregate the join's named output)",
            ));
        }
        let left = self.scan_plan(&body.from[0])?;
        let right = self.scan_plan(&body.from[1])?;
        let lb = body.from[0].binding().to_string();
        let rb = body.from[1].binding().to_string();
        if lb == rb {
            return Err(GsqlError::analyze("join sides must have distinct binding names"));
        }
        let n_left = left.schema().len();
        let env = Env {
            bindings: vec![
                (lb, 0, left.schema().clone()),
                (rb, n_left, right.schema().clone()),
            ],
        };

        let where_expr = body.where_clause.as_ref().ok_or_else(|| {
            GsqlError::analyze("join requires a WHERE clause with an ordered-attribute window")
        })?;
        if where_expr.contains_agg() {
            return Err(GsqlError::analyze("aggregates are not allowed in WHERE"));
        }
        let mut window: Option<JoinWindow> = None;
        let mut residual: Vec<PExpr> = Vec::new();
        for conj in where_expr.conjuncts() {
            let pe = self.resolve_expr(conj, &env)?;
            if pe.ty() != DataType::Bool {
                return Err(GsqlError::analyze("WHERE conjunct must be boolean"));
            }
            if !try_absorb_window(&pe, n_left, left.schema(), right.schema(), &mut window) {
                residual.push(pe);
            }
        }
        let window = window.ok_or_else(|| {
            GsqlError::analyze(
                "join predicate must constrain an ordered attribute from each stream \
                 to define a join window (paper §2.1)",
            )
        })?;
        if window.lo > window.hi {
            return Err(GsqlError::analyze(format!(
                "join window is empty: [{}, {}]",
                window.lo, window.hi
            )));
        }

        let concat_schema = env.total_schema();
        let mut cols = Vec::new();
        let mut schema = Schema::new();
        for (i, item) in body.projections.iter().enumerate() {
            let pe = self.resolve_expr(&item.expr, &env)?;
            let name = output_name(item, i, &concat_schema, &pe);
            // Join ordering imputation (§2.1): the window column stays
            // monotone for equality windows and becomes banded for band
            // windows (band = window width, the banded-emit algorithm).
            let order = match &pe {
                PExpr::Col { index, .. }
                    if *index == window.left_col || *index == n_left + window.right_col =>
                {
                    if window.lo == window.hi {
                        OrderProp::Increasing { strict: false }
                    } else {
                        OrderProp::BandedIncreasing { band: (window.hi - window.lo) as u64 }
                    }
                }
                _ => OrderProp::None,
            };
            schema.push(ColumnInfo { name: name.clone(), ty: pe.ty(), order });
            cols.push((name, pe));
        }

        Ok(Plan::Join {
            left: Box::new(left),
            right: Box::new(right),
            window,
            residual: PExprAnd::fold(residual),
            cols,
            schema,
        })
    }

    // ---- MERGE ---------------------------------------------------------

    fn analyze_merge(&mut self, body: &crate::ast::MergeBody) -> Result<Plan, GsqlError> {
        if body.from.len() < 2 {
            return Err(GsqlError::analyze("MERGE requires at least two input streams"));
        }
        if body.columns.len() != body.from.len() {
            return Err(GsqlError::analyze(format!(
                "MERGE lists {} columns but has {} input streams",
                body.columns.len(),
                body.from.len()
            )));
        }
        let mut inputs = Vec::new();
        for t in &body.from {
            inputs.push(self.scan_plan(t)?);
        }
        // All schemas must agree (names and types).
        let first = inputs[0].schema().clone();
        for (i, p) in inputs.iter().enumerate().skip(1) {
            let s = p.schema();
            if s.len() != first.len()
                || s.iter()
                    .zip(first.iter())
                    .any(|(a, b)| a.name != b.name || a.ty != b.ty)
            {
                return Err(GsqlError::analyze(format!(
                    "MERGE inputs must have identical schemas; input {} differs",
                    i + 1
                )));
            }
        }
        // Resolve the merge columns: one per input, same index everywhere.
        let mut on_col = None;
        for ((stream, col), t) in body.columns.iter().zip(&body.from) {
            if stream != t.binding() {
                return Err(GsqlError::analyze(format!(
                    "MERGE column `{stream}.{col}` does not match input `{}` \
                     (columns must be listed in FROM order)",
                    t.binding()
                )));
            }
            let idx = first
                .iter()
                .position(|c| c.name == *col)
                .ok_or_else(|| GsqlError::analyze(format!("unknown MERGE column `{col}`")))?;
            match on_col {
                None => on_col = Some(idx),
                Some(prev) if prev != idx => {
                    return Err(GsqlError::analyze(
                        "MERGE columns must be the same attribute in every input",
                    ))
                }
                _ => {}
            }
        }
        let on_col = on_col.expect("at least two inputs");
        // The merge attribute must progress in every input.
        let mut order = inputs[0].schema()[on_col].order.clone();
        if !order.is_progressing() {
            return Err(GsqlError::analyze(format!(
                "MERGE attribute `{}` has no usable ordering property",
                first[on_col].name
            )));
        }
        for p in inputs.iter().skip(1) {
            let o = &p.schema()[on_col].order;
            if !o.is_progressing() {
                return Err(GsqlError::analyze(format!(
                    "MERGE attribute `{}` is not ordered in every input",
                    first[on_col].name
                )));
            }
            order = order.merge_meet(o);
        }
        let mut schema = first;
        schema[on_col].order = order;
        Ok(Plan::Merge { inputs, on_col, schema })
    }
}

/// Helper: AND-fold resolved predicates.
struct PExprAnd;
impl PExprAnd {
    fn fold(mut v: Vec<PExpr>) -> Option<PExpr> {
        let first = if v.is_empty() { return None } else { v.remove(0) };
        Some(v.into_iter().fold(first, |acc, e| PExpr::Binary {
            op: BinOp::And,
            left: Box::new(acc),
            right: Box::new(e),
            ty: DataType::Bool,
        }))
    }
}

// ----------------------------------------------------------------------
// Window extraction.
// ----------------------------------------------------------------------

/// Try to interpret `pe` as a window constraint between an ordered left
/// column and an ordered right column; fold it into `window` and return
/// `true` if so.
fn try_absorb_window(
    pe: &PExpr,
    n_left: usize,
    left_schema: &Schema,
    right_schema: &Schema,
    window: &mut Option<JoinWindow>,
) -> bool {
    let PExpr::Binary { op, left, right, .. } = pe else { return false };
    // Normalize each side into (col_index, constant offset).
    let Some((a_col, a_off)) = col_plus_const(left) else { return false };
    let Some((b_col, b_off)) = col_plus_const(right) else { return false };
    // One side must be a left column, the other a right column.
    let (lc, l_off, rc, r_off, op) = if a_col < n_left && b_col >= n_left {
        (a_col, a_off, b_col - n_left, b_off, *op)
    } else if b_col < n_left && a_col >= n_left {
        // Mirror the comparison.
        let m = match *op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        };
        (b_col, b_off, a_col - n_left, a_off, m)
    } else {
        return false;
    };
    // Both columns must be ordered attributes.
    if !left_schema[lc].order.is_progressing() || !right_schema[rc].order.is_progressing() {
        return false;
    }
    // Constraint: (L + l_off) op (R + r_off)  ⇒  d = L - R  op  (r_off - l_off).
    let k = r_off - l_off;
    let (lo, hi) = match op {
        BinOp::Eq => (Some(k), Some(k)),
        BinOp::Le => (None, Some(k)),
        BinOp::Lt => (None, Some(k - 1)),
        BinOp::Ge => (Some(k), None),
        BinOp::Gt => (Some(k + 1), None),
        _ => return false,
    };
    match window {
        None => {
            *window = Some(JoinWindow {
                left_col: lc,
                right_col: rc,
                lo: lo.unwrap_or(i64::MIN),
                hi: hi.unwrap_or(i64::MAX),
            });
        }
        Some(w) => {
            if w.left_col != lc || w.right_col != rc {
                return false; // a second pair of ordered columns: leave as residual
            }
            if let Some(lo) = lo {
                w.lo = w.lo.max(lo);
            }
            if let Some(hi) = hi {
                w.hi = w.hi.min(hi);
            }
        }
    }
    true
}

/// Decompose `col`, `col + k`, `col - k` into `(index, signed offset)`.
fn col_plus_const(e: &PExpr) -> Option<(usize, i64)> {
    match e {
        PExpr::Col { index, .. } => Some((*index, 0)),
        PExpr::Binary { op, left, right, .. } => {
            let (col, lit) = match (&**left, &**right) {
                (PExpr::Col { index, .. }, PExpr::Lit(Literal::UInt(k))) => (*index, *k as i64),
                (PExpr::Lit(Literal::UInt(k)), PExpr::Col { index, .. })
                    if *op == BinOp::Add =>
                {
                    (*index, *k as i64)
                }
                _ => return None,
            };
            match op {
                BinOp::Add => Some((col, lit)),
                BinOp::Sub => Some((col, -lit)),
                _ => None,
            }
        }
        _ => None,
    }
}

// ----------------------------------------------------------------------
// Types and names.
// ----------------------------------------------------------------------

fn unify_numeric(a: DataType, b: DataType) -> Option<DataType> {
    match (a, b) {
        (DataType::UInt, DataType::UInt) => Some(DataType::UInt),
        (DataType::Float, DataType::Float)
        | (DataType::Float, DataType::UInt)
        | (DataType::UInt, DataType::Float) => Some(DataType::Float),
        _ => None,
    }
}

fn binary_result_type(op: BinOp, l: DataType, r: DataType) -> Result<DataType, GsqlError> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Mod => unify_numeric(l, r).ok_or_else(|| {
            GsqlError::analyze(format!("arithmetic requires numeric operands, got {l} and {r}"))
        }),
        BitAnd | BitOr | BitXor => {
            if l == DataType::UInt && r == DataType::UInt {
                Ok(DataType::UInt)
            } else {
                Err(GsqlError::analyze("bit operations require uint operands"))
            }
        }
        And | Or => {
            if l == DataType::Bool && r == DataType::Bool {
                Ok(DataType::Bool)
            } else {
                Err(GsqlError::analyze("AND/OR require boolean operands"))
            }
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            let comparable = l == r || unify_numeric(l, r).is_some();
            if !comparable {
                return Err(GsqlError::analyze(format!("cannot compare {l} with {r}")));
            }
            if matches!(op, Lt | Le | Gt | Ge) && !l.is_ordered() && l == r {
                return Err(GsqlError::analyze(format!("{l} values are not ordered")));
            }
            Ok(DataType::Bool)
        }
    }
}

fn agg_result_type(func: AggFunc, arg: Option<&PExpr>) -> Result<DataType, GsqlError> {
    match (func, arg) {
        (AggFunc::Count, _) => Ok(DataType::UInt),
        (AggFunc::Sum, Some(a)) => {
            if a.ty().is_numeric() {
                Ok(a.ty())
            } else {
                Err(GsqlError::analyze("sum() requires a numeric argument"))
            }
        }
        (AggFunc::Avg, Some(a)) => {
            if a.ty().is_numeric() {
                Ok(DataType::Float)
            } else {
                Err(GsqlError::analyze("avg() requires a numeric argument"))
            }
        }
        (AggFunc::Min | AggFunc::Max, Some(a)) => {
            if a.ty().is_ordered() {
                Ok(a.ty())
            } else {
                Err(GsqlError::analyze("min()/max() require an ordered argument"))
            }
        }
        (f, None) => Err(GsqlError::analyze(format!("{f}() requires an argument"))),
    }
}

/// Name for a projected column: the alias, else the bare column name, else
/// a synthesized `f<i>`.
fn output_name(item: &SelectItem, i: usize, _schema: &Schema, _pe: &PExpr) -> String {
    if let Some(a) = &item.alias {
        return a.clone();
    }
    if let Expr::Column { name, .. } = &item.expr {
        return name.clone();
    }
    format!("f{i}")
}

fn agg_output_name(
    e: &Expr,
    i: usize,
    _schema: &Schema,
    _group: &[(String, PExpr)],
    _pe: &PExpr,
) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Agg { func, .. } => func.name().to_string(),
        _ => format!("f{i}"),
    }
}

fn unique_agg_name(base: &str, aggs: &[AggSpec], group: &[(String, PExpr)]) -> String {
    let taken =
        |n: &str| aggs.iter().any(|a| a.name == n) || group.iter().any(|(g, _)| g == n);
    if !taken(base) {
        return base.to_string();
    }
    for k in 2.. {
        let cand = format!("{base}_{k}");
        if !taken(&cand) {
            return cand;
        }
    }
    unreachable!("some suffix is always free")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::InterfaceDef;
    use crate::parser::parse_query;
    use gs_packet::capture::LinkType;

    fn catalog() -> Catalog {
        let mut c = Catalog::with_builtins();
        c.add_interface(InterfaceDef { name: "eth0".into(), id: 0, link: LinkType::Ethernet });
        c.add_interface(InterfaceDef { name: "eth1".into(), id: 1, link: LinkType::Ethernet });
        c
    }

    fn run(src: &str) -> AnalyzedQuery {
        analyze(&parse_query(src).unwrap(), &catalog()).unwrap()
    }

    fn run_err(src: &str) -> GsqlError {
        analyze(&parse_query(src).unwrap(), &catalog()).unwrap_err()
    }

    #[test]
    fn simple_selection_projects_with_ordering() {
        let a = run(
            "DEFINE { query_name t0; } \
             Select destIP, destPort, time From eth0.tcp \
             Where IPVersion = 4 and Protocol = 6",
        );
        assert_eq!(a.name, "t0");
        let Plan::Project { schema, input, .. } = &a.plan else { panic!("{:?}", a.plan) };
        assert_eq!(schema.len(), 3);
        assert_eq!(schema[2].name, "time");
        assert_eq!(schema[2].order, OrderProp::Increasing { strict: false });
        assert_eq!(schema[0].ty, DataType::Ip);
        assert!(matches!(**input, Plan::Filter { .. }));
    }

    #[test]
    fn bucket_expression_keeps_order() {
        let a = run("Select time/60 as tb, len From eth0.ip");
        let Plan::Project { schema, .. } = &a.plan else { panic!() };
        assert_eq!(schema[0].order, OrderProp::Increasing { strict: false });
        assert_eq!(schema[1].order, OrderProp::None);
    }

    #[test]
    fn aggregation_with_flush_column() {
        let a = run(
            "Select tb, count(*), sum(len) From eth0.ip Group By time/60 as tb",
        );
        let Plan::Project { input, .. } = &a.plan else { panic!() };
        let Plan::Aggregate { group, aggs, flush_group_idx, schema, .. } = &**input else {
            panic!("{input:?}")
        };
        assert_eq!(group.len(), 1);
        assert_eq!(aggs.len(), 2);
        assert_eq!(*flush_group_idx, Some(0));
        assert_eq!(schema[0].order, OrderProp::Increasing { strict: false });
        assert!(a.warnings.is_empty());
    }

    #[test]
    fn aggregation_without_ordered_key_warns() {
        let a = run("Select srcIP, count(*) From eth0.ip Group By srcIP");
        assert!(!a.warnings.is_empty());
        let Plan::Project { input, .. } = &a.plan else { panic!() };
        let Plan::Aggregate { flush_group_idx, .. } = &**input else { panic!() };
        assert_eq!(*flush_group_idx, None);
    }

    #[test]
    fn paper_lpm_query_analyzes() {
        let mut c = catalog();
        // Register the upstream stream as the paper's tcpdest.
        c.add_stream(
            "tcpdest",
            vec![
                ColumnInfo {
                    name: "destIP".into(),
                    ty: DataType::Ip,
                    order: OrderProp::None,
                },
                ColumnInfo {
                    name: "time".into(),
                    ty: DataType::UInt,
                    order: OrderProp::Increasing { strict: false },
                },
            ],
        );
        let q = parse_query(
            "Select peerid, tb, count(*) FROM tcpdest \
             Group by time/60 as tb, getlpmid(destIP, 'peerid.tbl') as peerid",
        )
        .unwrap();
        let a = analyze(&q, &c).unwrap();
        let Plan::Project { cols, input, .. } = &a.plan else { panic!() };
        assert_eq!(cols[0].0, "peerid");
        assert_eq!(cols[1].0, "tb");
        let Plan::Aggregate { group, flush_group_idx, .. } = &**input else { panic!() };
        // tb is group 0 in GROUP BY order, and it is the flush column.
        assert_eq!(group[0].0, "tb");
        assert_eq!(*flush_group_idx, Some(0));
        assert!(group[1].1.has_partial_call());
    }

    #[test]
    fn join_window_equality() {
        let a = run(
            "Select B.time, B.srcIP FROM eth0.tcp B, eth1.tcp C \
             WHERE B.time = C.time and B.srcIP = C.srcIP",
        );
        let Plan::Join { window, residual, schema, .. } = &a.plan else { panic!("{:?}", a.plan) };
        assert_eq!((window.lo, window.hi), (0, 0));
        assert!(residual.is_some()); // srcIP equality is residual
        assert_eq!(schema[0].order, OrderProp::Increasing { strict: false });
    }

    #[test]
    fn join_window_band() {
        let a = run(
            "Select B.time FROM eth0.tcp B, eth1.tcp C \
             WHERE B.time >= C.time - 1 and B.time <= C.time + 1",
        );
        let Plan::Join { window, schema, .. } = &a.plan else { panic!() };
        assert_eq!((window.lo, window.hi), (-1, 1));
        // Banded output ordering, band = window width (paper §2.1).
        assert_eq!(schema[0].order, OrderProp::BandedIncreasing { band: 2 });
    }

    #[test]
    fn join_without_window_rejected() {
        let e = run_err(
            "Select B.srcIP FROM eth0.tcp B, eth1.tcp C WHERE B.srcIP = C.srcIP",
        );
        assert!(e.message.contains("join window"), "{}", e.message);
    }

    #[test]
    fn three_way_join_rejected() {
        let e = run_err("Select a.time FROM eth0.tcp a, eth1.tcp b, eth0.udp c WHERE a.time = b.time");
        assert!(e.message.contains("two streams"));
    }

    #[test]
    fn merge_analyzes_and_meets_order() {
        let mut c = catalog();
        let sch = vec![ColumnInfo {
            name: "time".into(),
            ty: DataType::UInt,
            order: OrderProp::Increasing { strict: false },
        }];
        c.add_stream("tcpdest0", sch.clone());
        c.add_stream("tcpdest1", sch);
        let q = parse_query(
            "DEFINE { query_name tcpdest; } \
             Merge tcpdest0.time : tcpdest1.time From tcpdest0, tcpdest1",
        )
        .unwrap();
        let a = analyze(&q, &c).unwrap();
        let Plan::Merge { on_col, schema, inputs } = &a.plan else { panic!() };
        assert_eq!(*on_col, 0);
        assert_eq!(inputs.len(), 2);
        assert_eq!(schema[0].order, OrderProp::Increasing { strict: false });
    }

    #[test]
    fn merge_schema_mismatch_rejected() {
        let mut c = catalog();
        c.add_stream(
            "a",
            vec![ColumnInfo {
                name: "t".into(),
                ty: DataType::UInt,
                order: OrderProp::Increasing { strict: false },
            }],
        );
        c.add_stream(
            "b",
            vec![ColumnInfo {
                name: "t".into(),
                ty: DataType::Float,
                order: OrderProp::Increasing { strict: false },
            }],
        );
        let q = parse_query("Merge a.t : b.t From a, b").unwrap();
        let e = analyze(&q, &c).unwrap_err();
        assert!(e.message.contains("identical schemas"));
    }

    #[test]
    fn merge_unordered_column_rejected() {
        let mut c = catalog();
        let sch = vec![ColumnInfo { name: "x".into(), ty: DataType::UInt, order: OrderProp::None }];
        c.add_stream("a", sch.clone());
        c.add_stream("b", sch);
        let q = parse_query("Merge a.x : b.x From a, b").unwrap();
        assert!(analyze(&q, &c).is_err());
    }

    #[test]
    fn param_types_inferred() {
        let a = run("Select time From eth0.tcp Where destPort = $port");
        assert_eq!(a.params, vec![("port".into(), DataType::UInt)]);
        let a = run("Select time From eth0.tcp Where srcIP = $net");
        assert_eq!(a.params, vec![("net".into(), DataType::Ip)]);
    }

    #[test]
    fn type_errors_detected() {
        assert!(run_err("Select time + srcIP From eth0.tcp").message.contains("numeric"));
        assert!(run_err("Select time From eth0.tcp Where payload = 4")
            .message
            .contains("compare"));
        assert!(run_err("Select time From eth0.tcp Where time").message.contains("boolean"));
        assert!(run_err("Select sum(payload) From eth0.tcp Group By time").message.contains("numeric"));
    }

    #[test]
    fn unknown_names_detected() {
        assert!(run_err("Select nosuch From eth0.tcp").message.contains("unknown column"));
        assert!(run_err("Select time From eth9.tcp").message.contains("unknown interface"));
        assert!(run_err("Select time From eth0.nosuch").message.contains("unknown protocol"));
        assert!(run_err("Select f(time) From eth0.tcp").message.contains("unknown function"));
    }

    #[test]
    fn unknown_stream_rejected_without_panic() {
        // A bare FROM name that is neither a registered stream nor a
        // protocol must fail analysis cleanly, not unwind.
        let e = run_err("Select time From nosuchstream");
        assert!(e.message.contains("unknown stream or protocol"), "{}", e.message);
        // Merge over an undefined stream takes the same path.
        let e = analyze(
            &parse_query("Merge a.time : b.time From nostream_a a, nostream_b b").unwrap(),
            &catalog(),
        )
        .unwrap_err();
        assert!(e.message.contains("unknown"), "{}", e.message);
    }

    #[test]
    fn protocol_without_default_interface_rejected() {
        // An interface-less catalog cannot resolve a bare protocol scan.
        let bare = Catalog::with_builtins();
        let e = analyze(&parse_query("Select time From tcp").unwrap(), &bare).unwrap_err();
        assert!(e.message.contains("no default interface"), "{}", e.message);
    }

    #[test]
    fn bare_column_outside_group_rejected() {
        let e = run_err("Select srcIP, count(*) From eth0.ip Group By destIP");
        assert!(e.message.contains("GROUP BY"), "{}", e.message);
    }

    #[test]
    fn handle_param_must_be_literal() {
        let e = run_err("Select getlpmid(destIP, payload) From eth0.tcp");
        assert!(e.message.contains("pass-by-handle"), "{}", e.message);
    }

    #[test]
    fn ratio_of_aggregates() {
        // The Babcock Q3 shape: a ratio of two aggregates over one stream.
        let a = run(
            "Select tb, to_float(sum(len)) / to_float(count(*)) as avglen \
             From eth0.ip Group By time/60 as tb",
        );
        let Plan::Project { schema, input, .. } = &a.plan else { panic!() };
        assert_eq!(schema[1].ty, DataType::Float);
        let Plan::Aggregate { aggs, .. } = &**input else { panic!() };
        assert_eq!(aggs.len(), 2);
    }

    #[test]
    fn duplicate_aggregates_are_shared() {
        let a = run("Select count(*), count(*) From eth0.ip Group By time");
        let Plan::Project { input, .. } = &a.plan else { panic!() };
        let Plan::Aggregate { aggs, .. } = &**input else { panic!() };
        assert_eq!(aggs.len(), 1);
    }

    #[test]
    fn default_interface_used_for_bare_protocol() {
        let a = run("Select time From tcp");
        let Plan::Project { input, .. } = &a.plan else { panic!() };
        let Plan::ProtocolScan { interface, .. } = &**input else { panic!("{input:?}") };
        assert_eq!(interface, "eth0");
    }

    #[test]
    fn having_filters_after_aggregate() {
        let a = run("Select tb, count(*) From eth0.ip Group By time/60 as tb Having count(*) > 10");
        let Plan::Project { input, .. } = &a.plan else { panic!() };
        assert!(matches!(**input, Plan::Filter { .. }));
    }
}
