//! Pretty-printer: renders an AST back to GSQL text. Used for diagnostics
//! and for parse → print → parse round-trip testing.

use crate::ast::{Expr, MergeBody, Query, QueryBody, SelectBody, SelectItem, TableRef, UnOp};
use std::fmt::Write;

/// Render a query as GSQL source.
pub fn print_query(q: &Query) -> String {
    let mut s = String::new();
    if !q.defines.is_empty() {
        s.push_str("DEFINE { ");
        for (k, v) in &q.defines {
            let _ = write!(s, "{k} {v}; ");
        }
        s.push_str("}\n");
    }
    match &q.body {
        QueryBody::Select(b) => print_select(&mut s, b),
        QueryBody::Merge(b) => print_merge(&mut s, b),
    }
    s
}

fn print_select(s: &mut String, b: &SelectBody) {
    s.push_str("SELECT ");
    print_items(s, &b.projections);
    s.push_str(" FROM ");
    print_tables(s, &b.from);
    if let Some(w) = &b.where_clause {
        s.push_str(" WHERE ");
        print_expr(s, w, 0);
    }
    if !b.group_by.is_empty() {
        s.push_str(" GROUP BY ");
        print_items(s, &b.group_by);
    }
    if let Some(h) = &b.having {
        s.push_str(" HAVING ");
        print_expr(s, h, 0);
    }
}

fn print_merge(s: &mut String, b: &MergeBody) {
    s.push_str("MERGE ");
    for (i, (stream, col)) in b.columns.iter().enumerate() {
        if i > 0 {
            s.push_str(" : ");
        }
        let _ = write!(s, "{stream}.{col}");
    }
    s.push_str(" FROM ");
    print_tables(s, &b.from);
}

fn print_items(s: &mut String, items: &[SelectItem]) {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        print_expr(s, &item.expr, 0);
        if let Some(a) = &item.alias {
            let _ = write!(s, " AS {a}");
        }
    }
}

fn print_tables(s: &mut String, tables: &[TableRef]) {
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        if let Some(iface) = &t.interface {
            let _ = write!(s, "{iface}.");
        }
        s.push_str(&t.name);
        if let Some(a) = &t.alias {
            let _ = write!(s, " {a}");
        }
    }
}

/// Binding power for parenthesization; mirrors the parser's precedence.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => {
            use crate::ast::BinOp::*;
            match op {
                Or => 1,
                And => 2,
                Eq | Ne | Lt | Le | Gt | Ge => 4,
                BitOr => 5,
                BitXor => 6,
                BitAnd => 7,
                Add | Sub => 8,
                Mul | Div | Mod => 9,
            }
        }
        Expr::Unary { .. } => 3,
        _ => 10,
    }
}

fn print_expr(s: &mut String, e: &Expr, min_prec: u8) {
    let p = prec(e);
    let need_parens = p < min_prec;
    if need_parens {
        s.push('(');
    }
    match e {
        Expr::Column { qualifier, name } => {
            if let Some(q) = qualifier {
                let _ = write!(s, "{q}.");
            }
            s.push_str(name);
        }
        Expr::UIntLit(v) => {
            let _ = write!(s, "{v}");
        }
        Expr::FloatLit(v) => {
            // Keep a decimal point so it re-lexes as a float.
            if v.fract() == 0.0 {
                let _ = write!(s, "{v:.1}");
            } else {
                let _ = write!(s, "{v}");
            }
        }
        Expr::StrLit(v) => {
            let _ = write!(s, "'{}'", v.replace('\'', "''"));
        }
        Expr::IpLit(v) => {
            s.push_str(&gs_packet::ip::fmt_ipv4(*v));
        }
        Expr::BoolLit(b) => s.push_str(if *b { "TRUE" } else { "FALSE" }),
        Expr::Param(p) => {
            let _ = write!(s, "${p}");
        }
        Expr::Star => s.push('*'),
        Expr::Unary { op: UnOp::Not, arg } => {
            s.push_str("NOT ");
            print_expr(s, arg, 3);
        }
        Expr::Binary { op, left, right } => {
            // Comparisons are non-associative in the grammar: a nested
            // comparison operand must be parenthesized on either side.
            let left_min = if op.is_comparison() { p + 1 } else { p };
            print_expr(s, left, left_min);
            let _ = write!(s, " {} ", op.symbol());
            // Right side binds one tighter to keep left-associativity.
            print_expr(s, right, p + 1);
        }
        Expr::Func { name, args } => {
            let _ = write!(s, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                print_expr(s, a, 0);
            }
            s.push(')');
        }
        Expr::Agg { func, arg } => {
            let _ = write!(s, "{func}(");
            match arg {
                Some(a) => print_expr(s, a, 0),
                None => s.push('*'),
            }
            s.push(')');
        }
    }
    if need_parens {
        s.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn roundtrip(src: &str) {
        let q1 = parse_query(src).unwrap();
        let printed = print_query(&q1);
        let q2 = parse_query(&printed).unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
        assert_eq!(q1, q2, "print/reparse changed the AST for `{printed}`");
    }

    #[test]
    fn roundtrips_paper_queries() {
        roundtrip(
            "DEFINE { query_name tcpdest0; } \
             Select destIP, destPort, time From eth0.tcp \
             Where IPVersion = 4 and Protocol = 6",
        );
        roundtrip("Merge tcpdest0.time : tcpdest1.time From tcpdest0, tcpdest1");
        roundtrip(
            "Select peerid, tb, count(*) FROM tcpdest \
             Group by time/60 as tb, getlpmid(destIP, 'peerid.tbl') as peerid",
        );
    }

    #[test]
    fn roundtrips_precedence() {
        roundtrip("Select (a + b) * c, a + b * c FROM s");
        roundtrip("Select x FROM s WHERE a = 1 AND (b = 2 OR c = 3)");
        roundtrip("Select x FROM s WHERE NOT (a = 1 OR b = 2)");
        roundtrip("Select x FROM s WHERE flags & 2 = 2");
        roundtrip("Select a - (b - c) FROM s");
    }

    #[test]
    fn roundtrips_literals() {
        roundtrip("Select 1, 2.5, 'it''s', 10.0.0.1, TRUE, $p FROM s");
        roundtrip("Select f(), g(x, 1) FROM s HAVING count(*) > 3");
    }

    #[test]
    fn roundtrips_join() {
        roundtrip(
            "Select B.time FROM eth0.tcp B, eth1.tcp C \
             WHERE B.time >= C.time - 1 AND B.time <= C.time + 1",
        );
    }
}
