//! The schema catalog: protocols, interfaces, named query streams, and the
//! user-defined function registry.
//!
//! "Users can make new functions available by adding the code for the
//! function to the function library, and registering the function
//! prototype in the function registry" (paper §2.2). The catalog holds the
//! prototypes; implementations are registered with the runtime under the
//! same names.

use crate::ordering::OrderProp;
use crate::plan::{ColumnInfo, Schema};
use crate::types::DataType;
use gs_packet::capture::LinkType;
use gs_packet::interp::ProtocolDef;
use std::collections::HashMap;

/// Cost class of a UDF, used by the LFTA/HFTA splitter: expensive
/// functions never run in an LFTA ("Regular expression finding is too
/// expensive for an LFTA", §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdfCost {
    /// Cheap enough for the capture path.
    Cheap,
    /// Must run in an HFTA.
    Expensive,
}

/// A UDF prototype in the function registry.
#[derive(Debug, Clone, PartialEq)]
pub struct UdfSig {
    /// Function name as written in GSQL.
    pub name: String,
    /// Argument types.
    pub args: Vec<DataType>,
    /// Return type.
    pub ret: DataType,
    /// Partial functions may not return a value; the tuple is then
    /// discarded, "the same as if there is no result from a join".
    pub partial: bool,
    /// Indices of pass-by-handle parameters: literals or query parameters
    /// that need expensive pre-processing at instantiation (compiled
    /// regexes, loaded prefix tables).
    pub handle_params: Vec<usize>,
    /// Cost class for the splitter.
    pub cost: UdfCost,
}

/// An interface declaration binding a symbolic name to a packet source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceDef {
    /// Symbolic name (`eth0`).
    pub name: String,
    /// Numeric id stamped on captured packets.
    pub id: u16,
    /// How this interface's bytes are interpreted.
    pub link: LinkType,
}

/// The catalog against which queries are analyzed.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    interfaces: HashMap<String, InterfaceDef>,
    streams: HashMap<String, Schema>,
    udfs: HashMap<String, UdfSig>,
    default_interface: Option<String>,
}

impl Catalog {
    /// An empty catalog with the built-in UDF prototypes registered.
    pub fn with_builtins() -> Catalog {
        let mut c = Catalog::default();
        c.add_udf(UdfSig {
            name: "getlpmid".into(),
            args: vec![DataType::Ip, DataType::Str],
            ret: DataType::UInt,
            partial: true,
            handle_params: vec![1],
            cost: UdfCost::Cheap,
        });
        c.add_udf(UdfSig {
            name: "str_match_regex".into(),
            args: vec![DataType::Str, DataType::Str],
            ret: DataType::Bool,
            partial: false,
            handle_params: vec![1],
            cost: UdfCost::Expensive,
        });
        c.add_udf(UdfSig {
            name: "str_find_substr".into(),
            args: vec![DataType::Str, DataType::Str],
            ret: DataType::Bool,
            partial: false,
            handle_params: vec![],
            cost: UdfCost::Expensive,
        });
        c.add_udf(UdfSig {
            name: "str_len".into(),
            args: vec![DataType::Str],
            ret: DataType::UInt,
            partial: false,
            handle_params: vec![],
            cost: UdfCost::Cheap,
        });
        c.add_udf(UdfSig {
            name: "to_float".into(),
            args: vec![DataType::UInt],
            ret: DataType::Float,
            partial: false,
            handle_params: vec![],
            cost: UdfCost::Cheap,
        });
        // The self-monitoring stream (paper §4: "Gigascope monitors
        // itself" using ordinary streams). The engines periodically emit
        // one row per (node, counter) pair of the stats registry, so any
        // GSQL query can read `GS_STATS` like a packet-derived stream.
        c.add_stream(
            "GS_STATS",
            vec![
                ColumnInfo {
                    name: "time".into(),
                    ty: DataType::UInt,
                    order: OrderProp::Increasing { strict: false },
                },
                ColumnInfo { name: "node".into(), ty: DataType::Str, order: OrderProp::None },
                ColumnInfo { name: "counter".into(), ty: DataType::Str, order: OrderProp::None },
                ColumnInfo { name: "value".into(), ty: DataType::UInt, order: OrderProp::None },
            ],
        );
        c
    }

    /// Register an interface. The first registered interface becomes the
    /// default ("if no Interface is given, a default Interface is
    /// implied").
    pub fn add_interface(&mut self, def: InterfaceDef) {
        if self.default_interface.is_none() {
            self.default_interface = Some(def.name.clone());
        }
        self.interfaces.insert(def.name.clone(), def);
    }

    /// Look up an interface by name.
    pub fn interface(&self, name: &str) -> Option<&InterfaceDef> {
        self.interfaces.get(name)
    }

    /// The default interface, if any is registered.
    pub fn default_interface(&self) -> Option<&InterfaceDef> {
        self.default_interface.as_deref().and_then(|n| self.interfaces.get(n))
    }

    /// Register a named query's output schema so other queries can read it
    /// by name in their FROM clause.
    pub fn add_stream(&mut self, name: impl Into<String>, schema: Schema) {
        self.streams.insert(name.into(), schema);
    }

    /// Look up a named stream's schema.
    pub fn stream(&self, name: &str) -> Option<&Schema> {
        self.streams.get(name)
    }

    /// Unregister a named stream (query removal). Returns whether the
    /// stream was present.
    pub fn remove_stream(&mut self, name: &str) -> bool {
        self.streams.remove(name).is_some()
    }

    /// Register a UDF prototype (replacing any previous one of that name).
    pub fn add_udf(&mut self, sig: UdfSig) {
        self.udfs.insert(sig.name.clone(), sig);
    }

    /// Look up a UDF prototype.
    pub fn udf(&self, name: &str) -> Option<&UdfSig> {
        self.udfs.get(name)
    }

    /// Look up a built-in protocol definition.
    pub fn protocol(&self, name: &str) -> Option<&'static ProtocolDef> {
        gs_packet::interp::protocol(name)
    }

    /// The analyzer-facing schema of a protocol stream: field types from
    /// the interpretation library, ordering properties from its hints.
    pub fn protocol_schema(&self, name: &str) -> Option<Schema> {
        let def = self.protocol(name)?;
        Some(
            def.fields
                .iter()
                .map(|f| ColumnInfo {
                    name: f.name.to_string(),
                    ty: DataType::from_field(f.ty),
                    order: OrderProp::from_hint(f.order),
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_udfs_present() {
        let c = Catalog::with_builtins();
        let lpm = c.udf("getlpmid").unwrap();
        assert!(lpm.partial);
        assert_eq!(lpm.handle_params, vec![1]);
        assert_eq!(lpm.cost, UdfCost::Cheap);
        let re = c.udf("str_match_regex").unwrap();
        assert_eq!(re.cost, UdfCost::Expensive);
        assert!(c.udf("nope").is_none());
    }

    #[test]
    fn first_interface_is_default() {
        let mut c = Catalog::with_builtins();
        assert!(c.default_interface().is_none());
        c.add_interface(InterfaceDef { name: "eth0".into(), id: 0, link: LinkType::Ethernet });
        c.add_interface(InterfaceDef { name: "eth1".into(), id: 1, link: LinkType::Ethernet });
        assert_eq!(c.default_interface().unwrap().name, "eth0");
        assert_eq!(c.interface("eth1").unwrap().id, 1);
    }

    #[test]
    fn protocol_schema_has_ordering() {
        let c = Catalog::with_builtins();
        let s = c.protocol_schema("tcp").unwrap();
        let time = s.iter().find(|c| c.name == "time").unwrap();
        assert_eq!(time.order, OrderProp::Increasing { strict: false });
        assert_eq!(time.ty, DataType::UInt);
        let payload = s.iter().find(|c| c.name == "payload").unwrap();
        assert_eq!(payload.ty, DataType::Str);
        assert!(c.protocol_schema("nosuch").is_none());
    }

    #[test]
    fn gs_stats_stream_is_builtin() {
        let c = Catalog::with_builtins();
        let s = c.stream("GS_STATS").unwrap();
        let names: Vec<&str> = s.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["time", "node", "counter", "value"]);
        assert_eq!(s[0].order, OrderProp::Increasing { strict: false });
        assert_eq!(s[1].ty, DataType::Str);
    }

    #[test]
    fn streams_register_and_resolve() {
        let mut c = Catalog::with_builtins();
        c.add_stream(
            "tcpdest0",
            vec![ColumnInfo {
                name: "time".into(),
                ty: DataType::UInt,
                order: OrderProp::Increasing { strict: false },
            }],
        );
        assert_eq!(c.stream("tcpdest0").unwrap().len(), 1);
    }
}
