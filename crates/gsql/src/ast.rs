//! Abstract syntax for GSQL.

use std::fmt;

/// An interface declaration from the data definition language:
/// `INTERFACE eth0 0 ether;` binds a symbolic name to a packet source
/// ("To completely specify a data source, the Protocol must be bound to an
/// Interface — a symbolic name which the run time system can bind to a
/// source of packets", paper §2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceDecl {
    /// Symbolic name (`eth0`).
    pub name: String,
    /// Numeric id carried by captured packets.
    pub id: u16,
    /// Link-level interpretation of the interface's bytes.
    pub link: gs_packet::capture::LinkType,
}

/// A parsed GSQL program: interface declarations plus queries, in source
/// order (FROM-clause subqueries appear desugared before their parents).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramAst {
    /// Interface declarations.
    pub interfaces: Vec<InterfaceDecl>,
    /// The queries.
    pub queries: Vec<Query>,
}

/// A complete GSQL query: optional DEFINE block plus a SELECT or MERGE body.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `DEFINE { key value; ... }` properties (query name, parameters...).
    pub defines: Vec<(String, String)>,
    /// The query body.
    pub body: QueryBody,
}

impl Query {
    /// The query's name from the DEFINE block, if present.
    pub fn name(&self) -> Option<&str> {
        self.defines
            .iter()
            .find(|(k, _)| k == "query_name")
            .map(|(_, v)| v.as_str())
    }

    /// Whether this query was hoisted out of a FROM clause by the parser
    /// (plumbing for subquery desugaring, not a user-named query).
    pub fn is_hoisted(&self) -> bool {
        self.defines.iter().any(|(k, v)| k == "hoisted" && v == "true")
    }
}

/// SELECT or MERGE.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryBody {
    /// Selection / projection / join / aggregation query.
    Select(SelectBody),
    /// Order-preserving union (the GSQL `Merge` extension, §2.2).
    Merge(MergeBody),
}

/// The clauses of a SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectBody {
    /// Projected expressions.
    pub projections: Vec<SelectItem>,
    /// One stream (scan) or two streams (join).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions (with the paper's `expr AS name` extension).
    pub group_by: Vec<SelectItem>,
    /// HAVING predicate over group/aggregate values.
    pub having: Option<Expr>,
}

/// The clauses of a MERGE query: `Merge a.ts : b.ts From a, b`.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeBody {
    /// `(stream, column)` pairs, one per merged input, colon-separated in
    /// the source; all must name the same ordered attribute role.
    pub columns: Vec<(String, String)>,
    /// The merged input streams.
    pub from: Vec<TableRef>,
}

/// One projected or grouping expression with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: Expr,
    /// `AS alias`, if given.
    pub alias: Option<String>,
}

/// A FROM-clause source: `eth0.tcp`, `tcpdest0`, or `tcp B` (with alias).
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Interface qualifier (`eth0` in `eth0.tcp`). Absent means either a
    /// named-query stream or the default interface.
    pub interface: Option<String>,
    /// Protocol or named-query identifier.
    pub name: String,
    /// Binding alias (`FROM tcp B` makes `B.destPort` valid).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this source binds in column qualifiers.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division on `uint` — the `time/60` bucket idiom)
    Div,
    /// `%`
    Mod,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
}

impl BinOp {
    /// Whether this is a comparison producing `bool`.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// Whether this is a boolean connective.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// GSQL surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `NOT`
    Not,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `count(*)` / `count(expr)`
    Count,
    /// `sum(expr)`
    Sum,
    /// `min(expr)`
    Min,
    /// `max(expr)`
    Max,
    /// `avg(expr)`
    Avg,
}

impl AggFunc {
    /// Parse an aggregate function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            _ => return None,
        })
    }

    /// Surface name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A GSQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified: `B.ts` or `destPort`.
    Column {
        /// Stream binding qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Unsigned integer literal (decimal or `0x` hex).
    UIntLit(u64),
    /// Floating-point literal.
    FloatLit(f64),
    /// Single-quoted string literal.
    StrLit(String),
    /// Dotted-quad IPv4 address literal.
    IpLit(u32),
    /// `TRUE` / `FALSE`.
    BoolLit(bool),
    /// Query parameter `$name`, bound at instantiation (paper §3).
    Param(String),
    /// `*` (only legal inside `count(*)`).
    Star,
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        arg: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// User-defined function call, e.g. `getlpmid(destIP, 'peerid.tbl')`.
    Func {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Aggregate call; `arg == None` means `count(*)`.
    Agg {
        /// Which aggregate.
        func: AggFunc,
        /// Aggregated expression (absent for `count(*)`).
        arg: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Visit this expression and all subexpressions, pre-order.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Unary { arg, .. } => arg.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Agg { arg: Some(a), .. } => a.walk(f),
            _ => {}
        }
    }

    /// Whether any aggregate call appears in this expression.
    pub fn contains_agg(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Agg { .. }) {
                found = true;
            }
        });
        found
    }

    /// Split a predicate into its top-level AND conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn go<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary { op: BinOp::And, left, right } => {
                    go(left, out);
                    go(right, out);
                }
                other => out.push(other),
            }
        }
        go(self, &mut out);
        out
    }

    /// Rebuild a predicate from conjuncts (AND-fold); `None` when empty.
    pub fn and_all(mut exprs: Vec<Expr>) -> Option<Expr> {
        let first = if exprs.is_empty() { return None } else { exprs.remove(0) };
        Some(exprs.into_iter().fold(first, |acc, e| Expr::Binary {
            op: BinOp::And,
            left: Box::new(acc),
            right: Box::new(e),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(n: &str) -> Expr {
        Expr::Column { qualifier: None, name: n.into() }
    }

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::and_all(vec![col("a"), col("b"), col("c")]).unwrap();
        let cs = e.conjuncts();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0], &col("a"));
        assert_eq!(cs[2], &col("c"));
    }

    #[test]
    fn or_is_a_single_conjunct() {
        let e = Expr::Binary {
            op: BinOp::Or,
            left: Box::new(col("a")),
            right: Box::new(col("b")),
        };
        assert_eq!(e.conjuncts().len(), 1);
    }

    #[test]
    fn contains_agg_detects_nested() {
        let e = Expr::Binary {
            op: BinOp::Div,
            left: Box::new(Expr::Agg { func: AggFunc::Count, arg: None }),
            right: Box::new(col("n")),
        };
        assert!(e.contains_agg());
        assert!(!col("x").contains_agg());
    }

    #[test]
    fn and_all_empty_is_none() {
        assert_eq!(Expr::and_all(vec![]), None);
        assert_eq!(Expr::and_all(vec![col("x")]), Some(col("x")));
    }

    #[test]
    fn table_ref_binding_prefers_alias() {
        let t = TableRef { interface: None, name: "tcp".into(), alias: Some("B".into()) };
        assert_eq!(t.binding(), "B");
        let t = TableRef { interface: Some("eth0".into()), name: "tcp".into(), alias: None };
        assert_eq!(t.binding(), "tcp");
    }

    #[test]
    fn query_name_from_defines() {
        let q = Query {
            defines: vec![("query_name".into(), "tcpdest0".into())],
            body: QueryBody::Merge(MergeBody { columns: vec![], from: vec![] }),
        };
        assert_eq!(q.name(), Some("tcpdest0"));
    }
}
