//! GSQL tokenizer.
//!
//! Keywords are case-insensitive (SQL convention); identifiers preserve
//! case (packet field names like `destPort` are camel-cased). IPv4
//! literals (`192.168.0.1`) are lexed as single tokens so address
//! constants work without quoting.

use crate::error::{GsqlError, Pos};

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Where the token starts.
    pub pos: Pos,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (uppercased).
    Keyword(Keyword),
    /// Identifier (case preserved).
    Ident(String),
    /// Unsigned integer literal.
    UInt(u64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// IPv4 literal, host order.
    Ip(u32),
    /// `$param`.
    Param(String),
    /// Punctuation / operator.
    Sym(Sym),
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    By,
    Having,
    As,
    And,
    Or,
    Not,
    Merge,
    Define,
    True,
    False,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "GROUP" => Keyword::Group,
            "BY" => Keyword::By,
            "HAVING" => Keyword::Having,
            "AS" => Keyword::As,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "MERGE" => Keyword::Merge,
            "DEFINE" => Keyword::Define,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            _ => return None,
        })
    }
}

/// Operator and punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Sym {
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Colon,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Amp,
    Pipe,
    Caret,
}

struct Cursor<'a> {
    src: &'a [u8],
    off: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn pos(&self) -> Pos {
        Pos { offset: self.off, line: self.line, col: self.col }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.off).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.off + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.off += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

/// Tokenize GSQL source text. The result always ends with [`TokenKind::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, GsqlError> {
    let mut cur = Cursor { src: src.as_bytes(), off: 0, line: 1, col: 1 };
    let mut out = Vec::new();
    loop {
        // Skip whitespace and comments (`--` to end of line, `//` likewise).
        loop {
            match cur.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    cur.bump();
                }
                Some(b'-') if cur.peek2() == Some(b'-') => skip_line(&mut cur),
                Some(b'/') if cur.peek2() == Some(b'/') => skip_line(&mut cur),
                _ => break,
            }
        }
        let pos = cur.pos();
        let Some(b) = cur.peek() else {
            out.push(Token { kind: TokenKind::Eof, pos });
            return Ok(out);
        };
        let kind = match b {
            b'(' => sym(&mut cur, Sym::LParen),
            b')' => sym(&mut cur, Sym::RParen),
            b'{' => sym(&mut cur, Sym::LBrace),
            b'}' => sym(&mut cur, Sym::RBrace),
            b',' => sym(&mut cur, Sym::Comma),
            b';' => sym(&mut cur, Sym::Semi),
            b':' => sym(&mut cur, Sym::Colon),
            b'.' => sym(&mut cur, Sym::Dot),
            b'*' => sym(&mut cur, Sym::Star),
            b'+' => sym(&mut cur, Sym::Plus),
            b'-' => sym(&mut cur, Sym::Minus),
            b'/' => sym(&mut cur, Sym::Slash),
            b'%' => sym(&mut cur, Sym::Percent),
            b'&' => sym(&mut cur, Sym::Amp),
            b'|' => sym(&mut cur, Sym::Pipe),
            b'^' => sym(&mut cur, Sym::Caret),
            b'=' => sym(&mut cur, Sym::Eq),
            b'<' => {
                cur.bump();
                match cur.peek() {
                    Some(b'=') => {
                        cur.bump();
                        TokenKind::Sym(Sym::Le)
                    }
                    Some(b'>') => {
                        cur.bump();
                        TokenKind::Sym(Sym::Ne)
                    }
                    _ => TokenKind::Sym(Sym::Lt),
                }
            }
            b'>' => {
                cur.bump();
                if cur.peek() == Some(b'=') {
                    cur.bump();
                    TokenKind::Sym(Sym::Ge)
                } else {
                    TokenKind::Sym(Sym::Gt)
                }
            }
            b'!' => {
                cur.bump();
                if cur.peek() == Some(b'=') {
                    cur.bump();
                    TokenKind::Sym(Sym::Ne)
                } else {
                    return Err(GsqlError::lex("unexpected `!` (did you mean `!=`?)", pos));
                }
            }
            b'\'' => lex_string(&mut cur, pos)?,
            b'$' => {
                cur.bump();
                let name = lex_ident_raw(&mut cur);
                if name.is_empty() {
                    return Err(GsqlError::lex("`$` must be followed by a parameter name", pos));
                }
                TokenKind::Param(name)
            }
            b'0'..=b'9' => lex_number(&mut cur, pos)?,
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let word = lex_ident_raw(&mut cur);
                match Keyword::from_str(&word) {
                    Some(kw) => TokenKind::Keyword(kw),
                    None => TokenKind::Ident(word),
                }
            }
            other => {
                return Err(GsqlError::lex(format!("unexpected byte `{}`", other as char), pos))
            }
        };
        out.push(Token { kind, pos });
    }
}

fn skip_line(cur: &mut Cursor<'_>) {
    while let Some(b) = cur.bump() {
        if b == b'\n' {
            break;
        }
    }
}

fn sym(cur: &mut Cursor<'_>, s: Sym) -> TokenKind {
    cur.bump();
    TokenKind::Sym(s)
}

fn lex_ident_raw(cur: &mut Cursor<'_>) -> String {
    let mut s = String::new();
    while let Some(b) = cur.peek() {
        if b.is_ascii_alphanumeric() || b == b'_' {
            s.push(b as char);
            cur.bump();
        } else {
            break;
        }
    }
    s
}

fn lex_string(cur: &mut Cursor<'_>, pos: Pos) -> Result<TokenKind, GsqlError> {
    cur.bump(); // opening quote
    let mut s = String::new();
    loop {
        match cur.bump() {
            None => return Err(GsqlError::lex("unterminated string literal", pos)),
            Some(b'\'') => {
                // `''` escapes a quote.
                if cur.peek() == Some(b'\'') {
                    cur.bump();
                    s.push('\'');
                } else {
                    return Ok(TokenKind::Str(s));
                }
            }
            Some(b) => s.push(b as char),
        }
    }
}

fn lex_number(cur: &mut Cursor<'_>, pos: Pos) -> Result<TokenKind, GsqlError> {
    // Hex?
    if cur.peek() == Some(b'0') && matches!(cur.peek2(), Some(b'x') | Some(b'X')) {
        cur.bump();
        cur.bump();
        let mut v: u64 = 0;
        let mut digits = 0;
        while let Some(b) = cur.peek() {
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => break,
            };
            v = v
                .checked_mul(16)
                .and_then(|v| v.checked_add(u64::from(d)))
                .ok_or_else(|| GsqlError::lex("hex literal overflows u64", pos))?;
            digits += 1;
            cur.bump();
        }
        if digits == 0 {
            return Err(GsqlError::lex("`0x` needs hex digits", pos));
        }
        return Ok(TokenKind::UInt(v));
    }

    let mut text = String::new();
    let mut dots = 0;
    while let Some(b) = cur.peek() {
        match b {
            b'0'..=b'9' => {
                text.push(b as char);
                cur.bump();
            }
            b'.' if cur.peek2().is_some_and(|n| n.is_ascii_digit()) => {
                dots += 1;
                text.push('.');
                cur.bump();
            }
            _ => break,
        }
    }
    match dots {
        0 => text
            .parse::<u64>()
            .map(TokenKind::UInt)
            .map_err(|_| GsqlError::lex("integer literal overflows u64", pos)),
        1 => text
            .parse::<f64>()
            .map(TokenKind::Float)
            .map_err(|_| GsqlError::lex("bad float literal", pos)),
        3 => gs_packet::ip::parse_ipv4(&text)
            .map(TokenKind::Ip)
            .ok_or_else(|| GsqlError::lex(format!("bad IPv4 literal `{text}`"), pos)),
        _ => Err(GsqlError::lex(format!("malformed numeric literal `{text}`"), pos)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("select FROM Where"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Keyword(Keyword::From),
                TokenKind::Keyword(Keyword::Where),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn idents_preserve_case() {
        assert_eq!(kinds("destPort"), vec![TokenKind::Ident("destPort".into()), TokenKind::Eof]);
    }

    #[test]
    fn numbers_hex_float_ip() {
        assert_eq!(kinds("42"), vec![TokenKind::UInt(42), TokenKind::Eof]);
        assert_eq!(kinds("0xFF"), vec![TokenKind::UInt(255), TokenKind::Eof]);
        assert_eq!(kinds("1.5"), vec![TokenKind::Float(1.5), TokenKind::Eof]);
        assert_eq!(kinds("10.0.0.1"), vec![TokenKind::Ip(0x0a000001), TokenKind::Eof]);
    }

    #[test]
    fn dotted_column_is_not_ip() {
        // `B.ts` lexes as ident dot ident.
        assert_eq!(
            kinds("B.ts"),
            vec![
                TokenKind::Ident("B".into()),
                TokenKind::Sym(Sym::Dot),
                TokenKind::Ident("ts".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'abc'"), vec![TokenKind::Str("abc".into()), TokenKind::Eof]);
        assert_eq!(kinds("'a''b'"), vec![TokenKind::Str("a'b".into()), TokenKind::Eof]);
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn params() {
        assert_eq!(kinds("$port"), vec![TokenKind::Param("port".into()), TokenKind::Eof]);
        assert!(lex("$ ").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("<= >= <> != < > ="),
            vec![
                TokenKind::Sym(Sym::Le),
                TokenKind::Sym(Sym::Ge),
                TokenKind::Sym(Sym::Ne),
                TokenKind::Sym(Sym::Ne),
                TokenKind::Sym(Sym::Lt),
                TokenKind::Sym(Sym::Gt),
                TokenKind::Sym(Sym::Eq),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("select -- comment\nfrom // another\nwhere"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Keyword(Keyword::From),
                TokenKind::Keyword(Keyword::Where),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("select\n  foo").unwrap();
        assert_eq!(toks[0].pos.line, 1);
        assert_eq!(toks[1].pos.line, 2);
        assert_eq!(toks[1].pos.col, 3);
    }

    #[test]
    fn bad_bytes_error() {
        assert!(lex("select @").is_err());
        assert!(lex("! a").is_err());
    }

    #[test]
    fn time_div_bucket_idiom() {
        assert_eq!(
            kinds("time/60"),
            vec![
                TokenKind::Ident("time".into()),
                TokenKind::Sym(Sym::Slash),
                TokenKind::UInt(60),
                TokenKind::Eof
            ]
        );
    }
}
