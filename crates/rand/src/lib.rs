//! A hermetic, std-only stand-in for the `rand` crate.
//!
//! The workspace builds offline; every dependency is an in-repo path
//! crate (see the "Hermetic build" section of README.md). This crate
//! provides the `rand` 0.8 subset gigascope uses — `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, and the [`Rng`] methods `gen`,
//! `gen_range`, `gen_bool`, and `fill` — over a xoshiro256++ generator
//! seeded through SplitMix64, the same algorithm pair upstream `SmallRng`
//! uses on 64-bit targets. Workload generators seed explicitly
//! (`seed_from_u64`), so every packet mix, trace, and experiment is
//! reproducible run-to-run; there is deliberately no `thread_rng()` or
//! OS-entropy constructor here. Golden-value tests in
//! `tests/tests/hermetic.rs` pin the exact output streams.

use std::ops::{Range, RangeInclusive};

/// The core generator interface: a source of uniform raw bits.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform bits (low half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    /// Fill `dest` with uniform bytes (little-endian 8-byte blocks).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&last[..rest.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it through SplitMix64 —
    /// the same derivation upstream `rand` uses, so seeds keep their
    /// meaning across the shim boundary.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: expands a 64-bit seed into a stream of well-mixed words.
/// Used only for seeding (never as the workload generator itself).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their whole domain (`rng.gen()`);
/// the shim's equivalent of sampling `rand`'s `Standard` distribution.
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // Top bit, like upstream.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types `gen_range` can sample uniformly between two bounds. The single
/// generic [`SampleRange`] impl below dispatches through this trait, so
/// integer-literal ranges unify with the surrounding expression's type
/// exactly as they do with upstream `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`). Panics when the range is empty.
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

/// Uniform draw from `[0, n)` without modulo bias: rejection-sample the
/// zone that divides evenly into `n`.
#[inline]
fn next_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range called with empty range"
                );
                // Width in the unsigned 64-bit domain (two's-complement
                // subtraction is order-preserving for signed types too).
                let width = (hi as u64).wrapping_sub(lo as u64);
                if inclusive {
                    if width == u64::MAX {
                        // Full 64-bit domain: every raw draw is in range.
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(next_below(rng, width + 1) as $t)
                } else {
                    lo.wrapping_add(next_below(rng, width) as $t)
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64, inclusive: bool) -> f64 {
        assert!(
            if inclusive { lo <= hi } else { lo < hi },
            "gen_range called with empty range"
        );
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32, inclusive: bool) -> f32 {
        assert!(
            if inclusive { lo <= hi } else { lo < hi },
            "gen_range called with empty range"
        );
        lo + f32::sample(rng) * (hi - lo)
    }
}

/// Ranges a value can be drawn from (`rng.gen_range(..)`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// Slice types [`Rng::fill`] can populate in place.
pub trait Fill {
    /// Overwrite `self` with uniform random content.
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    #[inline]
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] — the `rand::Rng` subset the workspace calls.
pub trait Rng: RngCore {
    /// A uniform value over `T`'s whole domain.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fill `dest` with random content.
    #[inline]
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.try_fill(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators (upstream layout: `rand::rngs::SmallRng`).

    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind upstream `SmallRng` on 64-bit
    /// targets. Not cryptographic; fast, small, and good enough for
    /// workload synthesis and property-test case generation.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // The all-zero state is a fixed point of xoshiro; redirect it
            // through SplitMix64 like upstream.
            if s == [0; 4] {
                return SmallRng::seed_from_u64(0);
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> SmallRng {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u16..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(1e-12..1.0f64);
            assert!((1e-12..1.0).contains(&f));
            let neg = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits} hits for p=0.25");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_full_seed_is_redirected() {
        let mut z = SmallRng::from_seed([0; 32]);
        assert_ne!(z.next_u64(), 0);
    }
}
