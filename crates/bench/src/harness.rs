//! A tiny `std::time::Instant` micro-benchmark harness.
//!
//! Replaces the external `criterion` dev-dependency (hermetic build: no
//! registry crates). It keeps criterion's call shape — groups,
//! `bench_function`, `Throughput`, `iter`/`iter_batched` — so
//! `benches/micro.rs` reads the same, and prints one line per benchmark
//! under the same `group/function` metric names:
//!
//! ```text
//! bpf/tcp_port80_filter            12_345 ns/iter      83.17 Melem/s
//! ```
//!
//! Timing model: warm up for ~50 ms, then take several timed batches and
//! report the *fastest* batch (minimum is the standard low-noise
//! estimator for micro-benchmarks; variance here is one-sided).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work items per harness iteration, used to derive a rate column.
#[derive(Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Batch-size hint, accepted for criterion compatibility (the harness
/// re-runs setup per iteration either way).
#[derive(Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
}

const WARMUP: Duration = Duration::from_millis(50);
const SAMPLE: Duration = Duration::from_millis(120);
const SAMPLES: usize = 5;

/// The harness root; criterion's `Criterion` stand-in (aliased so bench
/// files keep the upstream spelling).
#[derive(Default)]
pub struct Harness {}

/// Upstream-compatible name for [`Harness`].
pub type Criterion = Harness;

impl Harness {
    pub fn new() -> Harness {
        Harness {}
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> Group {
        Group { name: name.to_string(), throughput: None }
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct Group {
    name: String,
    throughput: Option<Throughput>,
}

impl Group {
    /// Declare the per-iteration work, enabling the rate column.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Measure one benchmark and print its line.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher { ns_per_iter: f64::INFINITY };
        f(&mut b);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("{:>10.2} Melem/s", n as f64 * 1e3 / b.ns_per_iter)
            }
            Some(Throughput::Bytes(n)) => {
                format!("{:>10.2} MB/s", n as f64 * 1e3 / b.ns_per_iter)
            }
            None => String::new(),
        };
        println!("{:<34} {:>12.0} ns/iter  {}", format!("{}/{}", self.name, id), b.ns_per_iter, rate);
        self
    }

    /// End the group (newline separator, like criterion's summary break).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Time `f` called in a loop.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        self.ns_per_iter = measure(|batch| {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            start.elapsed()
        });
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        self.ns_per_iter = measure(|batch| {
            let inputs: Vec<S> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for s in inputs {
                black_box(routine(s));
            }
            start.elapsed()
        });
    }
}

/// Calibrate a batch size against the target sample duration, then take
/// [`SAMPLES`] timed batches and return the fastest ns/iteration.
fn measure(mut run_batch: impl FnMut(u64) -> Duration) -> f64 {
    // Calibration doubles the batch until one batch covers the warmup
    // budget, so each timed sample amortizes clock overhead.
    let mut batch = 1u64;
    loop {
        let t = run_batch(batch);
        if t >= WARMUP || batch >= 1 << 40 {
            let scale = SAMPLE.as_secs_f64() / t.as_secs_f64().max(1e-9);
            batch = ((batch as f64 * scale).max(1.0)) as u64;
            break;
        }
        batch *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t = run_batch(batch);
        best = best.min(t.as_nanos() as f64 / batch as f64);
    }
    best
}
