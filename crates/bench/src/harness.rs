//! A tiny `std::time::Instant` micro-benchmark harness.
//!
//! Replaces the external `criterion` dev-dependency (hermetic build: no
//! registry crates). It keeps criterion's call shape — groups,
//! `bench_function`, `Throughput`, `iter`/`iter_batched` — so
//! `benches/micro.rs` reads the same, and prints one line per benchmark
//! under the same `group/function` metric names:
//!
//! ```text
//! bpf/tcp_port80_filter            12_345 ns/iter      83.17 Melem/s
//! ```
//!
//! Timing model: warm up for ~50 ms, then take several timed batches and
//! report the *fastest* batch (minimum is the standard low-noise
//! estimator for micro-benchmarks; variance here is one-sided).
//!
//! Besides the console lines, every result is recorded and written to
//! `target/bench.json` when the [`Harness`] drops (format documented in
//! DESIGN.md §8), so runs can be diffed mechanically.
//!
//! Setting `GS_BENCH_QUICK=1` switches to smoke mode — no warmup
//! calibration, a single short sample — for CI, where the point is that
//! the benches still *run*, not the numbers they produce.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work items per harness iteration, used to derive a rate column.
#[derive(Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Batch-size hint, accepted for criterion compatibility (the harness
/// re-runs setup per iteration either way).
#[derive(Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
}

const WARMUP: Duration = Duration::from_millis(50);
const SAMPLE: Duration = Duration::from_millis(120);
const SAMPLES: usize = 5;

fn quick_mode() -> bool {
    std::env::var("GS_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// One completed measurement, kept for the JSON report.
struct Record {
    /// `group/function` metric name.
    id: String,
    ns_per_iter: f64,
    /// Rate in elements (or bytes) per second, when declared.
    throughput: Option<f64>,
}

/// The harness root; criterion's `Criterion` stand-in (aliased so bench
/// files keep the upstream spelling). Dropping it writes
/// `target/bench.json`.
#[derive(Default)]
pub struct Harness {
    records: Vec<Record>,
}

/// Upstream-compatible name for [`Harness`].
pub type Criterion = Harness;

impl Harness {
    pub fn new() -> Harness {
        Harness::default()
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group { name: name.to_string(), throughput: None, records: &mut self.records }
    }

    /// Serialize the recorded results (hand-rolled JSON: no serde in the
    /// hermetic workspace). Keys are `group/function` metric names.
    fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        for (i, r) in self.records.iter().enumerate() {
            s.push_str(&format!(
                "  \"{}\": {{\"ns_per_iter\": {:.1}",
                r.id.replace('"', "\\\""),
                r.ns_per_iter
            ));
            if let Some(t) = r.throughput {
                s.push_str(&format!(", \"throughput\": {t:.1}"));
            }
            s.push('}');
            if i + 1 < self.records.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push('}');
        s.push('\n');
        s
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        if self.records.is_empty() {
            return;
        }
        // `cargo bench` runs the executable with the *package* dir as cwd,
        // so the workspace `target/` sits one or two levels up; honor
        // CARGO_TARGET_DIR when set. Failure to write is not worth
        // failing a bench run over.
        let dir = std::env::var("CARGO_TARGET_DIR")
            .map(std::path::PathBuf::from)
            .ok()
            .or_else(|| {
                ["target", "../target", "../../target"]
                    .iter()
                    .map(std::path::PathBuf::from)
                    .find(|p| p.is_dir())
            })
            .unwrap_or_else(|| std::path::PathBuf::from("target"));
        let path = dir.join("bench.json");
        if std::fs::write(&path, self.to_json()).is_ok() {
            println!("results written to {}", path.display());
        }
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct Group<'a> {
    name: String,
    throughput: Option<Throughput>,
    records: &'a mut Vec<Record>,
}

impl Group<'_> {
    /// Declare the per-iteration work, enabling the rate column.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Measure one benchmark and print its line.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher { ns_per_iter: f64::INFINITY };
        f(&mut b);
        let (rate, per_sec) = match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 * 1e9 / b.ns_per_iter;
                (format!("{:>10.2} Melem/s", per_sec / 1e6), Some(per_sec))
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 * 1e9 / b.ns_per_iter;
                (format!("{:>10.2} MB/s", per_sec / 1e6), Some(per_sec))
            }
            None => (String::new(), None),
        };
        println!("{:<34} {:>12.0} ns/iter  {}", format!("{}/{}", self.name, id), b.ns_per_iter, rate);
        self.records.push(Record {
            id: format!("{}/{}", self.name, id),
            ns_per_iter: b.ns_per_iter,
            throughput: per_sec,
        });
        self
    }

    /// End the group (newline separator, like criterion's summary break).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Time `f` called in a loop.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        self.ns_per_iter = measure(|batch| {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            start.elapsed()
        });
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        self.ns_per_iter = measure(|batch| {
            let inputs: Vec<S> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for s in inputs {
                black_box(routine(s));
            }
            start.elapsed()
        });
    }
}

/// Calibrate a batch size against the target sample duration, then take
/// [`SAMPLES`] timed batches and return the fastest ns/iteration.
///
/// Quick mode (`GS_BENCH_QUICK=1`) skips calibration and takes one
/// single-iteration sample — a smoke test, not a measurement.
fn measure(mut run_batch: impl FnMut(u64) -> Duration) -> f64 {
    if quick_mode() {
        let t = run_batch(1);
        return t.as_nanos() as f64;
    }
    // Calibration doubles the batch until one batch covers the warmup
    // budget, so each timed sample amortizes clock overhead.
    let mut batch = 1u64;
    loop {
        let t = run_batch(batch);
        if t >= WARMUP || batch >= 1 << 40 {
            let scale = SAMPLE.as_secs_f64() / t.as_secs_f64().max(1e-9);
            batch = ((batch as f64 * scale).max(1.0)) as u64;
            break;
        }
        batch *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t = run_batch(batch);
        best = best.min(t.as_nanos() as f64 / batch as f64);
    }
    best
}
