//! CI gate: self-monitoring must stay (nearly) free.
//!
//! Runs the `manager/threaded_*` workload (the same raw→persec program
//! `benches/micro.rs` uses) with `Gigascope::stats_enabled` on and off,
//! strictly interleaved so machine drift hits both sides equally, and
//! compares the *fastest* run of each (the minimum is the standard
//! low-noise estimator; variance is one-sided). Exits non-zero if the
//! stats path costs more than 5% on any scenario.
//!
//! `GS_BENCH_QUICK=1` shrinks the trace and round count for CI; the gate
//! itself still applies — min-of-N interleaved runs are stable enough to
//! hold a 5% line even on a shared machine.

use gigascope::manager::run_threaded;
use gigascope::Gigascope;
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use std::time::Instant;

const THRESHOLD: f64 = 0.05;

fn trace(n: usize) -> Vec<CapPacket> {
    (0..n)
        .map(|i| {
            let f = FrameBuilder::tcp(0x0a00_0001 + (i % 7) as u32, 0xc0a8_0001, 1024, 80)
                .payload(b"x")
                .build_ethernet();
            // 2000 packets per second of stream time, as in benches/micro.rs.
            CapPacket::full(i as u64 * 500_000, 0, LinkType::Ethernet, f)
        })
        .collect()
}

fn system(batch: usize, stats: bool) -> Gigascope {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.batch_size = batch;
    gs.stats_enabled = stats;
    gs.add_program(
        "DEFINE { query_name raw; } Select time, len From eth0.tcp; \
         DEFINE { query_name persec; } \
         Select time, count(*), sum(len) From raw Group By time",
    )
    .unwrap();
    gs
}

fn run_once(gs: &Gigascope, pkts: &[CapPacket]) -> f64 {
    let start = Instant::now();
    let out = run_threaded(gs, pkts.iter().cloned(), &["raw", "persec"]).unwrap();
    std::hint::black_box(out);
    start.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::var("GS_BENCH_QUICK").is_ok_and(|v| v == "1");
    // Quick mode shrinks the trace but keeps a high round count: the
    // minimum estimator needs more samples on a short run for both
    // sides to reach their floor, or scheduler noise (~5% on a busy
    // single-core host) masquerades as stats overhead.
    let (n, rounds) = if quick { (4_000, 15) } else { (20_000, 9) };
    let pkts = trace(n);
    let mut failed = false;
    for (name, batch) in [("threaded_throughput", 256), ("threaded_batch_64", 64)] {
        let on = system(batch, true);
        let off = system(batch, false);
        // Warm both paths (thread spawn, allocator, page cache) before
        // any timed round.
        run_once(&on, &pkts);
        run_once(&off, &pkts);
        let (mut best_on, mut best_off) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..rounds {
            best_on = best_on.min(run_once(&on, &pkts));
            best_off = best_off.min(run_once(&off, &pkts));
        }
        let overhead = best_on / best_off - 1.0;
        println!(
            "manager/{name}: stats-on {:.3} ms, stats-off {:.3} ms, overhead {:+.2}%",
            best_on * 1e3,
            best_off * 1e3,
            overhead * 100.0
        );
        if overhead > THRESHOLD {
            eprintln!(
                "FAIL: manager/{name} stats overhead {:.2}% exceeds {:.0}%",
                overhead * 100.0,
                THRESHOLD * 100.0
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK: stats overhead within {:.0}%", THRESHOLD * 100.0);
}
