//! E1 — the paper's §4 performance experiment.
//!
//! "To test several performance alternatives we wrote a collection of
//! queries to compute the fraction of port 80 traffic which is due to the
//! HTTP protocol... We generated 60 Mbit/sec of port 80 traffic, and
//! additional background traffic to vary the data rates. We tried four
//! approaches: 1) dumping the data to disk for post-facto analysis,
//! 2) reading data from the ethernet card using libpcap, then discarding
//! the packet (best case processing), 3) Running Gigascope with the LFTAs
//! executing in the host, and 4) running Gigascope with the LFTAs
//! executing on the Tigon gigabit ethernet card. We chose a 2% packet
//! drop rate as the maximum acceptable loss."
//!
//! Paper result: option 4 sustains >610 Mbit/s (the router's limit);
//! options 2 and 3 manage ~480 Mbit/s before interrupt livelock; option 1
//! exceeds 2% loss at only ~180 Mbit/s.
//!
//! Run with: `cargo run --release -p gs-bench --bin repro_e1`

use gs_bench::{crossing, e1_mix, row, GigascopeHost, NicLfta};
use gs_nic::disk::DiskDumpHost;
use gs_nic::sim::{CaptureSim, DiscardHost, HostAction, NicAction};
use gs_nic::CostModel;

const LOSS_THRESHOLD: f64 = 0.02;
const DURATION_MS: u64 = 2_000;
const SEED: u64 = 20030609; // SIGMOD 2003's opening day

fn run_config(
    rate_mbps: f64,
    nic: Option<&mut dyn NicAction>,
    host: &mut dyn HostAction,
) -> f64 {
    let sim = CaptureSim::default();
    let mix = e1_mix(rate_mbps, DURATION_MS, SEED ^ rate_mbps as u64);
    sim.run(mix, nic, host).loss_rate()
}

fn main() {
    let costs = CostModel::default();
    let rates: Vec<f64> = (0..).map(|i| 100.0 + 20.0 * i as f64).take_while(|&r| r <= 700.0).collect();

    println!("E1: packet loss vs offered rate (60 Mbit/s port-80 + background)");
    println!("2% loss threshold; {} ms of virtual time per point\n", DURATION_MS);
    let widths = [8, 12, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "Mbit/s".into(),
                "disk".into(),
                "pcap".into(),
                "host-LFTA".into(),
                "NIC-LFTA".into()
            ],
            &widths
        )
    );

    let mut curves: [Vec<(f64, f64)>; 4] = Default::default();
    for &rate in &rates {
        let mut disk = DiskDumpHost::new(&costs);
        let l_disk = run_config(rate, None, &mut disk);

        let mut pcap = DiscardHost::default();
        let l_pcap = run_config(rate, None, &mut pcap);

        let mut host_lfta = GigascopeHost::new(&costs, true);
        let l_host = run_config(rate, None, &mut host_lfta);

        let mut nic = NicLfta::new();
        let mut hfta_host = GigascopeHost::new(&costs, false);
        let l_nic = run_config(rate, Some(&mut nic), &mut hfta_host);

        curves[0].push((rate, l_disk));
        curves[1].push((rate, l_pcap));
        curves[2].push((rate, l_host));
        curves[3].push((rate, l_nic));
        println!(
            "{}",
            row(
                &[
                    format!("{rate:.0}"),
                    format!("{:.4}", l_disk),
                    format!("{:.4}", l_pcap),
                    format!("{:.4}", l_host),
                    format!("{:.4}", l_nic),
                ],
                &widths
            )
        );
    }

    println!("\n2% loss crossings (Mbit/s):");
    let names = ["1) dump to disk", "2) libpcap discard", "3) Gigascope host LFTA", "4) Gigascope NIC LFTA"];
    let paper = ["~180", "~480", "~480", ">610 (router limit)"];
    let mut crossings = [0.0f64; 4];
    for (i, name) in names.iter().enumerate() {
        let c = crossing(&curves[i], LOSS_THRESHOLD);
        crossings[i] = c.unwrap_or(f64::INFINITY);
        match c {
            Some(c) => println!("  {name:<26} {c:>7.0}   (paper: {})", paper[i]),
            None => println!("  {name:<26}    >700   (paper: {})", paper[i]),
        }
    }

    // Shape checks: who wins, by roughly what factor.
    let ratio = |a: f64, b: f64| if b.is_finite() { a / b } else { f64::INFINITY };
    println!("\nshape checks:");
    let pcap_vs_disk = ratio(crossings[1], crossings[0]);
    println!(
        "  pcap/disk capacity ratio:      {:.2}x   (paper: 480/180 = 2.67x)",
        pcap_vs_disk
    );
    let host_vs_pcap = ratio(crossings[2], crossings[1]);
    println!(
        "  host-LFTA/pcap capacity ratio: {:.2}x   (paper: ~1.0x, \"similar performance\")",
        host_vs_pcap
    );
    let nic_unbroken = crossings[3].is_infinite();
    println!(
        "  NIC-LFTA within sweep limit:   {}   (paper: <2% loss even at 610 Mbit/s)",
        if nic_unbroken { "no crossing up to 700" } else { "CROSSED (unexpected)" }
    );
    assert!(crossings[0] < crossings[1], "disk must saturate first");
    assert!((0.8..1.25).contains(&host_vs_pcap), "host LFTA must ride with pcap");
    assert!(pcap_vs_disk > 1.8, "early data reduction must beat the disk by a wide margin");
    assert!(nic_unbroken, "NIC offload must outlast the sweep");
    println!("\nall shape assertions hold.");
}
