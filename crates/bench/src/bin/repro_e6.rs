//! E6 — the Babcock-et-al. Q3 query runs exactly, with no sampling (§2,
//! §4).
//!
//! The paper quotes query Q3 — the fraction of backbone traffic
//! attributable to a customer network:
//!
//! ```text
//! (Select Count(*) From C, B
//!   Where C.src=B.src and C.dest=B.dest and C.id=B.id) /
//! (Select Count(*) from B)
//! ```
//!
//! and §4 argues that, contrary to [1]'s suggestion that such queries
//! need sampling and approximation, "an efficient stream database can
//! execute complex queries over very high speed data streams". In GSQL
//! the query is expressed with precise semantics: a window join on the
//! ordered `time` attribute plus per-minute aggregates, composed by
//! name. The harness checks the computed fraction against ground truth
//! (the customer stream is constructed as every k-th backbone packet)
//! and measures real single-thread throughput.
//!
//! Run with: `cargo run --release -p gs-bench --bin repro_e6`

use gigascope::Gigascope;
use gs_netgen::{MixConfig, PacketMix};
use gs_packet::capture::LinkType;
use gs_packet::CapPacket;
use std::collections::BTreeMap;
use std::time::Instant;

/// Customer traffic = every `k`-th backbone packet, mirrored on iface 1.
fn workload(k: usize, duration_ms: u64) -> Vec<CapPacket> {
    let backbone = PacketMix::new(MixConfig {
        seed: 23,
        iface: 0,
        duration_ms,
        http_rate_mbps: 60.0,
        background_rate_mbps: 60.0,
        ..MixConfig::default()
    });
    let mut out = Vec::new();
    for (i, p) in backbone.enumerate() {
        if i % k == 0 {
            let mut c = p.clone();
            c.iface = 1;
            out.push(c);
        }
        out.push(p);
    }
    out
}

fn main() {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.add_interface("eth1", 1, LinkType::Ethernet);
    gs.add_program(
        "DEFINE { query_name bb; } \
         Select time, srcIP, destIP, id From eth0.ip; \
         DEFINE { query_name cust; } \
         Select time, srcIP, destIP, id From eth1.ip; \
         DEFINE { query_name matched; } \
         Select B.time FROM bb B, cust C \
         WHERE B.time = C.time and B.srcIP = C.srcIP and B.destIP = C.destIP and B.id = C.id; \
         DEFINE { query_name matched_cnt; } \
         Select tb, count(*) From matched Group By time/60 as tb; \
         DEFINE { query_name bb_cnt; } \
         Select tb, count(*) From bb Group By time/60 as tb",
    )
    .expect("query set compiles");

    let k = 10;
    let pkts = workload(k, 3_000);
    let n = pkts.len();
    println!("E6: Babcock Q3 as a composed GSQL plan (window join + aggregates)");
    println!("workload: {n} packets; customer = every {k}th backbone packet\n");

    let start = Instant::now();
    let out = gs
        .run_capture(pkts.into_iter(), &["matched_cnt", "bb_cnt"])
        .expect("run");
    let wall = start.elapsed();

    let table = |name: &str| -> BTreeMap<u64, u64> {
        out.stream(name)
            .iter()
            .map(|t| (t.get(0).as_uint().unwrap(), t.get(1).as_uint().unwrap()))
            .collect()
    };
    let matched = table("matched_cnt");
    let backbone = table("bb_cnt");
    println!("minute   backbone   matched   fraction");
    let mut total_b = 0u64;
    let mut total_m = 0u64;
    for (tb, b) in &backbone {
        let m = matched.get(tb).copied().unwrap_or(0);
        total_b += b;
        total_m += m;
        println!("{tb:>6}  {b:>9}  {m:>8}   {:.4}", m as f64 / *b as f64);
    }
    let fraction = total_m as f64 / total_b as f64;
    println!(
        "\noverall fraction {fraction:.4} vs ground truth {:.4} (1/{k})",
        1.0 / k as f64
    );
    println!(
        "throughput: {:.2} M packets/s single-threaded, join windows and all — no sampling",
        out.stats.packets as f64 / wall.as_secs_f64() / 1e6
    );
    println!(
        "peak join buffer: {} tuples (ordered attributes bound the state)",
        out.stats.peak_buffered.get("matched").copied().unwrap_or(0)
    );

    // Each mirrored packet matches its original; flow reuse can only add
    // same-(src,dest,id,second) coincidences, so fraction >= 1/k.
    assert!(
        (fraction - 1.0 / k as f64).abs() < 0.01,
        "measured fraction {fraction} must track the constructed 1/{k}"
    );
    println!("\nexact answer produced at line rate — sampling was not required.");
}
