//! E3 — ablation: the LFTA's direct-mapped pre-aggregation table (§3).
//!
//! "An LFTA can perform aggregation, but it uses a small direct-mapped
//! hash table. Hash table collisions result in a tuple computed from the
//! ejected group being written to the output stream. Because of temporal
//! locality, aggregation even with a small hash table is effective in
//! early data reduction."
//!
//! The harness aggregates per-flow counters over Zipf-skewed traffic and
//! sweeps the table size, reporting the eviction rate and the data
//! reduction factor (input packets per LFTA output tuple). The paper's
//! claim is that even tiny tables achieve large reduction under realistic
//! skew; the sweep also runs a uniform (skew-free) workload to show the
//! locality is what makes it work.
//!
//! Run with: `cargo run --release -p gs-bench --bin repro_e3`

use gigascope::Gigascope;
use gs_bench::row;
use gs_netgen::{MixConfig, PacketMix};
use gs_packet::capture::LinkType;

fn run(table_slots: usize, skew: f64) -> (u64, u64, u64) {
    let mut gs = Gigascope::new();
    gs.lfta_table_size = table_slots;
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.add_program(
        "DEFINE { query_name flows; } \
         Select tb, srcIP, destIP, srcPort, count(*), sum(len) From eth0.tcp \
         Group By time/60 as tb, srcIP, destIP, srcPort",
    )
    .expect("query compiles");
    let mix = PacketMix::new(MixConfig {
        seed: 17,
        duration_ms: 4_000,
        http_rate_mbps: 300.0,
        background_rate_mbps: 0.0,
        flows: 20_000,
        flow_skew: skew,
        ..MixConfig::default()
    });
    let out = gs.run_capture(mix, &["flows"]).expect("run");
    let dm = out.stats.lfta_tables.get("flows__lfta0").expect("aggregation LFTA");
    (dm.inputs, dm.outputs, dm.evictions)
}

fn main() {
    println!("E3: LFTA direct-mapped table sweep (per-flow aggregation, 20k flows)");
    let widths = [8, 10, 10, 11, 11, 11];
    println!(
        "{}",
        row(
            &[
                "slots".into(),
                "inputs".into(),
                "outputs".into(),
                "evictions".into(),
                "evict/pkt".into(),
                "reduction".into()
            ],
            &widths
        )
    );
    let mut reductions = Vec::new();
    for shift in [8u32, 10, 12, 14, 16] {
        let slots = 1usize << shift;
        let (inputs, outputs, evictions) = run(slots, 1.0);
        let reduction = inputs as f64 / outputs as f64;
        reductions.push(reduction);
        println!(
            "{}",
            row(
                &[
                    format!("{slots}"),
                    format!("{inputs}"),
                    format!("{outputs}"),
                    format!("{evictions}"),
                    format!("{:.3}", evictions as f64 / inputs as f64),
                    format!("{reduction:.1}x"),
                ],
                &widths
            )
        );
    }

    // Locality ablation: identical table, uniform flow popularity.
    let slots = 1usize << 10;
    let (inputs, outputs, _) = run(slots, 1.0);
    let skewed = inputs as f64 / outputs as f64;
    let (inputs_u, outputs_u, _) = run(slots, 0.0);
    let uniform = inputs_u as f64 / outputs_u as f64;
    println!("\nlocality ablation at {slots} slots:");
    println!("  Zipf(1.0) traffic: {skewed:.1}x reduction");
    println!("  uniform traffic:   {uniform:.1}x reduction");

    assert!(
        reductions[0] > 1.4,
        "even a 256-slot table must reduce early data measurably (paper's claim)"
    );
    assert!(
        *reductions.last().expect("sweep is non-empty") > 8.0,
        "a full-size table must approach the per-group ideal"
    );
    assert!(
        reductions.windows(2).all(|w| w[1] >= w[0] * 0.95),
        "bigger tables must not reduce less"
    );
    assert!(skewed > uniform, "temporal locality is what makes small tables effective");
    println!("\nall shape assertions hold.");
}
