//! E4 — ablation: "Early data reduction is critical for performance, and
//! the earlier the better" (§4, first bullet of the findings).
//!
//! The §4 query's port-80 filter is evaluated at four different depths of
//! the capture stack, and the maximum offered rate below 2% loss is
//! measured for each:
//!
//! 1. **NIC** — the filter runs in firmware; non-qualifying packets never
//!    touch the host (the paper's option 4).
//! 2. **LFTA (host)** — every packet is interrupted+copied, then the
//!    cheap filter drops it before expensive work (option 3).
//! 3. **HFTA (host)** — no early filter: the expensive regex runs on
//!    every packet's payload.
//! 4. **post-facto** — no reduction at all: dump everything to disk
//!    (option 1).
//!
//! Expected shape: capacity strictly increases as the reduction point
//! moves earlier in the stack.
//!
//! Run with: `cargo run --release -p gs-bench --bin repro_e4`

use gs_bench::{crossing, e1_mix, row, GigascopeHost, NicLfta, REGEX_BASE_NS, REGEX_PER_BYTE_NS};
use gs_nic::disk::DiskDumpHost;
use gs_nic::sim::{CaptureSim, HostAction};
use gs_nic::CostModel;
use gs_packet::{CapPacket, PacketView};
use gs_runtime::udf::regex::Regex;

/// No early filter: the regex runs on every packet that has a payload.
struct RegexEverything {
    regex: Regex,
    matched: u64,
}

impl HostAction for RegexEverything {
    fn handle(&mut self, pkt: &CapPacket) -> u64 {
        let view = PacketView::parse(pkt.clone());
        let Some(payload) = view.payload() else { return REGEX_BASE_NS };
        if self.regex.is_match(&payload) {
            self.matched += 1;
        }
        REGEX_BASE_NS + (REGEX_PER_BYTE_NS * payload.len() as f64) as u64
    }
}

fn main() {
    let costs = CostModel::default();
    let sim = CaptureSim::default();
    let rates: Vec<f64> =
        (0..).map(|i| 60.0 + 20.0 * i as f64).take_while(|&r| r <= 700.0).collect();
    let mut curves: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 4];

    println!("E4: filter placement vs sustainable rate (2% loss threshold)\n");
    let widths = [8, 10, 12, 12, 12];
    println!(
        "{}",
        row(
            &["Mbit/s".into(), "NIC".into(), "LFTA".into(), "HFTA-only".into(), "disk".into()],
            &widths
        )
    );
    for &rate in &rates {
        let mut nic = NicLfta::new();
        let mut h_nic = GigascopeHost::new(&costs, false);
        let l0 = sim.run(e1_mix(rate, 2_000, 77), Some(&mut nic), &mut h_nic).loss_rate();

        let mut h_lfta = GigascopeHost::new(&costs, true);
        let l1 = sim.run(e1_mix(rate, 2_000, 77), None, &mut h_lfta).loss_rate();

        let mut h_hfta =
            RegexEverything { regex: Regex::compile(gs_bench::HTTP_REGEX).unwrap(), matched: 0 };
        let l2 = sim.run(e1_mix(rate, 2_000, 77), None, &mut h_hfta).loss_rate();

        let mut disk = DiskDumpHost::new(&costs);
        let l3 = sim.run(e1_mix(rate, 2_000, 77), None, &mut disk).loss_rate();

        for (c, l) in curves.iter_mut().zip([l0, l1, l2, l3]) {
            c.push((rate, l));
        }
        println!(
            "{}",
            row(
                &[
                    format!("{rate:.0}"),
                    format!("{l0:.4}"),
                    format!("{l1:.4}"),
                    format!("{l2:.4}"),
                    format!("{l3:.4}"),
                ],
                &widths
            )
        );
    }

    let names = ["filter on NIC", "filter in LFTA", "regex-only HFTA", "dump to disk"];
    println!("\n2% crossings (earlier reduction -> higher capacity):");
    let mut caps = Vec::new();
    for (n, c) in names.iter().zip(&curves) {
        let x = crossing(c, 0.02);
        caps.push(x.unwrap_or(f64::INFINITY));
        match x {
            Some(x) => println!("  {n:<18} {x:>7.0} Mbit/s"),
            None => println!("  {n:<18}    >700 Mbit/s"),
        }
    }
    assert!(
        caps[0] > caps[1] && caps[1] > caps[2] && caps[2] > caps[3],
        "capacity must increase strictly with earlier reduction: {caps:?}"
    );
    println!("\nthe earlier the reduction, the higher the sustainable rate — as the paper claims.");
}
