//! CI gate: checkpoint/restore must stay cheap on the steady-state path.
//!
//! A carry-state daemon epoch differs from a plain run in exactly two
//! ways: it *restores* the previous cut at build time and *captures* a
//! new one at punctuation-aligned end-of-input. This gate runs the same
//! raw→persec workload as `stats_overhead` in both modes, strictly
//! interleaved so machine drift hits both sides equally, compares the
//! fastest run of each (minimum is the standard low-noise estimator),
//! and exits non-zero if the snapshot path costs more than 5%.
//!
//! Both timed sides process the *second half* of the trace; the carry
//! side first restores a real checkpoint captured over the first half
//! (the daemon's steady state — time continues past the cut), so the
//! decode path, table rebuild, and watermark seeding are all on the
//! clock, not just an empty-map fast path.
//!
//! `GS_BENCH_QUICK=1` shrinks the trace and round count for CI; the gate
//! itself still applies.

use gigascope::manager::{run_threaded, run_threaded_opts, ThreadedOptions};
use gigascope::Gigascope;
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

const THRESHOLD: f64 = 0.05;
const SUBS: [&str; 2] = ["raw", "persec"];

fn trace(n: usize) -> Vec<CapPacket> {
    (0..n)
        .map(|i| {
            let f = FrameBuilder::tcp(0x0a00_0001 + (i % 7) as u32, 0xc0a8_0001, 1024, 80)
                .payload(b"x")
                .build_ethernet();
            // 2000 packets per second of stream time, as in benches/micro.rs.
            CapPacket::full(i as u64 * 500_000, 0, LinkType::Ethernet, f)
        })
        .collect()
}

fn system(batch: usize) -> Gigascope {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.batch_size = batch;
    gs.add_program(
        "DEFINE { query_name raw; } Select time, len From eth0.tcp; \
         DEFINE { query_name persec; } \
         Select time, count(*), sum(len) From raw Group By time",
    )
    .unwrap();
    gs
}

fn run_plain(gs: &Gigascope, pkts: &[CapPacket]) -> f64 {
    let start = Instant::now();
    let out = run_threaded(gs, pkts.iter().cloned(), &SUBS).unwrap();
    std::hint::black_box(out);
    start.elapsed().as_secs_f64()
}

/// One carry-mode epoch: restore the prior cut, process, capture a new
/// cut — the daemon's steady state with `--carry-state`.
fn run_carry(gs: &Gigascope, pkts: &[CapPacket], snaps: &Arc<HashMap<String, Vec<u8>>>) -> f64 {
    let start = Instant::now();
    let opts = ThreadedOptions {
        capture: true,
        restore: Some(Arc::clone(snaps)),
        ..ThreadedOptions::default()
    };
    let out = run_threaded_opts(gs, pkts.iter().cloned(), &SUBS, opts).unwrap();
    assert!(out.health.notes().is_empty(), "checkpoint must restore clean");
    std::hint::black_box(out);
    start.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::var("GS_BENCH_QUICK").is_ok_and(|v| v == "1");
    // Quick mode shrinks the trace but keeps a high round count: the
    // minimum estimator needs more samples on a short run for both
    // sides to reach their floor (see stats_overhead).
    // Timed runs cover half the trace, so double the sizes from
    // stats_overhead to keep the measured work comparable.
    let (n, rounds) = if quick { (8_000, 15) } else { (40_000, 9) };
    let pkts = trace(n);
    let timed = &pkts[n / 2..];
    let mut failed = false;
    for (name, batch) in [("threaded_throughput", 256), ("threaded_batch_64", 64)] {
        let gs = system(batch);
        // A real checkpoint to restore every round: capture over the
        // first half leaves the last 1-second window open in the cut.
        let warm = ThreadedOptions { capture: true, ..ThreadedOptions::default() };
        let snaps = Arc::new(
            run_threaded_opts(&gs, pkts[..n / 2].iter().cloned(), &SUBS, warm)
                .unwrap()
                .snapshots,
        );
        assert!(!snaps.is_empty(), "capture produced no checkpoint");
        // Warm both paths (thread spawn, allocator, page cache) before
        // any timed round.
        run_carry(&gs, timed, &snaps);
        run_plain(&gs, timed);
        let (mut best_carry, mut best_plain) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..rounds {
            best_carry = best_carry.min(run_carry(&gs, timed, &snaps));
            best_plain = best_plain.min(run_plain(&gs, timed));
        }
        let overhead = best_carry / best_plain - 1.0;
        println!(
            "manager/{name}: carry {:.3} ms, plain {:.3} ms, overhead {:+.2}%",
            best_carry * 1e3,
            best_plain * 1e3,
            overhead * 100.0
        );
        if overhead > THRESHOLD {
            eprintln!(
                "FAIL: manager/{name} snapshot overhead {:.2}% exceeds {:.0}%",
                overhead * 100.0,
                THRESHOLD * 100.0
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK: snapshot overhead within {:.0}%", THRESHOLD * 100.0);
}
