//! CI gate: partition-parallel HFTA execution must not cost throughput.
//!
//! Runs the `manager/threaded_par*` workload from `benches/micro.rs` — a
//! multi-key aggregate over 1024 source addresses, so the hash router
//! actually spreads groups across shards — at `Gigascope::parallelism`
//! 1 and 4, strictly interleaved so machine drift hits both sides
//! equally, comparing the *fastest* run of each (the minimum is the
//! standard low-noise estimator; variance is one-sided). Exits non-zero
//! if the parallel run is more than 10% slower than the unpartitioned
//! one.
//!
//! The comparison only means anything when 4 shard threads can actually
//! run concurrently: on hosts with fewer than 4 logical CPUs the numbers
//! are still printed but the gate is skipped (the headline >=1.5x
//! speedup figure in ISSUE/DESIGN is a manual measurement on a >=4-core
//! machine, not a CI assertion).
//!
//! `GS_BENCH_QUICK=1` shrinks the trace and round count for CI; the gate
//! itself still applies.

use gigascope::manager::run_threaded;
use gigascope::Gigascope;
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use std::time::Instant;

const TOLERANCE: f64 = 0.10;

fn trace(n: usize) -> Vec<CapPacket> {
    (0..n)
        .map(|i| {
            let f = FrameBuilder::tcp(0x0a00_0000 + (i % 1024) as u32, 0xc0a8_0001, 1024, 80)
                .payload(b"x")
                .build_ethernet();
            // 2000 packets per second of stream time, as in benches/micro.rs.
            CapPacket::full(i as u64 * 500_000, 0, LinkType::Ethernet, f)
        })
        .collect()
}

fn system(parallelism: usize) -> Gigascope {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.batch_size = 256;
    gs.parallelism = parallelism;
    gs.add_program(
        "DEFINE { query_name raw; } Select time, srcIP, len From eth0.tcp; \
         DEFINE { query_name persrc; } \
         Select time, srcIP, count(*), sum(len) From raw Group By time, srcIP",
    )
    .unwrap();
    gs
}

fn run_once(gs: &Gigascope, pkts: &[CapPacket]) -> f64 {
    let start = Instant::now();
    let out = run_threaded(gs, pkts.iter().cloned(), &["persrc"]).unwrap();
    std::hint::black_box(out);
    start.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::var("GS_BENCH_QUICK").is_ok_and(|v| v == "1");
    let (n, rounds) = if quick { (4_000, 5) } else { (20_000, 9) };
    let pkts = trace(n);
    let par1 = system(1);
    let par4 = system(4);
    // Warm both paths (thread spawn, allocator, page cache) before any
    // timed round.
    run_once(&par1, &pkts);
    run_once(&par4, &pkts);
    let (mut best1, mut best4) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        best1 = best1.min(run_once(&par1, &pkts));
        best4 = best4.min(run_once(&par4, &pkts));
    }
    println!(
        "manager/threaded_par1 {:.3} ms, manager/threaded_par4 {:.3} ms, speedup {:.2}x",
        best1 * 1e3,
        best4 * 1e3,
        best1 / best4
    );
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 4 {
        println!("SKIP: {cores} logical CPU(s) < 4 — parallel gate not meaningful here");
        return;
    }
    if best4 > best1 * (1.0 + TOLERANCE) {
        eprintln!(
            "FAIL: parallelism 4 is {:.2}% slower than parallelism 1 (tolerance {:.0}%)",
            (best4 / best1 - 1.0) * 100.0,
            TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!("OK: parallelism 4 within {:.0}% of parallelism 1 or faster", TOLERANCE * 100.0);
}
