//! CI gate: the shared cross-query prefilter must actually pay off.
//!
//! Registers the 100-query netgen mix from `benches/micro.rs`
//! (`prefilter/registration_scaling_*`) — 100 per-port selection queries
//! drawn from a 20-port pool, so the shared pass dedupes them to 20
//! distinct atoms and BPF programs — and runs the same trace through the
//! synchronous engine with [`Gigascope::shared_prefilter`] on and off,
//! strictly interleaved so machine drift hits both sides equally,
//! comparing the *fastest* run of each (the minimum is the standard
//! low-noise estimator; variance is one-sided). Exits non-zero if the
//! shared pass is not at least 5x the per-query (unshared) evaluation.
//!
//! On hosts with fewer than 4 logical CPUs the numbers are still printed
//! but the gate is skipped — background load on a small host lands
//! asymmetrically on whichever side is running and the ratio measures
//! scheduling, not the prefilter.
//!
//! `GS_BENCH_QUICK=1` shrinks the trace and round count for CI; the gate
//! itself still applies.

use gigascope::Gigascope;
use gs_netgen::mix::{MixConfig, PacketMix};
use gs_packet::capture::{CapPacket, LinkType};
use std::time::Instant;

/// Required shared-over-unshared speedup on the fastest 100-query runs.
const REQUIRED_SPEEDUP: f64 = 5.0;

/// Distinct destination ports the generated queries cycle through: 100
/// registrations share 20 distinct predicates.
const PORTS: [u16; 20] = [
    80, 443, 53, 25, 8080, 22, 123, 161, 1433, 3306, 5060, 5432, 6379, 8443, 9090, 1024, 2048,
    4096, 3128, 179,
];

fn program(n: usize) -> String {
    (0..n)
        .map(|i| {
            format!(
                "DEFINE {{ query_name q{i}; }} \
                 Select time, destPort From eth0.tcp Where destPort = {};\n",
                PORTS[i % PORTS.len()]
            )
        })
        .collect()
}

fn trace(duration_ms: u64) -> Vec<CapPacket> {
    let cfg = MixConfig { seed: 7, duration_ms, ..MixConfig::default() };
    PacketMix::new(cfg).collect()
}

fn system(n_queries: usize, shared: bool) -> Gigascope {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.shared_prefilter = shared;
    gs.add_program(&program(n_queries)).unwrap();
    gs
}

fn run_once(gs: &Gigascope, pkts: &[CapPacket]) -> f64 {
    let start = Instant::now();
    let out = gs.run_capture(pkts.iter().cloned(), &[]).unwrap();
    std::hint::black_box(out);
    start.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::var("GS_BENCH_QUICK").is_ok_and(|v| v == "1");
    // Keep the quick trace long enough that the one-time engine build
    // (query compile + registration) stays a small fraction of a run;
    // the gate measures steady-state dispatch, not setup.
    let (duration_ms, rounds) = if quick { (160, 5) } else { (400, 9) };
    let pkts = trace(duration_ms);
    let shared = system(100, true);
    let unshared = system(100, false);
    // Warm both paths (allocator, page cache) before any timed round.
    run_once(&shared, &pkts);
    run_once(&unshared, &pkts);
    let (mut best_shared, mut best_unshared) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        best_unshared = best_unshared.min(run_once(&unshared, &pkts));
        best_shared = best_shared.min(run_once(&shared, &pkts));
    }
    println!(
        "prefilter/q100_unshared {:.3} ms, prefilter/q100_shared {:.3} ms, \
         speedup {:.2}x over {} packets",
        best_unshared * 1e3,
        best_shared * 1e3,
        best_unshared / best_shared,
        pkts.len()
    );
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 4 {
        println!("SKIP: {cores} logical CPU(s) < 4 — prefilter gate not meaningful here");
        return;
    }
    if best_shared * REQUIRED_SPEEDUP > best_unshared {
        eprintln!(
            "FAIL: shared prefilter is only {:.2}x the unshared evaluation (required {:.1}x)",
            best_unshared / best_shared,
            REQUIRED_SPEEDUP
        );
        std::process::exit(1);
    }
    println!("OK: shared prefilter >= {REQUIRED_SPEEDUP:.1}x unshared at 100 queries");
}
