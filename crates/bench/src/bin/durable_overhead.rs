//! CI gate: the durable checkpoint store must stay cheap per epoch.
//!
//! A `--state-dir` daemon epoch differs from a plain carry-state epoch
//! in exactly one way: after the cut is captured, the boundary
//! *publishes* a segment crash-consistently (temp, fsync, rename, dir
//! fsync) and *commits* the epoch's emission markers to the fsynced
//! log. That durable commit is strictly additive — it overlaps nothing
//! in the epoch itself — so this gate times the two parts separately
//! and compares their floors: `overhead = min(commit) / min(epoch)`.
//! Timing the sum instead would convolve epoch jitter with fsync's
//! long tail and the minimum estimator would rarely reach either
//! floor; timing the parts measures the same additive ratio with far
//! less variance. The gate exits non-zero past 10% — the acceptance
//! bound for durable overhead versus the in-memory carry baseline.
//!
//! The timed epoch restores a real checkpoint captured over the first
//! half of the trace and processes the second half — the daemon's
//! steady state — and carries a realistic amount of work: a daemon
//! epoch spans hundreds of milliseconds of traffic, which is what
//! amortizes the fixed fsync floor in production too.
//!
//! `GS_BENCH_QUICK=1` shrinks the trace and round count for CI; the
//! gate itself still applies.

use gigascope::manager::{run_threaded_opts, ThreadedOptions};
use gigascope::Gigascope;
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use gs_runtime::durable::{DurableStats, DurableStore, RealDisk};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

const THRESHOLD: f64 = 0.10;
const SUBS: [&str; 2] = ["raw", "persec"];

fn trace(n: usize) -> Vec<CapPacket> {
    (0..n)
        .map(|i| {
            let f = FrameBuilder::tcp(0x0a00_0001 + (i % 7) as u32, 0xc0a8_0001, 1024, 80)
                .payload(b"x")
                .build_ethernet();
            // 2000 packets per second of stream time, as in benches/micro.rs.
            CapPacket::full(i as u64 * 500_000, 0, LinkType::Ethernet, f)
        })
        .collect()
}

fn system(batch: usize) -> Gigascope {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.batch_size = batch;
    gs.add_program(
        "DEFINE { query_name raw; } Select time, len From eth0.tcp; \
         DEFINE { query_name persec; } \
         Select time, count(*), sum(len) From raw Group By time",
    )
    .unwrap();
    gs
}

/// One carry-mode epoch: restore the prior cut, process, capture a new
/// cut. The in-memory baseline the durable commit is measured against.
fn run_epoch(
    gs: &Gigascope,
    pkts: &[CapPacket],
    snaps: &Arc<HashMap<String, Vec<u8>>>,
) -> (f64, HashMap<String, Vec<u8>>) {
    let start = Instant::now();
    let opts = ThreadedOptions {
        capture: true,
        restore: Some(Arc::clone(snaps)),
        ..ThreadedOptions::default()
    };
    let out = run_threaded_opts(gs, pkts.iter().cloned(), &SUBS, opts).unwrap();
    assert!(out.health.notes().is_empty(), "checkpoint must restore clean");
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(&out);
    (elapsed, out.snapshots)
}

/// The durable boundary `gsqd` adds per epoch when `--state-dir` is
/// configured: publish the cut as a segment, then commit the epoch's
/// emission markers to the log.
fn run_commit(
    store: &mut DurableStore,
    cut: &HashMap<String, Vec<u8>>,
    epoch: u64,
) -> f64 {
    let cursors: HashMap<String, u64> =
        SUBS.iter().map(|s| (s.to_string(), epoch + 1)).collect();
    let streams: Vec<String> = SUBS.iter().map(|s| s.to_string()).collect();
    let start = Instant::now();
    store
        .checkpoint(epoch + 1, cut, &cursors, &streams)
        .and_then(|()| store.log_markers(epoch, &streams))
        .expect("durable commit");
    start.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::var("GS_BENCH_QUICK").is_ok_and(|v| v == "1");
    // Round counts are higher than the CPU-only benches need: fsync
    // latency is long-tailed, and the minimum estimator only reaches
    // the commit floor with enough samples.
    let (n, rounds) = if quick { (80_000, 14) } else { (160_000, 11) };
    let pkts = trace(n);
    let timed = &pkts[n / 2..];
    let scratch =
        std::env::temp_dir().join(format!("gs_durable_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let mut failed = false;
    for (name, batch) in [("threaded_throughput", 256), ("threaded_batch_64", 64)] {
        let gs = system(batch);
        // A real checkpoint to restore every round: capture over the
        // first half leaves the last 1-second window open in the cut.
        let warm = ThreadedOptions { capture: true, ..ThreadedOptions::default() };
        let snaps = Arc::new(
            run_threaded_opts(&gs, pkts[..n / 2].iter().cloned(), &SUBS, warm)
                .unwrap()
                .snapshots,
        );
        assert!(!snaps.is_empty(), "capture produced no checkpoint");
        let dir = scratch.join(name);
        let (mut store, recovery) = DurableStore::open(
            &dir,
            Arc::new(RealDisk),
            3,
            Arc::new(DurableStats::default()),
        )
        .expect("open state dir");
        assert!(!recovery.recovered, "scratch dir must start empty");
        // Warm both paths (thread spawn, allocator, page cache, first
        // segment publish) before any timed round.
        let (_, warm_cut) = run_epoch(&gs, timed, &snaps);
        run_commit(&mut store, &warm_cut, 0);
        let (mut best_epoch, mut best_commit) = (f64::INFINITY, f64::INFINITY);
        for r in 0..rounds {
            let (t, cut) = run_epoch(&gs, timed, &snaps);
            best_epoch = best_epoch.min(t);
            best_commit = best_commit.min(run_commit(&mut store, &cut, r as u64 + 1));
        }
        let overhead = best_commit / best_epoch;
        println!(
            "manager/{name}: commit {:.3} ms, epoch {:.3} ms, overhead {:+.2}%",
            best_commit * 1e3,
            best_epoch * 1e3,
            overhead * 100.0
        );
        if overhead > THRESHOLD {
            eprintln!(
                "FAIL: manager/{name} durable overhead {:.2}% exceeds {:.0}%",
                overhead * 100.0,
                THRESHOLD * 100.0
            );
            failed = true;
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
    if failed {
        std::process::exit(1);
    }
    println!("OK: durable overhead within {:.0}%", THRESHOLD * 100.0);
}
