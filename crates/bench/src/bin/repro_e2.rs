//! E2 — the §5 deployment claim.
//!
//! "Our largest scale deployment monitors application protocol
//! performance over two Gigabit Ethernet links for one of our customers.
//! At peak periods, Gigascope processes 1.2 million packets per second
//! using an inexpensive dual 2.4 Ghz CPU server."
//!
//! This harness runs the analogous query set — per-second, per-port
//! application accounting on each of two interfaces, with LFTA
//! pre-aggregation and HFTA super-aggregation — in the threaded
//! deployment configuration, and measures real sustained packets/second
//! on this machine. Absolute numbers depend on the host; the claim being
//! reproduced is that a two-level commodity-CPU configuration sustains
//! millions of packets per second because the per-packet path is just
//! prefilter + a handful of field interpretations + a table probe.
//!
//! Run with: `cargo run --release -p gs-bench --bin repro_e2`

use gigascope::manager::run_threaded;
use gigascope::Gigascope;

use gs_netgen::{merge_sources, MixConfig, PacketMix};
use gs_packet::capture::LinkType;
use gs_packet::CapPacket;
use std::time::Instant;

/// Replay a recorded burst `cycles` times with shifted timestamps, so a
/// modest capture buys an arbitrarily long run without measuring the
/// generator.
struct Replay {
    pkts: Vec<CapPacket>,
    span_ns: u64,
    cycle: u64,
    idx: usize,
    cycles: u64,
}

impl Iterator for Replay {
    type Item = CapPacket;
    fn next(&mut self) -> Option<CapPacket> {
        if self.cycle >= self.cycles {
            return None;
        }
        let mut p = self.pkts[self.idx].clone();
        p.ts_ns += self.cycle * self.span_ns;
        self.idx += 1;
        if self.idx == self.pkts.len() {
            self.idx = 0;
            self.cycle += 1;
        }
        Some(p)
    }
}

fn main() {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.add_interface("eth1", 1, LinkType::Ethernet);
    gs.add_program(
        "DEFINE { query_name app0; } \
         Select time, destPort, count(*), sum(len) From eth0.tcp \
         Group By time, destPort; \
         DEFINE { query_name app1; } \
         Select time, destPort, count(*), sum(len) From eth1.tcp \
         Group By time, destPort;",
    )
    .expect("query set compiles");

    // One second of two-link traffic, recorded once.
    let mk = |iface: u16, seed: u64| {
        PacketMix::new(MixConfig {
            seed,
            iface,
            duration_ms: 1_000,
            http_rate_mbps: 200.0,
            background_rate_mbps: 300.0,
            flows: 5_000,
            ..MixConfig::default()
        })
    };
    let pkts: Vec<CapPacket> = merge_sources(vec![
        Box::new(mk(0, 1)) as Box<dyn Iterator<Item = CapPacket>>,
        Box::new(mk(1, 2)),
    ])
    .collect();
    println!("recorded burst: {} packets over 1 s of two-link traffic", pkts.len());

    let cycles = (2_000_000 / pkts.len() as u64).max(2);
    let total = pkts.len() as u64 * cycles;
    let replay = Replay { span_ns: 1_000_000_000, pkts, cycle: 0, idx: 0, cycles };

    let start = Instant::now();
    let out = run_threaded(&gs, replay, &["app0", "app1"]).expect("threaded run");
    let wall = start.elapsed();

    let pkts_per_sec = out.packets as f64 / wall.as_secs_f64();
    println!("\nprocessed {} packets in {:.2} s across LFTA + HFTA threads", total, wall.as_secs_f64());
    println!("sustained rate: {:.2} M packets/s   (paper: 1.2 M packets/s on a 2003 dual 2.4 GHz server)", pkts_per_sec / 1e6);
    println!(
        "app0 rows: {}, app1 rows: {}",
        out.stream("app0").len(),
        out.stream("app1").len()
    );
    assert!(out.stream("app0").len() > cycles as usize, "per-second groups must flush");
    assert!(
        pkts_per_sec > 200_000.0,
        "a commodity CPU must sustain at least hundreds of kpkts/s on this path"
    );

    // The paper ran on a *dual*-CPU server: the two-level split is what
    // lets LFTAs (capture thread) and HFTAs (worker threads) use both.
    // Compare against the single-threaded inline engine on the same work.
    let replay2 = Replay {
        span_ns: 1_000_000_000,
        pkts: merge_sources(vec![
            Box::new(mk(0, 1)) as Box<dyn Iterator<Item = CapPacket>>,
            Box::new(mk(1, 2)),
        ])
        .collect(),
        cycle: 0,
        idx: 0,
        cycles,
    };
    let start = Instant::now();
    let sync_out = gs.run_capture(replay2, &["app0", "app1"]).expect("inline run");
    let sync_wall = start.elapsed();
    let sync_rate = sync_out.stats.packets as f64 / sync_wall.as_secs_f64();
    println!(
        "single-threaded inline engine: {:.2} M packets/s ({:.2}x vs threaded)",
        sync_rate / 1e6,
        pkts_per_sec / sync_rate,
    );
    println!(
        "(with LFTA pre-aggregation the capture path dominates and the two \
         engines tie; threads pay off when HFTAs do heavy work, e.g. the \
         E1 regex split)"
    );
    // Same answers either way.
    let norm = |rows: &[gigascope::Tuple]| {
        let mut v: Vec<Vec<u64>> = rows
            .iter()
            .map(|t| t.values().iter().map(|x| x.as_uint().unwrap()).collect())
            .collect();
        v.sort();
        v
    };
    assert_eq!(norm(out.stream("app0")), norm(sync_out.stream("app0")));
    assert_eq!(norm(out.stream("app1")), norm(sync_out.stream("app1")));
    println!("threaded and inline engines agree row-for-row.");
}
