//! E5 — ablation: heartbeats / ordering-update tokens unblocking the
//! merge (§3, "Unblocking Operators").
//!
//! "If tcpdest0 produces 100Mbytes of data per second while tcpdest1
//! produces one tuple per minute, we are likely to overflow the merge
//! buffers... we use a mechanism of injecting ordering update tokens into
//! the query stream... we are experimenting with an on-demand system."
//!
//! The harness merges a busy link with progressively slower partners and
//! compares peak merge-buffer occupancy under three policies: no
//! punctuation, periodic injection (Tucker & Maier), and on-demand
//! injection (the paper's experiment).
//!
//! Run with: `cargo run --release -p gs-bench --bin repro_e5`

use gigascope::Gigascope;
use gs_bench::row;
use gs_netgen::{merge_sources, MixConfig, PacketMix};
use gs_packet::capture::LinkType;
use gs_packet::CapPacket;
use gs_runtime::punct::HeartbeatMode;

fn system(mode: HeartbeatMode) -> Gigascope {
    let mut gs = Gigascope::new();
    gs.heartbeat = mode;
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.add_interface("eth1", 1, LinkType::Ethernet);
    gs.add_program(
        "DEFINE { query_name t0; } Select time, destPort From eth0.tcp; \
         DEFINE { query_name t1; } Select time, destPort From eth1.tcp; \
         DEFINE { query_name merged; } Merge t0.time : t1.time From t0, t1",
    )
    .expect("queries compile");
    gs
}

fn traffic(slow_rate_mbps: f64) -> impl Iterator<Item = CapPacket> {
    let busy = PacketMix::new(MixConfig {
        seed: 5,
        iface: 0,
        duration_ms: 10_000,
        http_rate_mbps: 40.0,
        background_rate_mbps: 0.0,
        ..MixConfig::default()
    });
    let slow = PacketMix::new(MixConfig {
        seed: 6,
        iface: 1,
        duration_ms: 10_000,
        http_rate_mbps: slow_rate_mbps,
        background_rate_mbps: 0.0,
        ..MixConfig::default()
    });
    merge_sources(vec![
        Box::new(busy) as Box<dyn Iterator<Item = CapPacket>>,
        Box::new(slow),
    ])
}

fn main() {
    println!("E5: merge of a 40 Mbit/s link with a slow partner, 10 s of traffic");
    println!("peak merge-buffer occupancy (tuples) by heartbeat policy\n");
    let widths = [16, 12, 14, 12, 12];
    println!(
        "{}",
        row(
            &[
                "slow link".into(),
                "no punct".into(),
                "periodic 1 s".into(),
                "on-demand".into(),
                "merged".into()
            ],
            &widths
        )
    );

    let skews = [(4.0, "4 Mbit/s"), (0.04, "40 kbit/s"), (0.0004, "~1 pkt/4 s")];
    let mut no_punct_peaks = Vec::new();
    let mut periodic_peaks = Vec::new();
    for (rate, label) in skews {
        let mut peaks = Vec::new();
        let mut merged = 0usize;
        let mut heartbeats = [0u64; 3];
        for (k, mode) in [
            HeartbeatMode::Off,
            HeartbeatMode::Periodic { interval: 1 },
            HeartbeatMode::OnDemand,
        ]
        .into_iter()
        .enumerate()
        {
            let gs = system(mode);
            let out = gs.run_capture(traffic(rate), &["merged"]).expect("run");
            peaks.push(out.stats.peak_buffered.get("merged").copied().unwrap_or(0));
            merged = out.stream("merged").len();
            heartbeats[k] = out.stats.heartbeats;
        }
        no_punct_peaks.push(peaks[0]);
        periodic_peaks.push(peaks[1]);
        println!(
            "{}",
            row(
                &[
                    label.into(),
                    format!("{}", peaks[0]),
                    format!("{}", peaks[1]),
                    format!("{}", peaks[2]),
                    format!("{merged}"),
                ],
                &widths
            )
        );
    }

    println!("\nshape checks:");
    println!(
        "  without punctuation the peak grows as the slow link slows: {:?}",
        no_punct_peaks
    );
    println!("  with punctuation it stays bounded:                        {:?}", periodic_peaks);
    assert!(
        no_punct_peaks.windows(2).all(|w| w[1] >= w[0]),
        "slower partner must hold more tuples hostage without punctuation"
    );
    assert!(
        *no_punct_peaks.last().expect("non-empty") > 20_000,
        "a near-silent partner must force unbounded buffering without punctuation"
    );
    assert!(
        periodic_peaks.iter().all(|&p| p < 1_000),
        "ordering-update tokens must bound the buffer regardless of skew"
    );
    println!("\nall shape assertions hold.");
}
