//! E7 — the tuple-value heuristic under overload (§4, closing
//! discussion).
//!
//! "We concur with their position [Carney et al.] that some tuples are
//! more valuable, but we use a simple heuristic which is easy to
//! understand and implement: highly processed tuples (produced further in
//! the query chain) are more valuable than less-processed tuples, because
//! of the filters and aggregations that have been applied."
//!
//! A consumer with half the needed capacity drains a mixed buffer of
//! query-chain traffic: mostly raw tuples (depth 0), some filtered
//! (depth 1), few aggregated (depth 2), and rare joined results
//! (depth 3). Tail-drop loses tuples indiscriminately; the paper's
//! least-processed-first policy sacrifices raw tuples to deliver nearly
//! every highly-processed one.
//!
//! Run with: `cargo run --release -p gs-bench --bin repro_e7`

use gs_bench::row;
use gs_runtime::qos::{DropPolicy, Shedder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const DEPTH_MIX: [(u32, f64); 4] = [(0, 0.80), (1, 0.14), (2, 0.05), (3, 0.01)];

fn depth_of(rng: &mut SmallRng) -> u32 {
    let mut u: f64 = rng.gen();
    for &(d, p) in &DEPTH_MIX {
        if u < p {
            return d;
        }
        u -= p;
    }
    3
}

/// Run the overload scenario; returns delivered counts per depth and
/// offered counts per depth.
fn run(policy: DropPolicy, overload: f64) -> ([u64; 4], [u64; 4]) {
    let mut rng = SmallRng::seed_from_u64(31);
    let mut shedder: Shedder<u32> = Shedder::new(64, policy);
    let mut delivered = [0u64; 4];
    let mut offered = [0u64; 4];
    // The consumer drains one item every `overload` arrivals.
    let mut credit = 0.0f64;
    for _ in 0..200_000 {
        let d = depth_of(&mut rng);
        offered[d as usize] += 1;
        shedder.offer(d, d);
        credit += 1.0 / overload;
        while credit >= 1.0 {
            credit -= 1.0;
            if let Some((d, _)) = shedder.pop() {
                delivered[d as usize] += 1;
            }
        }
    }
    while let Some((d, _)) = shedder.pop() {
        delivered[d as usize] += 1;
    }
    (delivered, offered)
}

fn main() {
    let overload = 2.0; // offered = 2x capacity
    println!("E7: overload shedding at {overload}x offered load, 200k tuples");
    println!("depth 0 = raw packets ... depth 3 = joined/aggregated results\n");
    let widths = [24, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &[
                "policy".into(),
                "depth 0".into(),
                "depth 1".into(),
                "depth 2".into(),
                "depth 3".into()
            ],
            &widths
        )
    );

    let mut survival = Vec::new();
    for (name, policy) in [
        ("tail drop", DropPolicy::TailDrop),
        ("least-processed first", DropPolicy::LeastProcessedFirst),
    ] {
        let (delivered, offered) = run(policy, overload);
        let pct: Vec<f64> = delivered
            .iter()
            .zip(&offered)
            .map(|(&d, &o)| if o == 0 { 1.0 } else { d as f64 / o as f64 })
            .collect();
        survival.push(pct.clone());
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    format!("{:.1}%", pct[0] * 100.0),
                    format!("{:.1}%", pct[1] * 100.0),
                    format!("{:.1}%", pct[2] * 100.0),
                    format!("{:.1}%", pct[3] * 100.0),
                ],
                &widths
            )
        );
    }

    let tail = &survival[0];
    let lpf = &survival[1];
    println!("\nshape checks:");
    println!(
        "  tail drop treats all depths alike (survival spread {:.3})",
        tail.iter().cloned().fold(f64::MIN, f64::max) - tail.iter().cloned().fold(f64::MAX, f64::min)
    );
    println!(
        "  the paper's heuristic delivers {:.1}% of depth-3 tuples vs {:.1}% under tail drop",
        lpf[3] * 100.0,
        tail[3] * 100.0
    );
    assert!(lpf[3] > 0.99, "nearly every highly-processed tuple must survive");
    assert!(lpf[2] > 0.99, "aggregated tuples must survive too");
    assert!(lpf[0] < tail[0], "the cost is paid by raw tuples");
    assert!(
        tail.iter().cloned().fold(f64::MIN, f64::max)
            - tail.iter().cloned().fold(f64::MAX, f64::min)
            < 0.05,
        "tail drop must be depth-blind"
    );
    println!("\nall shape assertions hold.");
}
