//! CI gate: columnar (SoA) batch execution must actually be faster.
//!
//! Runs the `manager/threaded_agg*` workload from `benches/micro.rs` — a
//! four-function multi-key aggregate over bursty sources, so the
//! columnar run-detection loop has real runs to fold — once with
//! `Gigascope::columnar` on and once with the pre-columnar row
//! transport, strictly interleaved so machine drift hits both sides
//! equally, comparing the *fastest* run of each (the minimum is the
//! standard low-noise estimator; variance is one-sided). Exits non-zero
//! if the columnar run is not at least 2x the row throughput.
//!
//! The comparison only means anything when the capture loop, the two
//! HFTA threads, and the collectors can actually run concurrently: on
//! hosts with fewer than 4 logical CPUs the numbers are still printed
//! but the gate is skipped.
//!
//! `GS_BENCH_QUICK=1` shrinks the trace and round count for CI; the gate
//! itself still applies.

use gigascope::manager::run_threaded;
use gigascope::Gigascope;
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use std::time::Instant;

/// Required columnar-over-row speedup on the fastest runs.
const REQUIRED_SPEEDUP: f64 = 2.0;

fn trace(n: usize) -> Vec<CapPacket> {
    (0..n)
        .map(|i| {
            // Bursty sources: each emits runs of 32 packets, as flows
            // do, matching the `manager/threaded_agg` bench.
            let f = FrameBuilder::tcp(0x0a00_0000 + ((i / 32) % 256) as u32, 0xc0a8_0001, 1024, 80)
                .payload(b"x")
                .build_ethernet();
            // 2000 packets per second of stream time, as in benches/micro.rs.
            CapPacket::full(i as u64 * 500_000, 0, LinkType::Ethernet, f)
        })
        .collect()
}

fn system(columnar: bool) -> Gigascope {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.batch_size = 256;
    gs.columnar = columnar;
    gs.add_program(
        "DEFINE { query_name raw; } Select time, srcIP, len From eth0.tcp; \
         DEFINE { query_name persrc; } \
         Select time, srcIP, count(*), sum(len), min(len), max(len) From raw \
         Group By time, srcIP",
    )
    .unwrap();
    gs
}

fn run_once(gs: &Gigascope, pkts: &[CapPacket]) -> f64 {
    let start = Instant::now();
    let out = run_threaded(gs, pkts.iter().cloned(), &["persrc"]).unwrap();
    std::hint::black_box(out);
    start.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::var("GS_BENCH_QUICK").is_ok_and(|v| v == "1");
    let (n, rounds) = if quick { (4_000, 5) } else { (20_000, 9) };
    let pkts = trace(n);
    let row = system(false);
    let col = system(true);
    // Warm both paths (thread spawn, allocator, page cache) before any
    // timed round.
    run_once(&row, &pkts);
    run_once(&col, &pkts);
    let (mut best_row, mut best_col) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        best_row = best_row.min(run_once(&row, &pkts));
        best_col = best_col.min(run_once(&col, &pkts));
    }
    println!(
        "manager/threaded_agg_row {:.3} ms, manager/threaded_agg {:.3} ms, speedup {:.2}x",
        best_row * 1e3,
        best_col * 1e3,
        best_row / best_col
    );
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 4 {
        println!("SKIP: {cores} logical CPU(s) < 4 — columnar gate not meaningful here");
        return;
    }
    if best_col * REQUIRED_SPEEDUP > best_row {
        eprintln!(
            "FAIL: columnar transport is only {:.2}x the row transport (required {:.1}x)",
            best_row / best_col,
            REQUIRED_SPEEDUP
        );
        std::process::exit(1);
    }
    println!("OK: columnar transport >= {REQUIRED_SPEEDUP:.1}x row transport");
}
