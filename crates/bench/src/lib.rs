//! Shared harness for the experiment-reproduction binaries.
//!
//! Every table and figure of the paper's evaluation maps to one
//! `repro_*` binary (see EXPERIMENTS.md and `src/bin/`); this library
//! holds the pieces they share: compiling the §4 experiment's query into
//! a real LFTA, the host/NIC actions that execute genuine query code
//! inside the calibrated capture-path simulator, and small table/crossing
//! helpers.

pub mod harness;

use gs_gsql::catalog::{Catalog, InterfaceDef};
use gs_gsql::split::split_query;
use gs_netgen::{MixConfig, PacketMix};
use gs_nic::bpf::BpfProgram;
use gs_nic::sim::{HostAction, NicAction, NicVerdict};
use gs_packet::capture::LinkType;
use gs_packet::CapPacket;
use gs_runtime::ops::build::{build_lfta, BuildCtx};
use gs_runtime::ops::lfta::Lfta;
use gs_runtime::tuple::StreamItem;
use gs_runtime::udf::regex::Regex;
use gs_runtime::udf::{FileStore, UdfRegistry};
use gs_runtime::ParamBindings;

/// The paper's payload regex, verbatim.
pub const HTTP_REGEX: &str = "^[^\\n]*HTTP/1.*";

/// Virtual cost charged per regex evaluation, beyond the per-byte scan.
pub const REGEX_BASE_NS: u64 = 500;
/// Virtual regex cost per payload byte (the HFTA's expensive work).
pub const REGEX_PER_BYTE_NS: f64 = 2.0;

/// Compile the §4 experiment's LFTA — `Select time, payload From eth0.tcp
/// Where destPort = 80` — through the real GSQL pipeline (parse, analyze,
/// split, instantiate), so the simulation runs genuine generated code.
pub fn build_port80_lfta() -> Lfta {
    let mut catalog = Catalog::with_builtins();
    catalog.add_interface(InterfaceDef {
        name: "eth0".into(),
        id: 0,
        link: LinkType::Ethernet,
    });
    let q = gs_gsql::parse_query(
        "DEFINE { query_name port80; } \
         Select time, payload From eth0.tcp Where destPort = 80",
    )
    .expect("static query parses");
    let aq = gs_gsql::analyze(&q, &catalog).expect("analyzes");
    let dq = split_query(&aq, &catalog).expect("splits");
    assert!(dq.hfta.is_none(), "the filter query is a single LFTA");
    let params = ParamBindings::new();
    let registry = UdfRegistry::with_builtins();
    let resolver = FileStore::new();
    let ctx = BuildCtx {
        catalog: &catalog,
        params: &params,
        registry: &registry,
        resolver: &resolver,
        lfta_table_size: 4096,
    };
    build_lfta(&dq.lftas[0], &ctx).expect("instantiates")
}

/// The host side of Gigascope option 3 (and the host half of option 4):
/// runs the real LFTA per packet and the real HFTA regex per qualifying
/// tuple, charging calibrated virtual costs.
pub struct GigascopeHost {
    lfta: Lfta,
    regex: Regex,
    lfta_eval_ns: u64,
    /// Whether the LFTA cost is charged here (false when the LFTA already
    /// ran on the NIC).
    pub charge_lfta: bool,
    /// Port-80 tuples produced.
    pub port80: u64,
    /// Tuples whose payload matched the regex.
    pub matched: u64,
    scratch: Vec<StreamItem>,
}

impl GigascopeHost {
    /// Build from the cost model.
    pub fn new(costs: &gs_nic::CostModel, charge_lfta: bool) -> GigascopeHost {
        GigascopeHost {
            lfta: build_port80_lfta(),
            regex: Regex::compile(HTTP_REGEX).expect("paper regex compiles"),
            lfta_eval_ns: costs.host_lfta_eval_ns,
            charge_lfta,
            port80: 0,
            matched: 0,
            scratch: Vec::new(),
        }
    }

    /// The measured HTTP fraction so far.
    pub fn fraction(&self) -> f64 {
        if self.port80 == 0 {
            0.0
        } else {
            self.matched as f64 / self.port80 as f64
        }
    }
}

impl HostAction for GigascopeHost {
    fn handle(&mut self, pkt: &CapPacket) -> u64 {
        self.scratch.clear();
        self.lfta.push_packet(pkt, &mut self.scratch);
        let mut cost = if self.charge_lfta { self.lfta_eval_ns } else { 0 };
        for item in self.scratch.drain(..) {
            let StreamItem::Tuple(t) = item else { continue };
            self.port80 += 1;
            // HFTA work: the real regex over the real payload.
            if let Some(payload) = t.get(1).as_bytes() {
                cost += REGEX_BASE_NS + (REGEX_PER_BYTE_NS * payload.len() as f64) as u64;
                if self.regex.is_match(payload) {
                    self.matched += 1;
                }
            }
        }
        cost
    }
}

/// The NIC side of option 4: the LFTA's filter runs in firmware; only
/// qualifying packets cross to the host.
pub struct NicLfta {
    filter: BpfProgram,
    /// Packets the firmware filtered out.
    pub rejected: u64,
}

impl Default for NicLfta {
    fn default() -> Self {
        NicLfta::new()
    }
}

impl NicLfta {
    /// Uses the same port-80 program the splitter pushes down for the
    /// LFTA's prefilter.
    pub fn new() -> NicLfta {
        NicLfta { filter: gs_nic::bpf::tcp_dst_port_filter(80), rejected: 0 }
    }
}

impl NicAction for NicLfta {
    fn handle(&mut self, pkt: &CapPacket) -> NicVerdict {
        if self.filter.accepts(&pkt.data) {
            NicVerdict::Pass { snaplen: None }
        } else {
            self.rejected += 1;
            NicVerdict::Filtered
        }
    }
}

/// The standard E1 workload at a given total offered rate: 60 Mbit/s of
/// port-80 traffic (70 % genuine HTTP) plus background to make up the
/// total, over `duration_ms` of virtual time.
pub fn e1_mix(total_mbps: f64, duration_ms: u64, seed: u64) -> PacketMix {
    let http = 60.0f64.min(total_mbps);
    PacketMix::new(MixConfig {
        seed,
        duration_ms,
        http_rate_mbps: http,
        http_match_fraction: 0.7,
        background_rate_mbps: (total_mbps - http).max(0.0),
        ..MixConfig::default()
    })
}

/// Linear interpolation of the offered rate at which `loss` first crosses
/// `threshold`; `None` if it never does.
pub fn crossing(points: &[(f64, f64)], threshold: f64) -> Option<f64> {
    for w in points.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if y0 <= threshold && y1 > threshold {
            if (y1 - y0).abs() < f64::EPSILON {
                return Some(x1);
            }
            return Some(x0 + (threshold - y0) / (y1 - y0) * (x1 - x0));
        }
    }
    points.first().and_then(|&(x0, y0)| (y0 > threshold).then_some(x0))
}

/// Render one row of a fixed-width results table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_nic::{CaptureSim, CostModel};

    #[test]
    fn port80_lfta_builds_with_prefilter_and_no_snap() {
        let lfta = build_port80_lfta();
        assert_eq!(lfta.protocol_name(), "tcp");
    }

    #[test]
    fn host_action_counts_match_ground_truth() {
        let mut mix = e1_mix(100.0, 200, 9);
        let sim = CaptureSim::default();
        let mut host = GigascopeHost::new(&CostModel::default(), true);
        // Run far below capacity: nothing drops, counts are exact.
        let pkts: Vec<_> = (&mut mix).collect();
        let slowed = pkts
            .into_iter()
            .enumerate()
            .map(|(i, mut p)| {
                p.ts_ns = i as u64 * 100_000; // 10 kpps
                p
            })
            .collect::<Vec<_>>();
        let r = sim.run(slowed.into_iter(), None, &mut host);
        assert_eq!(r.loss_rate(), 0.0);
        let truth = mix.truth();
        assert_eq!(host.port80, truth.port80_pkts);
        assert_eq!(host.matched, truth.http_match_pkts);
    }

    #[test]
    fn crossing_interpolates() {
        let pts = vec![(100.0, 0.0), (200.0, 0.0), (300.0, 0.04)];
        let c = crossing(&pts, 0.02).unwrap();
        assert!((c - 250.0).abs() < 1.0, "crossing {c}");
        assert!(crossing(&[(1.0, 0.0), (2.0, 0.0)], 0.02).is_none());
        // Already above threshold at the first point.
        assert_eq!(crossing(&[(50.0, 0.5)], 0.02), Some(50.0));
    }

    #[test]
    fn nic_lfta_filters_non_port80() {
        let mut nic = NicLfta::new();
        let yes = gs_packet::builder::FrameBuilder::tcp(1, 2, 9, 80).build_ethernet();
        let no = gs_packet::builder::FrameBuilder::tcp(1, 2, 9, 25).build_ethernet();
        let mk = |d| CapPacket::full(0, 0, LinkType::Ethernet, d);
        assert!(matches!(nic.handle(&mk(yes)), NicVerdict::Pass { .. }));
        assert!(matches!(nic.handle(&mk(no)), NicVerdict::Filtered));
        assert_eq!(nic.rejected, 1);
    }
}
