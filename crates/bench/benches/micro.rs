//! Micro-benchmarks: per-operator and per-substrate throughputs
//! underpinning the experiment-level results. Runs on the in-repo
//! `std::time::Instant` harness ([`gs_bench::harness`]); metric names
//! (`group/function`) are unchanged from the original criterion runs.

use gs_bench::harness::{black_box, BatchSize, Criterion, Throughput};
use gs_gsql::catalog::{Catalog, InterfaceDef};
use gs_nic::bpf::tcp_dst_port_filter;
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use gs_packet::PacketView;
use gs_runtime::expr::{EvalScratch, PacketFields, Program};
use gs_runtime::ops::agg::{AggCore, DirectMappedAggregator, GroupAggregator};
use gs_runtime::ops::defrag::Defragmenter;
use gs_runtime::ops::join::{JoinConfig, JoinOp};
use gs_runtime::ops::merge::MergeOp;
use gs_runtime::ops::Operator;
use gs_runtime::tuple::{StreamItem, Tuple};
use gs_runtime::udf::lpm::LpmTrie;
use gs_runtime::udf::regex::Regex;
use gs_runtime::udf::{FileStore, UdfRegistry};
use gs_runtime::{ParamBindings, Value};

fn sample_packets(n: usize) -> Vec<CapPacket> {
    (0..n)
        .map(|i| {
            let port = if i % 3 == 0 { 80 } else { 8080 + (i % 100) as u16 };
            let frame = FrameBuilder::tcp(
                0x0a000000 + i as u32,
                0xc0a80000 + (i % 256) as u32,
                1024 + (i % 1000) as u16,
                port,
            )
            .payload(if i % 2 == 0 {
                b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"
            } else {
                b"tunneled binary gibberish payload here"
            })
            .ip_id(i as u16)
            .build_ethernet();
            CapPacket::full(i as u64 * 10_000, 0, LinkType::Ethernet, frame)
        })
        .collect()
}

fn compile(pe: &gs_gsql::plan::PExpr) -> Program {
    Program::compile(pe, &ParamBindings::new(), &UdfRegistry::with_builtins(), &FileStore::new())
        .unwrap()
}

fn col(i: usize) -> gs_gsql::plan::PExpr {
    gs_gsql::plan::PExpr::Col { index: i, ty: gs_gsql::types::DataType::UInt }
}

fn packet_prog(field: &str) -> Program {
    let proto = gs_packet::interp::protocol("tcp").unwrap();
    compile(&col(proto.field_index(field).unwrap()))
}

fn bench_bpf(c: &mut Criterion) {
    let prog = tcp_dst_port_filter(80);
    let pkts = sample_packets(1024);
    let mut g = c.benchmark_group("bpf");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.bench_function("tcp_port80_filter", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &pkts {
                acc += u64::from(prog.accepts(black_box(&p.data)));
            }
            acc
        })
    });
    g.finish();
}

fn bench_packet_parse(c: &mut Criterion) {
    let pkts = sample_packets(1024);
    let mut g = c.benchmark_group("packet");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.bench_function("parse_view", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &pkts {
                let v = PacketView::parse(black_box(p.clone()));
                acc += u64::from(v.tcp().map(|t| t.dst_port).unwrap_or(0));
            }
            acc
        })
    });
    g.finish();
}

fn bench_regex(c: &mut Criterion) {
    let re = Regex::compile("^[^\\n]*HTTP/1.*").unwrap();
    let hit = b"GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n".to_vec();
    let miss: Vec<u8> = (0..512u32).map(|i| (i % 80 + 32) as u8).collect();
    let mut g = c.benchmark_group("regex");
    g.throughput(Throughput::Bytes((hit.len() + miss.len()) as u64));
    g.bench_function("paper_pattern", |b| {
        b.iter(|| {
            black_box(re.is_match(black_box(&hit)));
            black_box(re.is_match(black_box(&miss)));
        })
    });
    g.finish();
}

fn bench_lpm(c: &mut Criterion) {
    let mut trie = LpmTrie::new();
    let mut x = 0x9e3779b9u32;
    for i in 0..10_000u32 {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        trie.insert(x & (u32::MAX << 8), 24, i);
    }
    let addrs: Vec<u32> = (0..1024u32).map(|i| i.wrapping_mul(0x0100_0193)).collect();
    let mut g = c.benchmark_group("lpm");
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("lookup_10k_prefixes", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &a in &addrs {
                acc += u64::from(trie.lookup(black_box(a)).unwrap_or(0));
            }
            acc
        })
    });
    g.finish();
}

fn bench_lfta(c: &mut Criterion) {
    let pkts = sample_packets(1024);
    let mut g = c.benchmark_group("lfta");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.bench_function("port80_select_project", |b| {
        let mut l = gs_bench::build_port80_lfta();
        let mut out = Vec::new();
        b.iter(|| {
            for p in &pkts {
                out.clear();
                l.push_packet(black_box(p), &mut out);
                black_box(&out);
            }
        })
    });
    g.finish();
}

fn agg_core() -> AggCore {
    AggCore::new(
        vec![packet_prog("time"), packet_prog("srcIP"), packet_prog("destPort")],
        vec![(gs_gsql::ast::AggFunc::Count, None, gs_gsql::types::DataType::UInt)],
        Some(0),
        0,
    )
}

fn bench_aggregation(c: &mut Criterion) {
    let pkts = sample_packets(1024);
    let views: Vec<PacketView> = pkts.iter().map(|p| PacketView::parse(p.clone())).collect();
    let proto = gs_packet::interp::protocol("tcp").unwrap();
    let mut g = c.benchmark_group("agg");
    g.throughput(Throughput::Elements(views.len() as u64));
    g.bench_function("direct_mapped_update", |b| {
        let mut dm = DirectMappedAggregator::new(agg_core(), 4096);
        let mut out = Vec::new();
        b.iter(|| {
            for v in &views {
                out.clear();
                dm.update(black_box(&PacketFields::new(v, proto.fields)), &mut out);
                black_box(&out);
            }
        })
    });
    g.bench_function("exact_hash_update", |b| {
        let mut agg = GroupAggregator::new(agg_core());
        let mut out = Vec::new();
        b.iter(|| {
            for v in &views {
                out.clear();
                agg.update(black_box(&PacketFields::new(v, proto.fields)), &mut out);
                black_box(&out);
            }
        })
    });
    g.finish();
}

fn bench_expr(c: &mut Criterion) {
    use gs_gsql::ast::BinOp;
    use gs_gsql::plan::{Literal, PExpr};
    use gs_gsql::types::DataType;
    // (c0 = 80 AND c1 > 5)
    let e = PExpr::Binary {
        op: BinOp::And,
        left: Box::new(PExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(col(0)),
            right: Box::new(PExpr::Lit(Literal::UInt(80))),
            ty: DataType::Bool,
        }),
        right: Box::new(PExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(col(1)),
            right: Box::new(PExpr::Lit(Literal::UInt(5))),
            ty: DataType::Bool,
        }),
        ty: DataType::Bool,
    };
    let prog = compile(&e);
    let tuples: Vec<Tuple> = (0..1024u64)
        .map(|i| {
            Tuple::new(vec![Value::UInt(if i % 2 == 0 { 80 } else { 25 }), Value::UInt(i % 64)])
        })
        .collect();
    let mut g = c.benchmark_group("expr");
    g.throughput(Throughput::Elements(tuples.len() as u64));
    g.bench_function("predicate_eval", |b| {
        let mut scratch = EvalScratch::default();
        b.iter(|| {
            let mut acc = 0u64;
            for t in &tuples {
                acc += u64::from(prog.eval_bool(black_box(t), &mut scratch));
            }
            acc
        })
    });
    g.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let src = "DEFINE { query_name q; } \
               Select peerid, tb, count(*), sum(len) FROM eth0.tcp \
               Where destPort = 80 and IPVersion = 4 \
               Group by time/60 as tb, getlpmid(destIP, 'peerid.tbl') as peerid \
               Having count(*) > 100";
    let mut catalog = Catalog::with_builtins();
    catalog.add_interface(InterfaceDef { name: "eth0".into(), id: 0, link: LinkType::Ethernet });
    let mut g = c.benchmark_group("frontend");
    g.bench_function("parse", |b| b.iter(|| gs_gsql::parse_query(black_box(src)).unwrap()));
    g.bench_function("parse_analyze_split", |b| {
        b.iter(|| {
            let q = gs_gsql::parse_query(black_box(src)).unwrap();
            let aq = gs_gsql::analyze(&q, &catalog).unwrap();
            gs_gsql::split_query(&aq, &catalog).unwrap()
        })
    });
    g.finish();
}

fn bench_merge_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("multiway");
    g.throughput(Throughput::Elements(2048));
    g.bench_function("merge_push", |b| {
        b.iter_batched(
            || MergeOp::new(2, 0, vec![0, 0]),
            |mut m| {
                let mut out = Vec::new();
                for i in 0..1024u64 {
                    m.push(0, StreamItem::Tuple(Tuple::new(vec![Value::UInt(i)])), &mut out);
                    m.push(1, StreamItem::Tuple(Tuple::new(vec![Value::UInt(i)])), &mut out);
                    out.clear();
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("hash_join_push", |b| {
        b.iter_batched(
            || {
                JoinOp::new(
                    JoinConfig {
                        left_col: 0,
                        right_col: 0,
                        lo: 0,
                        hi: 0,
                        left_slack: 0,
                        right_slack: 0,
                        eq_keys: vec![(1, 1)],
                        emit: gs_runtime::ops::join::EmitMode::Banded,
                        sort_out_col: 0,
                    },
                    None,
                    vec![compile(&col(0))],
                )
            },
            |mut j| {
                let mut out = Vec::new();
                for i in 0..1024u64 {
                    let t = |v| {
                        StreamItem::Tuple(Tuple::new(vec![Value::UInt(i / 8), Value::UInt(v)]))
                    };
                    j.push(0, t(i % 16), &mut out);
                    j.push(1, t(i % 16), &mut out);
                    out.clear();
                }
                j
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// End-to-end deployment throughput: packets → inline LFTA → bounded
/// channel → HFTA aggregate thread → subscription collectors. The query
/// is a named-stream composition so the LFTA is a pure projection: one
/// tuple per packet crosses the ready-queue, making transport cost (not
/// operator cost) the measured quantity. Both streams are subscribed —
/// "both streams are available to the application" (paper §3) — so the
/// raw stream fans out to two consumers, exercising the batch-level
/// cloning rule. `threaded_per_item` is the same pipeline at batch size
/// 1 — the pre-batching transport — and the `threaded_batch_*` points
/// sweep the size knob.
fn bench_manager(c: &mut Criterion) {
    use gigascope::manager::run_threaded;
    use gigascope::Gigascope;

    const N: usize = 20_000;
    let pkts: Vec<CapPacket> = (0..N)
        .map(|i| {
            let f = FrameBuilder::tcp(0x0a000001 + (i % 7) as u32, 0xc0a80001, 1024, 80)
                .payload(b"x")
                .build_ethernet();
            // 2000 packets per second of stream time: the aggregate
            // closes a group (and the heartbeat punctuates) every 2000
            // tuples.
            CapPacket::full(i as u64 * 500_000, 0, LinkType::Ethernet, f)
        })
        .collect();
    let mk = |batch: usize| {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.batch_size = batch;
        gs.add_program(
            "DEFINE { query_name raw; } Select time, len From eth0.tcp; \
             DEFINE { query_name persec; } \
             Select time, count(*), sum(len) From raw Group By time",
        )
        .unwrap();
        gs
    };
    let mut g = c.benchmark_group("manager");
    g.throughput(Throughput::Elements(N as u64));
    let gs = mk(256);
    g.bench_function("threaded_throughput", |b| {
        b.iter(|| run_threaded(&gs, pkts.iter().cloned(), &["raw", "persec"]).unwrap())
    });
    // Baseline without self-monitoring, for eyeballing the stats cost
    // (the enforced <=5% gate lives in src/bin/stats_overhead.rs).
    let mut gs_ns = mk(256);
    gs_ns.stats_enabled = false;
    g.bench_function("threaded_nostats", |b| {
        b.iter(|| run_threaded(&gs_ns, pkts.iter().cloned(), &["raw", "persec"]).unwrap())
    });
    let gs1 = mk(1);
    g.bench_function("threaded_per_item", |b| {
        b.iter(|| run_threaded(&gs1, pkts.iter().cloned(), &["raw", "persec"]).unwrap())
    });
    for batch in [8usize, 64, 1024] {
        let gsb = mk(batch);
        g.bench_function(&format!("threaded_batch_{batch}"), |b| {
            b.iter(|| run_threaded(&gsb, pkts.iter().cloned(), &["raw", "persec"]).unwrap())
        });
    }
    // Partition-parallel HFTA execution: the same pipeline with a
    // multi-key aggregate (1024 source addresses, so the hash router
    // actually spreads groups) rewritten into K shard instances plus a
    // reunifying merge. par1 is the mandated no-op baseline; the
    // par4-not-slower gate lives in src/bin/parallel_gate.rs.
    let multi: Vec<CapPacket> = (0..N)
        .map(|i| {
            let f = FrameBuilder::tcp(0x0a000000 + (i % 1024) as u32, 0xc0a80001, 1024, 80)
                .payload(b"x")
                .build_ethernet();
            CapPacket::full(i as u64 * 500_000, 0, LinkType::Ethernet, f)
        })
        .collect();
    let mk_par = |par: usize| {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.batch_size = 256;
        gs.parallelism = par;
        gs.add_program(
            "DEFINE { query_name raw; } Select time, srcIP, len From eth0.tcp; \
             DEFINE { query_name persrc; } \
             Select time, srcIP, count(*), sum(len) From raw Group By time, srcIP",
        )
        .unwrap();
        gs
    };
    for par in [1usize, 4] {
        let gsp = mk_par(par);
        g.bench_function(&format!("threaded_par{par}"), |b| {
            b.iter(|| run_threaded(&gsp, multi.iter().cloned(), &["persrc"]).unwrap())
        });
    }
    // Row-transport reference point for the headline workload: the same
    // pipeline with `Gigascope::columnar` off, so bench.json always
    // carries both the row and the columnar series side by side.
    let mut gs_row = mk(256);
    gs_row.columnar = false;
    g.bench_function("threaded_throughput_row", |b| {
        b.iter(|| run_threaded(&gs_row, pkts.iter().cloned(), &["raw", "persec"]).unwrap())
    });
    // Aggregation-heavy workload for the columnar gate: a four-function
    // multi-key aggregate over bursty sources (each source emits runs of
    // 32 packets, as flows do), so the columnar run-detection loop in
    // the hash-agg has real runs to fold. `threaded_agg` is the columnar
    // series, `threaded_agg_row` the pre-columnar row transport; the
    // enforced >=2x ratio lives in src/bin/columnar_gate.rs.
    let bursty: Vec<CapPacket> = (0..N)
        .map(|i| {
            let f = FrameBuilder::tcp(0x0a00_0000 + ((i / 32) % 256) as u32, 0xc0a8_0001, 1024, 80)
                .payload(b"x")
                .build_ethernet();
            CapPacket::full(i as u64 * 500_000, 0, LinkType::Ethernet, f)
        })
        .collect();
    let mk_agg = |columnar: bool| {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.batch_size = 256;
        gs.columnar = columnar;
        gs.add_program(
            "DEFINE { query_name raw; } Select time, srcIP, len From eth0.tcp; \
             DEFINE { query_name persrc; } \
             Select time, srcIP, count(*), sum(len), min(len), max(len) From raw \
             Group By time, srcIP",
        )
        .unwrap();
        gs
    };
    for (name, columnar) in [("threaded_agg", true), ("threaded_agg_row", false)] {
        let gsa = mk_agg(columnar);
        g.bench_function(name, |b| {
            b.iter(|| run_threaded(&gsa, bursty.iter().cloned(), &["persrc"]).unwrap())
        });
    }
    g.finish();
}

/// Registration scaling of the shared cross-query prefilter (DESIGN
/// §14): N per-port selection queries drawn from a 20-port pool, so the
/// shared pass dedupes them to at most 20 distinct atoms/BPF programs
/// and dispatch cost tracks distinct *signatures*, not registrations.
/// The q1/q10/q100 series is the scaling curve; `q100_unshared` is the
/// same 100 registrations with per-LFTA evaluation, the denominator of
/// the enforced >=5x ratio in `src/bin/prefilter_gate.rs`.
fn bench_prefilter(c: &mut Criterion) {
    use gigascope::Gigascope;
    use gs_netgen::mix::{MixConfig, PacketMix};

    const PORTS: [u16; 20] = [
        80, 443, 53, 25, 8080, 22, 123, 161, 1433, 3306, 5060, 5432, 6379, 8443, 9090, 1024, 2048,
        4096, 3128, 179,
    ];
    let program = |n: usize| -> String {
        (0..n)
            .map(|i| {
                format!(
                    "DEFINE {{ query_name q{i}; }} \
                     Select time, destPort From eth0.tcp Where destPort = {};\n",
                    PORTS[i % PORTS.len()]
                )
            })
            .collect()
    };
    let mk = |n: usize, shared: bool| {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.shared_prefilter = shared;
        gs.add_program(&program(n)).unwrap();
        gs
    };
    let pkts: Vec<CapPacket> =
        PacketMix::new(MixConfig { seed: 7, duration_ms: 160, ..MixConfig::default() }).collect();
    let mut g = c.benchmark_group("prefilter");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    for n in [1usize, 10, 100] {
        let gs = mk(n, true);
        g.bench_function(&format!("registration_scaling_q{n}"), |b| {
            b.iter(|| gs.run_capture(pkts.iter().cloned(), &[]).unwrap())
        });
    }
    let gs = mk(100, false);
    g.bench_function("registration_scaling_q100_unshared", |b| {
        b.iter(|| gs.run_capture(pkts.iter().cloned(), &[]).unwrap())
    });
    g.finish();
}

fn bench_defrag(c: &mut Criterion) {
    let pkts = sample_packets(512);
    let mut g = c.benchmark_group("defrag");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.bench_function("passthrough", |b| {
        b.iter(|| {
            let mut d = Defragmenter::new();
            let mut out = Vec::new();
            for p in &pkts {
                d.push(black_box(p.clone()), &mut out);
                out.clear();
            }
        })
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::new();
    bench_bpf(&mut c);
    bench_packet_parse(&mut c);
    bench_regex(&mut c);
    bench_lpm(&mut c);
    bench_lfta(&mut c);
    bench_aggregation(&mut c);
    bench_expr(&mut c);
    bench_frontend(&mut c);
    bench_merge_join(&mut c);
    bench_manager(&mut c);
    bench_prefilter(&mut c);
    bench_defrag(&mut c);
}
