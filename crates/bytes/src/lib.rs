//! A hermetic, std-only stand-in for the `bytes` crate.
//!
//! The workspace builds offline; every dependency is an in-repo path
//! crate (see the "Hermetic build" section of README.md). This crate
//! provides exactly the [`Bytes`] surface gigascope uses — cheap
//! reference-counted clones, zero-copy `slice`, `Deref<Target = [u8]>` —
//! and nothing else. The packet hot path relies on two invariants that
//! `tests/tests/hermetic.rs` pins down:
//!
//! 1. `clone()` and `slice()` never copy payload bytes (pointer-equal
//!    views into one shared buffer), and
//! 2. `slice(a..b).slice(c..d)` composes offsets exactly like `&s[a..b][c..d]`.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// The backing store: either borrowed static memory (`from_static`) or a
/// shared heap allocation. Both clone in O(1).
#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

/// A cheaply cloneable, contiguous, immutable slice of memory.
///
/// API-compatible with the subset of `bytes::Bytes` used across the
/// workspace: `new`, `from_static`, `copy_from_slice`, `From<Vec<u8>>`,
/// `slice`, and `Deref<Target = [u8]>`.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    #[inline]
    pub const fn new() -> Bytes {
        Bytes { repr: Repr::Static(&[]), off: 0, len: 0 }
    }

    /// A zero-copy view of static memory.
    #[inline]
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { repr: Repr::Static(bytes), off: 0, len: bytes.len() }
    }

    /// Copy `data` into a fresh shared buffer.
    #[inline]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_arc(Arc::from(data))
    }

    /// Number of bytes in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy sub-view; panics (like upstream) when the range is out
    /// of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end, "slice start {start} > end {end}");
        assert!(end <= self.len, "slice end {end} out of bounds (len {})", self.len);
        Bytes { repr: self.repr.clone(), off: self.off + start, len: end - start }
    }

    /// Copy the view into an owned `Vec<u8>`.
    #[inline]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    #[inline]
    fn from_arc(arc: Arc<[u8]>) -> Bytes {
        let len = arc.len();
        Bytes { repr: Repr::Shared(arc), off: 0, len }
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        let base: &[u8] = match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        };
        &base[self.off..self.off + self.len]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Default for Bytes {
    #[inline]
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    #[inline]
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_arc(Arc::from(v))
    }
}

impl From<&'static [u8]> for Bytes {
    #[inline]
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    #[inline]
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    #[inline]
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes::from_arc(Arc::from(b))
    }
}

impl From<String> for Bytes {
    #[inline]
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    #[inline]
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    #[inline]
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    #[inline]
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    #[inline]
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    #[inline]
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    #[inline]
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    #[inline]
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    #[inline]
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            // Match upstream's escape-ASCII rendering closely enough for
            // assert diagnostics.
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        let b = Bytes::from_static(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], b"hello");
    }

    #[test]
    fn slice_forms() {
        let b = Bytes::from(b"0123456789".to_vec());
        assert_eq!(&b.slice(2..5)[..], b"234");
        assert_eq!(&b.slice(..3)[..], b"012");
        assert_eq!(&b.slice(7..)[..], b"789");
        assert_eq!(&b.slice(..)[..], b"0123456789");
        assert_eq!(&b.slice(2..=4)[..], b"234");
    }

    #[test]
    fn nested_slices_compose() {
        let b = Bytes::from(b"abcdefgh".to_vec());
        let s = b.slice(2..7); // cdefg
        assert_eq!(&s.slice(1..3)[..], b"de");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_oob_panics() {
        let _ = Bytes::from_static(b"ab").slice(..3);
    }

    #[test]
    fn clone_is_zero_copy() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b.as_ptr(), c.as_ptr());
        let s = b.slice(1..3);
        assert_eq!(unsafe { b.as_ptr().add(1) }, s.as_ptr());
    }

    #[test]
    fn equality_and_ordering() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert_eq!(a, *b"abc");
        assert!(Bytes::from_static(b"a") < Bytes::from_static(b"b"));
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\x00")), "b\"a\\x00\"");
    }
}
