//! Property tests on the capture-path simulator and the BPF machine.

use bytes::Bytes;
use gs_nic::bpf::{BpfProgram, Insn};
use gs_nic::sim::{BpfNicFilter, CaptureSim, DiscardHost, FixedCostHost};
use gs_nic::CostModel;
use gs_packet::capture::{CapPacket, LinkType};
use proptest::prelude::*;

fn arrivals(gaps: Vec<u32>, sizes: Vec<u16>) -> Vec<CapPacket> {
    let mut t = 0u64;
    gaps.into_iter()
        .zip(sizes)
        .map(|(g, s)| {
            t += u64::from(g);
            CapPacket::full(
                t,
                0,
                LinkType::RawIp,
                Bytes::from(vec![0u8; usize::from(s.max(20))]),
            )
        })
        .collect()
}

/// Arbitrary (possibly invalid) instructions for verifier fuzzing.
fn arb_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        any::<u32>().prop_map(Insn::LdB),
        any::<u32>().prop_map(Insn::LdH),
        any::<u32>().prop_map(Insn::LdW),
        any::<u32>().prop_map(Insn::LdImm),
        any::<u32>().prop_map(Insn::LdxImm),
        any::<u32>().prop_map(Insn::LdxMshB),
        any::<u32>().prop_map(Insn::LdIndB),
        Just(Insn::Tax),
        Just(Insn::Txa),
        any::<u32>().prop_map(Insn::Add),
        any::<u32>().prop_map(Insn::And),
        (0u32..16).prop_map(Insn::Lsh),
        (any::<u32>(), 0u8..8, 0u8..8).prop_map(|(k, jt, jf)| Insn::Jeq(k, jt, jf)),
        (any::<u32>(), 0u8..8, 0u8..8).prop_map(|(k, jt, jf)| Insn::Jgt(k, jt, jf)),
        (0u32..8).prop_map(Insn::Ja),
        any::<u32>().prop_map(Insn::RetImm),
        Just(Insn::RetA),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sim_accounting_identity(
        gaps in proptest::collection::vec(1_000u32..40_000, 1..400),
        sizes in proptest::collection::vec(64u16..1500, 1..400),
        host_cost in 0u64..30_000,
        use_nic in any::<bool>(),
    ) {
        let n = gaps.len().min(sizes.len());
        let pkts = arrivals(gaps[..n].to_vec(), sizes[..n].to_vec());
        let sim = CaptureSim::default();
        let mut host = FixedCostHost(host_cost);
        let mut nic = BpfNicFilter::new(gs_nic::bpf::accept_all(u32::MAX));
        let r = sim.run(
            pkts.into_iter(),
            use_nic.then_some(&mut nic as &mut dyn gs_nic::sim::NicAction),
            &mut host,
        );
        prop_assert_eq!(
            r.offered,
            r.nic_dropped + r.nic_filtered + r.ring_dropped + r.host_processed,
            "every packet must be accounted exactly once"
        );
        prop_assert!(r.loss_rate() >= 0.0 && r.loss_rate() <= 1.0);
    }

    #[test]
    fn sim_loss_monotone_in_host_cost(
        gaps in proptest::collection::vec(2_000u32..20_000, 50..200),
        sizes in proptest::collection::vec(64u16..1500, 50..200),
    ) {
        let n = gaps.len().min(sizes.len());
        let sim = CaptureSim::default();
        let mut cheap = FixedCostHost(0);
        let mut costly = FixedCostHost(50_000);
        let l0 = sim
            .run(arrivals(gaps[..n].to_vec(), sizes[..n].to_vec()).into_iter(), None, &mut cheap)
            .loss_rate();
        let l1 = sim
            .run(arrivals(gaps[..n].to_vec(), sizes[..n].to_vec()).into_iter(), None, &mut costly)
            .loss_rate();
        prop_assert!(l1 >= l0, "more host work cannot reduce loss ({l0} vs {l1})");
    }

    #[test]
    fn zero_loss_below_capacity(
        sizes in proptest::collection::vec(64u16..1500, 1..300),
    ) {
        // 100 µs gaps = 10 kpkt/s, far below every capacity in the model.
        let gaps = vec![100_000u32; sizes.len()];
        let sim = CaptureSim::default();
        let mut host = DiscardHost::default();
        let r = sim.run(arrivals(gaps, sizes).into_iter(), None, &mut host);
        prop_assert_eq!(r.loss_rate(), 0.0);
        prop_assert_eq!(r.host_processed, r.offered);
    }

    #[test]
    fn verifier_accepts_only_safe_programs(
        insns in proptest::collection::vec(arb_insn(), 0..24),
        pkt in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // Whatever the verifier accepts must run without panicking and
        // terminate (the interpreter has a defensive step bound; reaching
        // it would return 0 rather than loop).
        if let Ok(prog) = BpfProgram::new(insns) {
            let _ = prog.run(&pkt);
        }
    }

    #[test]
    fn snap_never_increases_loss(
        gaps in proptest::collection::vec(3_000u32..15_000, 50..200),
    ) {
        let sizes = vec![1500u16; gaps.len()];
        let sim = CaptureSim::default();
        let mut full_nic = BpfNicFilter::new(gs_nic::bpf::accept_all(u32::MAX));
        let mut snap_nic = BpfNicFilter::new(gs_nic::bpf::accept_all(96));
        let mut h1 = DiscardHost::default();
        let mut h2 = DiscardHost::default();
        let l_full = sim
            .run(arrivals(gaps.clone(), sizes.clone()).into_iter(), Some(&mut full_nic), &mut h1)
            .loss_rate();
        let l_snap = sim
            .run(arrivals(gaps, sizes).into_iter(), Some(&mut snap_nic), &mut h2)
            .loss_rate();
        prop_assert!(l_snap <= l_full + 1e-9, "snapping reduces copy cost ({l_snap} vs {l_full})");
    }

    #[test]
    fn cost_model_copy_monotone(a in 0usize..4096, b in 0usize..4096) {
        let m = CostModel::default();
        if a <= b {
            prop_assert!(m.host_copy_ns(a) <= m.host_copy_ns(b));
        }
    }
}
