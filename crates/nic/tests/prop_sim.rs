//! Property tests on the capture-path simulator and the BPF machine.
//!
//! Runs on the in-repo deterministic harness ([`gs_tests::prop`]); the
//! property assertions are unchanged from the original proptest suite.

use bytes::Bytes;
use gs_nic::bpf::{BpfProgram, Insn};
use gs_nic::sim::{BpfNicFilter, CaptureSim, DiscardHost, FixedCostHost};
use gs_nic::CostModel;
use gs_packet::capture::{CapPacket, LinkType};
use gs_tests::prop::{check, Gen, DEFAULT_CASES};

fn arrivals(gaps: Vec<u32>, sizes: Vec<u16>) -> Vec<CapPacket> {
    let mut t = 0u64;
    gaps.into_iter()
        .zip(sizes)
        .map(|(g, s)| {
            t += u64::from(g);
            CapPacket::full(
                t,
                0,
                LinkType::RawIp,
                Bytes::from(vec![0u8; usize::from(s.max(20))]),
            )
        })
        .collect()
}

/// Arbitrary (possibly invalid) instructions for verifier fuzzing.
fn arb_insn(g: &mut Gen) -> Insn {
    match g.usize(0..17) {
        0 => Insn::LdB(g.any()),
        1 => Insn::LdH(g.any()),
        2 => Insn::LdW(g.any()),
        3 => Insn::LdImm(g.any()),
        4 => Insn::LdxImm(g.any()),
        5 => Insn::LdxMshB(g.any()),
        6 => Insn::LdIndB(g.any()),
        7 => Insn::Tax,
        8 => Insn::Txa,
        9 => Insn::Add(g.any()),
        10 => Insn::And(g.any()),
        11 => Insn::Lsh(g.u32(0..16)),
        12 => Insn::Jeq(g.any(), g.u8(0..8), g.u8(0..8)),
        13 => Insn::Jgt(g.any(), g.u8(0..8), g.u8(0..8)),
        14 => Insn::Ja(g.u32(0..8)),
        15 => Insn::RetImm(g.any()),
        _ => Insn::RetA,
    }
}

#[test]
fn sim_accounting_identity() {
    check("sim_accounting_identity", DEFAULT_CASES, |g| {
        let gaps = g.vec_with(1..400, |g| g.u32(1_000..40_000));
        let sizes = g.vec_with(1..400, |g| g.u16(64..1500));
        let host_cost = g.u64(0..30_000);
        let use_nic: bool = g.bool();
        let n = gaps.len().min(sizes.len());
        let pkts = arrivals(gaps[..n].to_vec(), sizes[..n].to_vec());
        let sim = CaptureSim::default();
        let mut host = FixedCostHost(host_cost);
        let mut nic = BpfNicFilter::new(gs_nic::bpf::accept_all(u32::MAX));
        let r = sim.run(
            pkts.into_iter(),
            use_nic.then_some(&mut nic as &mut dyn gs_nic::sim::NicAction),
            &mut host,
        );
        assert_eq!(
            r.offered,
            r.nic_dropped + r.nic_filtered + r.ring_dropped + r.host_processed,
            "every packet must be accounted exactly once"
        );
        assert!(r.loss_rate() >= 0.0 && r.loss_rate() <= 1.0);
    });
}

#[test]
fn sim_loss_monotone_in_host_cost() {
    check("sim_loss_monotone_in_host_cost", DEFAULT_CASES, |g| {
        let gaps = g.vec_with(50..200, |g| g.u32(2_000..20_000));
        let sizes = g.vec_with(50..200, |g| g.u16(64..1500));
        let n = gaps.len().min(sizes.len());
        let sim = CaptureSim::default();
        let mut cheap = FixedCostHost(0);
        let mut costly = FixedCostHost(50_000);
        let l0 = sim
            .run(arrivals(gaps[..n].to_vec(), sizes[..n].to_vec()).into_iter(), None, &mut cheap)
            .loss_rate();
        let l1 = sim
            .run(arrivals(gaps[..n].to_vec(), sizes[..n].to_vec()).into_iter(), None, &mut costly)
            .loss_rate();
        assert!(l1 >= l0, "more host work cannot reduce loss ({l0} vs {l1})");
    });
}

#[test]
fn zero_loss_below_capacity() {
    check("zero_loss_below_capacity", DEFAULT_CASES, |g| {
        let sizes = g.vec_with(1..300, |g| g.u16(64..1500));
        // 100 µs gaps = 10 kpkt/s, far below every capacity in the model.
        let gaps = vec![100_000u32; sizes.len()];
        let sim = CaptureSim::default();
        let mut host = DiscardHost::default();
        let r = sim.run(arrivals(gaps, sizes).into_iter(), None, &mut host);
        assert_eq!(r.loss_rate(), 0.0);
        assert_eq!(r.host_processed, r.offered);
    });
}

#[test]
fn verifier_accepts_only_safe_programs() {
    check("verifier_accepts_only_safe_programs", DEFAULT_CASES, |g| {
        let insns = g.vec_with(0..24, arb_insn);
        let pkt = g.bytes(0..64);
        // Whatever the verifier accepts must run without panicking and
        // terminate (the interpreter has a defensive step bound; reaching
        // it would return 0 rather than loop).
        if let Ok(prog) = BpfProgram::new(insns) {
            let _ = prog.run(&pkt);
        }
    });
}

#[test]
fn snap_never_increases_loss() {
    check("snap_never_increases_loss", DEFAULT_CASES, |g| {
        let gaps = g.vec_with(50..200, |g| g.u32(3_000..15_000));
        let sizes = vec![1500u16; gaps.len()];
        let sim = CaptureSim::default();
        let mut full_nic = BpfNicFilter::new(gs_nic::bpf::accept_all(u32::MAX));
        let mut snap_nic = BpfNicFilter::new(gs_nic::bpf::accept_all(96));
        let mut h1 = DiscardHost::default();
        let mut h2 = DiscardHost::default();
        let l_full = sim
            .run(arrivals(gaps.clone(), sizes.clone()).into_iter(), Some(&mut full_nic), &mut h1)
            .loss_rate();
        let l_snap = sim
            .run(arrivals(gaps, sizes).into_iter(), Some(&mut snap_nic), &mut h2)
            .loss_rate();
        assert!(l_snap <= l_full + 1e-9, "snapping reduces copy cost ({l_snap} vs {l_full})");
    });
}

#[test]
fn cost_model_copy_monotone() {
    check("cost_model_copy_monotone", DEFAULT_CASES, |g| {
        let a = g.usize(0..4096);
        let b = g.usize(0..4096);
        let m = CostModel::default();
        if a <= b {
            assert!(m.host_copy_ns(a) <= m.host_copy_ns(b));
        }
    });
}
