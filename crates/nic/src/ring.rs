//! The RX ring: a fixed-capacity FIFO between the interrupt path and the
//! host service loop. When the ring is full an arriving packet is dropped
//! and counted — the quantity the whole §4 experiment measures.

use std::collections::VecDeque;

/// A bounded FIFO with drop accounting.
#[derive(Debug)]
pub struct RxRing<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
    accepted: u64,
    high_water: usize,
}

impl<T> RxRing<T> {
    /// Create a ring holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> RxRing<T> {
        assert!(capacity > 0, "ring capacity must be positive");
        RxRing {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            accepted: 0,
            high_water: 0,
        }
    }

    /// Offer an entry; returns `true` if enqueued, `false` if dropped.
    pub fn offer(&mut self, item: T) -> bool {
        if self.buf.len() >= self.capacity {
            self.dropped += 1;
            false
        } else {
            self.buf.push_back(item);
            self.accepted += 1;
            self.high_water = self.high_water.max(self.buf.len());
            true
        }
    }

    /// Dequeue the oldest entry.
    pub fn pop(&mut self) -> Option<T> {
        self.buf.pop_front()
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the next offer would drop.
    pub fn is_full(&self) -> bool {
        self.buf.len() >= self.capacity
    }

    /// Total entries dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total entries successfully enqueued.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Maximum occupancy observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = RxRing::new(4);
        for i in 0..4 {
            assert!(r.offer(i));
        }
        assert_eq!(r.pop(), Some(0));
        assert_eq!(r.pop(), Some(1));
        assert!(r.offer(4));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(4));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn drops_when_full() {
        let mut r = RxRing::new(2);
        assert!(r.offer(1));
        assert!(r.offer(2));
        assert!(r.is_full());
        assert!(!r.offer(3));
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.accepted(), 2);
        r.pop();
        assert!(r.offer(3));
        assert_eq!(r.accepted(), 3);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut r = RxRing::new(8);
        for i in 0..5 {
            r.offer(i);
        }
        for _ in 0..5 {
            r.pop();
        }
        r.offer(9);
        assert_eq!(r.high_water(), 5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = RxRing::<u8>::new(0);
    }
}
