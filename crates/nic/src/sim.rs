//! The discrete-event capture-path simulator.
//!
//! Models one monitoring host receiving a timestamped arrival stream:
//!
//! ```text
//!   arrivals ──▶ [NIC stage: optional BPF/LFTA offload] ──▶ interrupt
//!                  │ (drop: filtered or NIC saturated)        │
//!                  ▼                                          ▼
//!               NIC drop                           [RX ring] ──▶ host
//!                                                    │ (full: drop)
//!                                                    ▼
//!                                              host service loop
//! ```
//!
//! Virtual time advances with the arrival stream. Each arrival charges the
//! host an interrupt cost *before* any service work — interrupts preempt
//! the service loop, so when the arrival rate times the interrupt cost
//! approaches 1 the host performs no service at all and the ring overflows:
//! receive livelock, exactly the failure mode the paper observed at the
//! libpcap limit ("At this point the system experienced interrupt
//! livelock").
//!
//! The host action runs *real* code per packet (e.g. an actual compiled
//! LFTA) and returns the additional virtual cost to charge, so simulated
//! experiments produce genuine query answers and calibrated timings at
//! once.

use crate::cost::CostModel;
use crate::ring::RxRing;
use gs_packet::CapPacket;

/// NIC-stage decision for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NicVerdict {
    /// Filtered out on the NIC; never reaches the host.
    Filtered,
    /// Deliver to the host, optionally truncated to a snap length.
    Pass {
        /// Truncate the captured bytes to this length if set.
        snaplen: Option<usize>,
    },
}

/// Packet processing performed on the NIC (firmware BPF filter or an
/// offloaded LFTA). The simulator charges [`CostModel::nic_per_pkt_ns`]
/// per handled packet.
pub trait NicAction {
    /// Inspect a packet and decide its fate.
    fn handle(&mut self, pkt: &CapPacket) -> NicVerdict;
}

/// Packet processing performed on the host after the ring. Implementations
/// do real work (count, run an LFTA, "write" to disk) and return the extra
/// virtual cost in nanoseconds beyond the interrupt + copy charges.
pub trait HostAction {
    /// Process one packet; returns additional virtual service cost (ns).
    fn handle(&mut self, pkt: &CapPacket) -> u64;
}

/// Host action that reads and discards — the paper's option 2 ("reading
/// data from the ethernet card using libpcap, then discarding the packet
/// (best case processing)").
#[derive(Debug, Default)]
pub struct DiscardHost {
    /// Packets seen.
    pub count: u64,
}

impl HostAction for DiscardHost {
    fn handle(&mut self, _pkt: &CapPacket) -> u64 {
        self.count += 1;
        0
    }
}

/// Host action with a fixed extra cost per packet; useful in tests and
/// calibration sweeps.
#[derive(Debug)]
pub struct FixedCostHost(
    /// Extra virtual cost charged per packet, nanoseconds.
    pub u64,
);

impl HostAction for FixedCostHost {
    fn handle(&mut self, _pkt: &CapPacket) -> u64 {
        self.0
    }
}

/// NIC action applying a verified BPF program: reject on 0, otherwise snap
/// to the returned length.
#[derive(Debug)]
pub struct BpfNicFilter {
    prog: crate::bpf::BpfProgram,
    /// Packets the filter rejected.
    pub rejected: u64,
}

impl BpfNicFilter {
    /// Wrap a program as a NIC action.
    pub fn new(prog: crate::bpf::BpfProgram) -> BpfNicFilter {
        BpfNicFilter { prog, rejected: 0 }
    }
}

impl NicAction for BpfNicFilter {
    fn handle(&mut self, pkt: &CapPacket) -> NicVerdict {
        match self.prog.run(&pkt.data) {
            0 => {
                self.rejected += 1;
                NicVerdict::Filtered
            }
            u32::MAX => NicVerdict::Pass { snaplen: None },
            snap => NicVerdict::Pass { snaplen: Some(snap as usize) },
        }
    }
}

/// Outcome counters of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Packets offered on the wire.
    pub offered: u64,
    /// Wire bytes offered.
    pub offered_bytes: u64,
    /// Packets dropped because the NIC stage was saturated.
    pub nic_dropped: u64,
    /// Packets intentionally filtered by the NIC stage (not a loss).
    pub nic_filtered: u64,
    /// Packets dropped because the RX ring was full.
    pub ring_dropped: u64,
    /// Packets the host service loop processed.
    pub host_processed: u64,
    /// Peak ring occupancy.
    pub ring_high_water: usize,
    /// Virtual time at which the last packet finished service.
    pub end_ns: u64,
}

impl SimReport {
    /// Fraction of offered packets lost (NIC saturation + ring overflow).
    /// Intentional NIC filtering is data reduction, not loss.
    pub fn loss_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.nic_dropped + self.ring_dropped) as f64 / self.offered as f64
        }
    }
}

/// Configuration of a capture simulation.
pub struct CaptureSim {
    /// Cost constants.
    pub costs: CostModel,
    /// RX ring capacity in packets (256 descriptors was typical for the
    /// era's gigabit NICs).
    pub ring_capacity: usize,
    /// Bound on NIC-stage backlog (ns of work queued) before the NIC drops;
    /// models the small on-card buffer.
    pub nic_queue_ns: u64,
}

impl Default for CaptureSim {
    fn default() -> CaptureSim {
        CaptureSim { costs: CostModel::default(), ring_capacity: 256, nic_queue_ns: 1_000_000 }
    }
}

impl CaptureSim {
    /// Run the simulation over `arrivals` (must be timestamp-ordered).
    ///
    /// `nic` is the optional NIC offload stage; `host` is the per-packet
    /// host work. Returns drop accounting and timing.
    pub fn run<I>(
        &self,
        arrivals: I,
        mut nic: Option<&mut dyn NicAction>,
        host: &mut dyn HostAction,
    ) -> SimReport
    where
        I: Iterator<Item = CapPacket>,
    {
        let mut ring: RxRing<CapPacket> = RxRing::new(self.ring_capacity);
        let mut report = SimReport::default();
        let mut nic_busy_ns: u64 = 0;

        // The host is a preempt-resume priority server: interrupt work
        // always runs before service work. Between consecutive arrivals it
        // first pays down outstanding interrupt debt, then spends whatever
        // time remains servicing ring entries. When the offered interrupt
        // load alone reaches 1, no service time remains — livelock.
        let mut prev_t: u64 = 0;
        let mut intr_debt_ns: u64 = 0; // unpaid interrupt work
        let mut svc_rem_ns: u64 = 0; // remaining work on the in-flight packet
        let mut in_flight = false; // whether svc_rem refers to a popped packet

        for pkt in arrivals {
            let t = pkt.ts_ns.max(prev_t);
            report.offered += 1;
            report.offered_bytes += u64::from(pkt.wire_len);

            // ---- Advance the host through (prev_t, t] ----
            let mut dt = t - prev_t;
            prev_t = t;
            let paid = dt.min(intr_debt_ns);
            intr_debt_ns -= paid;
            dt -= paid;
            while dt > 0 {
                if !in_flight {
                    let Some(queued) = ring.pop() else { break };
                    svc_rem_ns = self.costs.host_copy_ns(queued.data.len()) + host.handle(&queued);
                    in_flight = true;
                }
                let spent = dt.min(svc_rem_ns);
                svc_rem_ns -= spent;
                dt -= spent;
                if svc_rem_ns == 0 {
                    in_flight = false;
                    report.host_processed += 1;
                }
            }

            // ---- NIC stage ----
            let delivered = if let Some(nic) = nic.as_deref_mut() {
                let start = nic_busy_ns.max(t);
                if start - t > self.nic_queue_ns {
                    // The firmware cannot keep up; the on-card buffer is
                    // exhausted and the packet is lost before filtering.
                    report.nic_dropped += 1;
                    continue;
                }
                nic_busy_ns = start + self.costs.nic_per_pkt_ns;
                match nic.handle(&pkt) {
                    NicVerdict::Filtered => {
                        report.nic_filtered += 1;
                        continue;
                    }
                    NicVerdict::Pass { snaplen } => {
                        nic_busy_ns += self.costs.nic_to_host_ns;
                        match snaplen {
                            Some(s) => pkt.snap(s),
                            None => pkt,
                        }
                    }
                }
            } else {
                pkt
            };

            // ---- Interrupt: preempts service, charged unconditionally ----
            intr_debt_ns += self.costs.host_intr_ns;

            // ---- Ring admission ----
            if !ring.offer(delivered) {
                report.ring_dropped += 1;
            }
        }

        // Stream over: the host drains the remainder at leisure.
        let mut end_ns = prev_t + intr_debt_ns + svc_rem_ns;
        if in_flight {
            // Finish the packet whose service the stream's end interrupted.
            report.host_processed += 1;
        }
        while let Some(queued) = ring.pop() {
            let svc = self.costs.host_copy_ns(queued.data.len()) + host.handle(&queued);
            end_ns += svc;
            report.host_processed += 1;
        }

        report.ring_high_water = ring.high_water();
        report.ring_dropped = ring.dropped();
        report.end_ns = end_ns.max(nic_busy_ns);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use gs_packet::capture::LinkType;

    /// `n` packets of `size` bytes at fixed `gap_ns` spacing.
    fn arrivals(n: u64, size: usize, gap_ns: u64) -> impl Iterator<Item = CapPacket> {
        (0..n).map(move |i| {
            CapPacket::full(i * gap_ns, 0, LinkType::RawIp, Bytes::from(vec![0u8; size]))
        })
    }

    #[test]
    fn low_rate_is_lossless() {
        let sim = CaptureSim::default();
        // 10 kpkt/s of 551 B: far below capacity.
        let mut host = DiscardHost::default();
        let r = sim.run(arrivals(10_000, 551, 100_000), None, &mut host);
        assert_eq!(r.loss_rate(), 0.0);
        assert_eq!(r.host_processed, 10_000);
        assert_eq!(host.count, 10_000);
    }

    #[test]
    fn overload_drops_roughly_excess() {
        let sim = CaptureSim::default();
        // At a 7.5 µs gap the 6 µs interrupt eats 80% of the host; the
        // 1.5 µs left per arrival covers half of the ~3 µs copy cost, so
        // roughly half the packets should drop.
        let mut host = DiscardHost::default();
        let r = sim.run(arrivals(200_000, 551, 7_500), None, &mut host);
        let loss = r.loss_rate();
        assert!((0.35..0.65).contains(&loss), "loss {loss}");
        assert_eq!(r.offered, r.host_processed + r.ring_dropped);
    }

    #[test]
    fn livelock_at_extreme_rate() {
        let sim = CaptureSim::default();
        // Gap below the interrupt cost: the host does nothing but take
        // interrupts. Once the ring fills, *everything* drops.
        let mut host = DiscardHost::default();
        let r = sim.run(arrivals(100_000, 551, 3_000), None, &mut host);
        // Only the initial ring fill (plus the final drain) is processed.
        assert!(r.host_processed <= sim.ring_capacity as u64 + 1);
        assert!(r.loss_rate() > 0.99 - sim.ring_capacity as f64 / 100_000.0);
    }

    #[test]
    fn nic_filter_reduces_host_load() {
        let sim = CaptureSim::default();
        // All packets are bare IP, so the port-80 Ethernet filter rejects
        // them on the NIC: the host sees nothing even at a hostile rate.
        let mut nic = BpfNicFilter::new(crate::bpf::tcp_dst_port_filter(80));
        let mut host = DiscardHost::default();
        let r = sim.run(arrivals(100_000, 551, 2_000), Some(&mut nic), &mut host);
        assert_eq!(r.nic_filtered, 100_000);
        assert_eq!(r.host_processed, 0);
        assert_eq!(r.loss_rate(), 0.0, "filtering is not loss");
    }

    #[test]
    fn nic_saturates_when_gap_below_firmware_cost() {
        let sim = CaptureSim::default();
        let mut nic = BpfNicFilter::new(crate::bpf::accept_all(u32::MAX));
        let mut host = DiscardHost::default();
        // Gap 600 ns < 1200 ns firmware cost: NIC backlog grows until the
        // queue bound trips, then the NIC drops.
        let r = sim.run(arrivals(50_000, 551, 600), Some(&mut nic), &mut host);
        assert!(r.nic_dropped > 0);
    }

    #[test]
    fn snaplen_cuts_host_copy_cost() {
        let sim = CaptureSim::default();
        // Accept-all with a 96-byte snap: the host copy cost per packet
        // falls, raising capacity. Compare processed counts at a rate that
        // overloads the unsnapped path.
        let gap = 8_200; // just below the full-size capacity
        let mut full_nic = BpfNicFilter::new(crate::bpf::accept_all(u32::MAX));
        let mut snap_nic = BpfNicFilter::new(crate::bpf::accept_all(96));
        let mut h1 = DiscardHost::default();
        let mut h2 = DiscardHost::default();
        let r_full = sim.run(arrivals(100_000, 1500, gap), Some(&mut full_nic), &mut h1);
        let r_snap = sim.run(arrivals(100_000, 1500, gap), Some(&mut snap_nic), &mut h2);
        assert!(
            r_snap.loss_rate() < r_full.loss_rate(),
            "snap {} vs full {}",
            r_snap.loss_rate(),
            r_full.loss_rate()
        );
    }

    #[test]
    fn extra_host_cost_lowers_capacity() {
        let sim = CaptureSim::default();
        let gap = 9_200;
        let mut cheap = DiscardHost::default();
        let r_cheap = sim.run(arrivals(100_000, 551, gap), None, &mut cheap);
        let mut expensive = FixedCostHost(20_000);
        let r_exp = sim.run(arrivals(100_000, 551, gap), None, &mut expensive);
        assert!(r_exp.loss_rate() > r_cheap.loss_rate() + 0.1);
    }

    #[test]
    fn accounting_identity_holds() {
        let sim = CaptureSim::default();
        let mut nic = BpfNicFilter::new(crate::bpf::accept_all(u32::MAX));
        let mut host = DiscardHost::default();
        let r = sim.run(arrivals(60_000, 551, 5_000), Some(&mut nic), &mut host);
        assert_eq!(
            r.offered,
            r.nic_dropped + r.nic_filtered + r.ring_dropped + r.host_processed
        );
    }
}
