//! Functional (untimed) capture-path combinators for the real runtime.
//!
//! When Gigascope runs for real (not under the discrete-event model), the
//! NIC pushdown still has a *semantic* effect: a BPF prefilter removes
//! packets before interpretation and a snap length truncates what is
//! captured. [`CapturePath`] applies both to any packet stream; the engine
//! builds one per `Interface.Protocol` binding.

use crate::bpf::BpfProgram;
use gs_packet::CapPacket;

/// A named capture point: packets flow through an optional BPF prefilter
/// and snap-length truncation, mirroring what the paper pushes into NICs.
pub struct CapturePath<I> {
    inner: I,
    filter: Option<BpfProgram>,
    snaplen: Option<usize>,
    seen: u64,
    passed: u64,
}

impl<I: Iterator<Item = CapPacket>> CapturePath<I> {
    /// Wrap a raw packet stream with no filtering.
    pub fn new(inner: I) -> CapturePath<I> {
        CapturePath { inner, filter: None, snaplen: None, seen: 0, passed: 0 }
    }

    /// Install a BPF prefilter ("specify a bpf preliminary filter").
    pub fn with_filter(mut self, prog: BpfProgram) -> Self {
        self.filter = Some(prog);
        self
    }

    /// Install a snap length ("the number of bytes of qualifying packets
    /// to be returned").
    pub fn with_snaplen(mut self, snaplen: usize) -> Self {
        self.snaplen = Some(snaplen);
        self
    }

    /// Install the merged cross-query prefilter: the union of every
    /// registered query's program, so the capture point keeps a packet iff
    /// at least one query could still want it. When the union cannot be
    /// built (see [`BpfProgram::union`]) no filter is installed — the
    /// capture point then passes everything, which is always safe.
    pub fn with_filter_union(self, members: &[&BpfProgram]) -> Self {
        match BpfProgram::union(members, u32::MAX) {
            Some(u) => self.with_filter(u),
            None => self,
        }
    }

    /// Packets seen on the wire so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Packets that passed the prefilter so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }
}

impl<I: Iterator<Item = CapPacket>> Iterator for CapturePath<I> {
    type Item = CapPacket;

    fn next(&mut self) -> Option<CapPacket> {
        loop {
            let pkt = self.inner.next()?;
            self.seen += 1;
            if let Some(f) = &self.filter {
                if !f.accepts(&pkt.data) {
                    continue;
                }
            }
            self.passed += 1;
            return Some(match self.snaplen {
                Some(s) => pkt.snap(s),
                None => pkt,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpf::tcp_dst_port_filter;
    use gs_packet::builder::FrameBuilder;
    use gs_packet::capture::LinkType;

    fn pkts() -> Vec<CapPacket> {
        let mut v = Vec::new();
        for i in 0..10u64 {
            let port = if i % 2 == 0 { 80 } else { 25 };
            let frame = FrameBuilder::tcp(1, 2, 999, port).payload(&[0u8; 200]).build_ethernet();
            v.push(CapPacket::full(i, 0, LinkType::Ethernet, frame));
        }
        v
    }

    #[test]
    fn filter_and_snap_apply() {
        let path = CapturePath::new(pkts().into_iter())
            .with_filter(tcp_dst_port_filter(80))
            .with_snaplen(60);
        let out: Vec<_> = path.collect();
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|p| p.data.len() == 60));
        assert!(out.iter().all(|p| p.wire_len == 254));
    }

    #[test]
    fn counters_track() {
        let mut path = CapturePath::new(pkts().into_iter()).with_filter(tcp_dst_port_filter(80));
        let n = path.by_ref().count();
        assert_eq!(n, 5);
        assert_eq!(path.seen(), 10);
        assert_eq!(path.passed(), 5);
    }

    #[test]
    fn filter_union_passes_any_member_match() {
        let f80 = tcp_dst_port_filter(80);
        let f25 = tcp_dst_port_filter(25);
        let path = CapturePath::new(pkts().into_iter()).with_filter_union(&[&f80, &f25]);
        // Every test packet is port 80 or 25, so the union keeps all of them.
        assert_eq!(path.count(), 10);
        let f53 = tcp_dst_port_filter(53);
        let path = CapturePath::new(pkts().into_iter()).with_filter_union(&[&f80, &f53]);
        assert_eq!(path.count(), 5);
    }

    #[test]
    fn no_filter_passes_everything() {
        let out: Vec<_> = CapturePath::new(pkts().into_iter()).collect();
        assert_eq!(out.len(), 10);
    }
}
