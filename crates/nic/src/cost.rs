//! The calibrated per-packet cost model.
//!
//! These constants stand in for the paper's 733 MHz host, Tigon NIC
//! firmware, and striped disk array. They were chosen so that the four §4
//! configurations cross the 2 % loss threshold near the paper's reported
//! rates (≈180 / 480 / 480 / 610 Mbit/s at the trimodal packet mix); see
//! DESIGN.md §3 and EXPERIMENTS.md E1 for the calibration argument. The
//! *shape* of the results — disk ≪ pcap ≈ host-LFTA < NIC-LFTA, receive
//! livelock at saturation — comes from the model structure, not from the
//! constants.

/// Per-packet virtual-time costs, in nanoseconds unless stated.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost charged to the host per received-packet interrupt. Interrupts
    /// preempt service work; at high packet rates this term alone can
    /// exceed the inter-arrival gap — receive livelock.
    pub host_intr_ns: u64,
    /// Fixed host cost to claim a packet from the ring (syscall/bookkeeping).
    pub host_copy_base_ns: u64,
    /// Host copy cost per captured byte (snap length reduces this).
    pub host_copy_per_byte_ns: f64,
    /// Host cost to evaluate one LFTA against a packet (filter + a couple
    /// of field interpretations + hash probe).
    pub host_lfta_eval_ns: u64,
    /// NIC firmware cost per packet when the NIC runs a BPF filter or an
    /// LFTA (the Tigon path). The NIC is far simpler than the host but
    /// does no interrupt handling and touches no host memory.
    pub nic_per_pkt_ns: u64,
    /// Cost to hand one qualifying packet/tuple from the NIC to the host
    /// (DMA + interrupt on the host side is charged separately).
    pub nic_to_host_ns: u64,
    /// Disk write cost per byte (sequential striped-array throughput).
    pub disk_per_byte_ns: f64,
    /// Length of a periodic disk stall (flush/seek).
    pub disk_stall_ns: u64,
    /// A stall occurs every this many bytes written.
    pub disk_stall_every_bytes: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            // 6 µs interrupt + ~3 µs copy at the 551 B mean packet gives a
            // host capture capacity of ~110 kpkt/s ≈ 480 Mbit/s.
            host_intr_ns: 6_000,
            host_copy_base_ns: 2_000,
            host_copy_per_byte_ns: 1.8,
            // The generated LFTA evaluation is deliberately cheap — that is
            // the point of the split. ~0.8 µs keeps host-LFTA within a few
            // percent of raw pcap, as the paper reports.
            host_lfta_eval_ns: 800,
            // Tigon firmware: ~1.2 µs/packet -> ~830 kpkt/s of filtering
            // capacity, comfortably above the router's 610 Mbit/s limit.
            nic_per_pkt_ns: 1_200,
            nic_to_host_ns: 500,
            // ~20 ns/B ≈ 50 MB/s sequential, plus a 5 ms stall per MiB:
            // together ≈ 180 Mbit/s of sustained dump bandwidth with long
            // unpredictable delays that overflow the ring in bursts.
            disk_per_byte_ns: 20.0,
            disk_stall_ns: 5_000_000,
            disk_stall_every_bytes: 1 << 20,
        }
    }
}

impl CostModel {
    /// Host cost to copy a packet of `caplen` captured bytes out of the ring.
    #[inline]
    pub fn host_copy_ns(&self, caplen: usize) -> u64 {
        self.host_copy_base_ns + (self.host_copy_per_byte_ns * caplen as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_cost_scales_with_caplen() {
        let m = CostModel::default();
        assert!(m.host_copy_ns(1500) > m.host_copy_ns(96));
        assert_eq!(m.host_copy_ns(0), m.host_copy_base_ns);
    }

    #[test]
    fn default_capacity_near_480mbit() {
        // Sanity-check the calibration arithmetic at the trimodal mean.
        let m = CostModel::default();
        let mean_pkt = 551.0f64;
        let per_pkt_ns = (m.host_intr_ns + m.host_copy_base_ns) as f64
            + m.host_copy_per_byte_ns * mean_pkt;
        let pkts_per_sec = 1e9 / per_pkt_ns;
        let mbps = pkts_per_sec * mean_pkt * 8.0 / 1e6;
        assert!((430.0..530.0).contains(&mbps), "calibrated capacity {mbps} Mbit/s");
    }
}
