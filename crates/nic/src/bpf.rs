//! A classic-BPF-style packet filter machine.
//!
//! The paper (§3): "Other NICs allow us to specify a bpf (berkeley packet
//! filter) preliminary filter, and to specify the number of bytes of
//! qualifying packets (the snap length) to be returned (that is, we can
//! push a simple selection/projection operator into the NIC)."
//!
//! This module defines the instruction set, a verifier enforcing the
//! classic safety rules (forward-only jumps, in-bounds targets, terminating
//! programs), and an interpreter over raw frame bytes. The GSQL optimizer
//! compiles pushable predicates to these programs (`gs-gsql::pushdown`).

use std::fmt;

/// Maximum instructions a program may contain (classic BPF limit).
pub const MAX_INSNS: usize = 4096;

/// One filter instruction. `A` is the accumulator, `X` the index register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `A = pkt[k]` (byte), reject packet if out of bounds.
    LdB(u32),
    /// `A = be16(pkt[k..])`, reject if out of bounds.
    LdH(u32),
    /// `A = be32(pkt[k..])`, reject if out of bounds.
    LdW(u32),
    /// `A = pkt[X + k]` (byte), reject if out of bounds.
    LdIndB(u32),
    /// `A = be16(pkt[X + k..])`, reject if out of bounds.
    LdIndH(u32),
    /// `A = be32(pkt[X + k..])`, reject if out of bounds.
    LdIndW(u32),
    /// `A = k`.
    LdImm(u32),
    /// `X = 4 * (pkt[k] & 0x0f)` — the classic IP-header-length idiom.
    LdxMshB(u32),
    /// `X = k`.
    LdxImm(u32),
    /// `X = A`.
    Tax,
    /// `A = X`.
    Txa,
    /// `A = A + k` (wrapping).
    Add(u32),
    /// `A = A - k` (wrapping).
    Sub(u32),
    /// `A = A & k`.
    And(u32),
    /// `A = A | k`.
    Or(u32),
    /// `A = A << k` (masked shift).
    Lsh(u32),
    /// `A = A >> k` (masked shift).
    Rsh(u32),
    /// If `A == k` jump forward `jt` insns, else `jf`.
    Jeq(u32, u8, u8),
    /// If `A > k` jump forward `jt` insns, else `jf`.
    Jgt(u32, u8, u8),
    /// If `A >= k` jump forward `jt` insns, else `jf`.
    Jge(u32, u8, u8),
    /// If `A & k != 0` jump forward `jt` insns, else `jf`.
    Jset(u32, u8, u8),
    /// Unconditional forward jump by `k` insns.
    Ja(u32),
    /// Accept the packet (classic BPF returns a snap length; we treat any
    /// nonzero return as accept and expose the value).
    RetImm(u32),
    /// Return `A`.
    RetA,
}

/// Errors from [`BpfProgram::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BpfError {
    /// Program is empty.
    Empty,
    /// Program exceeds [`MAX_INSNS`].
    TooLong(usize),
    /// A jump at `pc` lands at or beyond the end of the program.
    JumpOutOfBounds {
        /// Instruction index of the offending jump.
        pc: usize,
    },
    /// The instruction at `pc` can fall through past the end of the
    /// program (the last instruction must be a return or jump past-end is
    /// caught above).
    FallsOffEnd {
        /// Instruction index that falls through.
        pc: usize,
    },
}

impl fmt::Display for BpfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BpfError::Empty => write!(f, "empty program"),
            BpfError::TooLong(n) => write!(f, "program has {n} insns (max {MAX_INSNS})"),
            BpfError::JumpOutOfBounds { pc } => write!(f, "jump at insn {pc} out of bounds"),
            BpfError::FallsOffEnd { pc } => write!(f, "insn {pc} can fall off the end"),
        }
    }
}

impl std::error::Error for BpfError {}

/// A verified filter program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpfProgram {
    insns: Vec<Insn>,
}

impl BpfProgram {
    /// Verify and wrap a program.
    ///
    /// The verifier enforces the classic BPF safety conditions: bounded
    /// length, forward-only jumps with in-bounds targets, and no
    /// fall-through past the end — together these guarantee termination in
    /// at most `len` steps.
    pub fn new(insns: Vec<Insn>) -> Result<BpfProgram, BpfError> {
        if insns.is_empty() {
            return Err(BpfError::Empty);
        }
        if insns.len() > MAX_INSNS {
            return Err(BpfError::TooLong(insns.len()));
        }
        let n = insns.len();
        for (pc, insn) in insns.iter().enumerate() {
            match *insn {
                Insn::Jeq(_, jt, jf)
                | Insn::Jgt(_, jt, jf)
                | Insn::Jge(_, jt, jf)
                | Insn::Jset(_, jt, jf) => {
                    // Both successor targets must be real instructions.
                    if pc + 1 + jt as usize >= n || pc + 1 + jf as usize >= n {
                        return Err(BpfError::JumpOutOfBounds { pc });
                    }
                }
                Insn::Ja(k) => {
                    if pc + 1 + k as usize >= n {
                        return Err(BpfError::JumpOutOfBounds { pc });
                    }
                }
                Insn::RetImm(_) | Insn::RetA => {}
                _ => {
                    // Straight-line instruction: must not fall off the end.
                    if pc + 1 >= n {
                        return Err(BpfError::FallsOffEnd { pc });
                    }
                }
            }
        }
        Ok(BpfProgram { insns })
    }

    /// The verified instructions.
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// Run the filter over `pkt`. Returns the accept value (0 = reject;
    /// nonzero = accept, conventionally the snap length to keep).
    ///
    /// Out-of-bounds loads reject the packet, as in classic BPF.
    pub fn run(&self, pkt: &[u8]) -> u32 {
        let mut a: u32 = 0;
        let mut x: u32 = 0;
        let mut pc = 0usize;
        // The verifier guarantees forward progress; the loop bound is a
        // defensive backstop.
        for _ in 0..=self.insns.len() {
            let Some(insn) = self.insns.get(pc) else { return 0 };
            pc += 1;
            match *insn {
                Insn::LdB(k) => match pkt.get(k as usize) {
                    Some(&b) => a = u32::from(b),
                    None => return 0,
                },
                Insn::LdH(k) => match load16(pkt, k as usize) {
                    Some(v) => a = v,
                    None => return 0,
                },
                Insn::LdW(k) => match load32(pkt, k as usize) {
                    Some(v) => a = v,
                    None => return 0,
                },
                Insn::LdIndB(k) => match pkt.get((x as usize).wrapping_add(k as usize)) {
                    Some(&b) => a = u32::from(b),
                    None => return 0,
                },
                Insn::LdIndH(k) => match load16(pkt, (x as usize).wrapping_add(k as usize)) {
                    Some(v) => a = v,
                    None => return 0,
                },
                Insn::LdIndW(k) => match load32(pkt, (x as usize).wrapping_add(k as usize)) {
                    Some(v) => a = v,
                    None => return 0,
                },
                Insn::LdImm(k) => a = k,
                Insn::LdxMshB(k) => match pkt.get(k as usize) {
                    Some(&b) => x = 4 * u32::from(b & 0x0f),
                    None => return 0,
                },
                Insn::LdxImm(k) => x = k,
                Insn::Tax => x = a,
                Insn::Txa => a = x,
                Insn::Add(k) => a = a.wrapping_add(k),
                Insn::Sub(k) => a = a.wrapping_sub(k),
                Insn::And(k) => a &= k,
                Insn::Or(k) => a |= k,
                Insn::Lsh(k) => a = a.wrapping_shl(k),
                Insn::Rsh(k) => a = a.wrapping_shr(k),
                Insn::Jeq(k, jt, jf) => pc += if a == k { jt as usize } else { jf as usize },
                Insn::Jgt(k, jt, jf) => pc += if a > k { jt as usize } else { jf as usize },
                Insn::Jge(k, jt, jf) => pc += if a >= k { jt as usize } else { jf as usize },
                Insn::Jset(k, jt, jf) => pc += if a & k != 0 { jt as usize } else { jf as usize },
                Insn::Ja(k) => pc += k as usize,
                Insn::RetImm(k) => return k,
                Insn::RetA => return a,
            }
        }
        0
    }

    /// Whether the program accepts `pkt`.
    #[inline]
    pub fn accepts(&self, pkt: &[u8]) -> bool {
        self.run(pkt) != 0
    }

    /// Concatenate several verified programs into one that accepts (with
    /// value `accept`) iff ANY member accepts, and rejects only when every
    /// member rejects.
    ///
    /// Members run in order: a non-last member's reject (`RetImm(0)`)
    /// becomes a jump to the start of the next member, and every accept
    /// becomes `RetImm(accept)`; the last member keeps its rejects. This is
    /// the merged cross-query capture-point filter — the union rejects a
    /// packet exactly when every per-LFTA prefilter would have, so the
    /// fast-reject path can charge `prefiltered` to every query at once.
    ///
    /// Returns `None` when `members` is empty, when a member uses `RetA`
    /// (its accept/reject split is data-dependent and cannot be rewritten
    /// statically), or when the concatenation would exceed [`MAX_INSNS`].
    ///
    /// Classic-BPF caveat: an out-of-bounds load rejects the whole run, so
    /// a packet too short for an early member's loads is rejected even if a
    /// later member would accept it. The union is exact on packets long
    /// enough for every member's loads — the same behavior a real NIC BPF
    /// engine gives a concatenated filter. In-process dispatch therefore
    /// never drops through this program; it memoizes each member's own
    /// verdict instead (`gs_runtime::ops::prefilter`).
    pub fn union(members: &[&BpfProgram], accept: u32) -> Option<BpfProgram> {
        debug_assert!(accept != 0, "union accept value must be nonzero");
        if members.is_empty() {
            return None;
        }
        let total: usize = members.iter().map(|p| p.insns.len()).sum();
        if total > MAX_INSNS {
            return None;
        }
        if members.iter().any(|p| p.insns.iter().any(|i| matches!(i, Insn::RetA))) {
            return None;
        }
        let mut out = Vec::with_capacity(total);
        let last = members.len() - 1;
        let mut start = 0usize;
        for (mi, prog) in members.iter().enumerate() {
            let next_start = start + prog.insns.len();
            for (pc, insn) in prog.insns.iter().enumerate() {
                let abs = start + pc;
                out.push(match *insn {
                    Insn::RetImm(0) if mi != last => Insn::Ja((next_start - abs - 1) as u32),
                    Insn::RetImm(0) => Insn::RetImm(0),
                    Insn::RetImm(_) => Insn::RetImm(accept),
                    other => other,
                });
            }
            start = next_start;
        }
        BpfProgram::new(out).ok()
    }
}

/// Marker bit ORed into the accumulator by a family probe so an accept
/// return is distinguishable from the reject value 0 even when `A == 0`.
/// Sound because family prefixes end in a byte/halfword load (`A <=
/// 0xffff`).
const PROBE_MARK: u32 = 0x0001_0000;

/// The recovered final comparison of a factored family member: the
/// member accepts iff `A cmp k` (xor `invert`) where `A` is the probed
/// accumulator value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailTest {
    cmp: TailCmp,
    k: u32,
    invert: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TailCmp {
    Eq,
    Gt,
    Ge,
}

impl TailTest {
    /// The member's verdict given the probed comparison value.
    #[inline]
    pub fn verdict(&self, a: u32) -> bool {
        let hit = match self.cmp {
            TailCmp::Eq => a == self.k,
            TailCmp::Gt => a > self.k,
            TailCmp::Ge => a >= self.k,
        };
        hit != self.invert
    }
}

/// A family of programs identical except for the constant of their final
/// comparison — the shape `gs-gsql`'s prefilter compiler emits for
/// `field cmp const` predicates (`... load; Jcmp(k); RetImm(acc);
/// RetImm(0)`). The shared prefix runs once per packet via a probe
/// program; each member's verdict is then one host-side integer compare,
/// so N same-shape filters cost one interpretation instead of N.
pub struct JeqFamily {
    probe: BpfProgram,
    tests: Vec<TailTest>,
}

impl JeqFamily {
    /// Partition `progs` into factored families (with member indices into
    /// `progs`, parallel to each family's [`tests`](JeqFamily::tests))
    /// and the left-over indices that must be interpreted individually.
    pub fn factor_all(progs: &[&BpfProgram]) -> (Vec<(JeqFamily, Vec<usize>)>, Vec<usize>) {
        let mut groups: Vec<(&[Insn], Vec<(usize, TailTest)>)> = Vec::new();
        let mut loose = Vec::new();
        for (i, p) in progs.iter().enumerate() {
            match family_shape(p.insns()) {
                Some((prefix, test)) => match groups.iter_mut().find(|(g, _)| *g == prefix) {
                    Some((_, members)) => members.push((i, test)),
                    None => groups.push((prefix, vec![(i, test)])),
                },
                None => loose.push(i),
            }
        }
        let mut families = Vec::new();
        for (prefix, members) in groups {
            if members.len() < 2 {
                // A family of one saves nothing over direct interpretation.
                loose.extend(members.iter().map(|&(i, _)| i));
                continue;
            }
            let mut insns = prefix.to_vec();
            insns.push(Insn::Or(PROBE_MARK));
            insns.push(Insn::RetA);
            insns.push(Insn::RetImm(0));
            let Ok(probe) = BpfProgram::new(insns) else {
                loose.extend(members.iter().map(|&(i, _)| i));
                continue;
            };
            families.push((
                JeqFamily { probe, tests: members.iter().map(|&(_, t)| t).collect() },
                members.iter().map(|&(i, _)| i).collect(),
            ));
        }
        (families, loose)
    }

    /// Run the shared prefix over `pkt`. `None` means the prefix rejected
    /// (every member rejects); `Some(a)` is the accumulator value each
    /// member's [`TailTest`] compares against.
    #[inline]
    pub fn probe(&self, pkt: &[u8]) -> Option<u32> {
        match self.probe.run(pkt) {
            0 => None,
            r => Some(r & 0xffff),
        }
    }

    /// Per-member tail comparisons, parallel to the member index list
    /// returned by [`factor_all`](JeqFamily::factor_all).
    pub fn tests(&self) -> &[TailTest] {
        &self.tests
    }
}

/// Match `[prefix.., Jcmp(k, 0, 1) | Jcmp(k, 1, 0), RetImm(acc != 0),
/// RetImm(0)]` under the conditions that make the probe rewrite exact:
/// the prefix ends in a byte/halfword load (so `A <= 0xffff` at the
/// comparison and [`PROBE_MARK`] is unambiguous), never returns accept
/// itself, and no prefix jump lands on the comparison or the accept (a
/// jump to the final reject is fine — the probe keeps that insn).
fn family_shape(insns: &[Insn]) -> Option<(&[Insn], TailTest)> {
    let n = insns.len();
    if n < 4 {
        return None;
    }
    let (cmp, k, invert) = match insns[n - 3] {
        Insn::Jeq(k, 0, 1) => (TailCmp::Eq, k, false),
        Insn::Jeq(k, 1, 0) => (TailCmp::Eq, k, true),
        Insn::Jgt(k, 0, 1) => (TailCmp::Gt, k, false),
        Insn::Jgt(k, 1, 0) => (TailCmp::Gt, k, true),
        Insn::Jge(k, 0, 1) => (TailCmp::Ge, k, false),
        Insn::Jge(k, 1, 0) => (TailCmp::Ge, k, true),
        _ => return None,
    };
    match insns[n - 2] {
        Insn::RetImm(a) if a != 0 => {}
        _ => return None,
    }
    if insns[n - 1] != Insn::RetImm(0) {
        return None;
    }
    let prefix = &insns[..n - 3];
    match prefix.last()? {
        Insn::LdB(_) | Insn::LdH(_) | Insn::LdIndB(_) | Insn::LdIndH(_) => {}
        _ => return None,
    }
    for (pc, insn) in prefix.iter().enumerate() {
        let targets: [usize; 2] = match *insn {
            Insn::Jeq(_, jt, jf)
            | Insn::Jgt(_, jt, jf)
            | Insn::Jge(_, jt, jf)
            | Insn::Jset(_, jt, jf) => [pc + 1 + jt as usize, pc + 1 + jf as usize],
            Insn::Ja(j) => [pc + 1 + j as usize; 2],
            Insn::RetA => return None,
            Insn::RetImm(v) if v != 0 => return None,
            _ => continue,
        };
        if targets.iter().any(|&t| t == n - 2 || t == n - 3) {
            return None;
        }
    }
    Some((prefix, TailTest { cmp, k, invert }))
}

#[inline]
fn load16(pkt: &[u8], k: usize) -> Option<u32> {
    pkt.get(k..k.checked_add(2)?)
        .map(|s| u32::from(u16::from_be_bytes([s[0], s[1]])))
}

#[inline]
fn load32(pkt: &[u8], k: usize) -> Option<u32> {
    pkt.get(k..k.checked_add(4)?)
        .map(|s| u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
}

/// Build the canonical "IPv4 TCP to port `port` over Ethernet" filter —
///
/// ```
/// use gs_nic::bpf::tcp_dst_port_filter;
/// use gs_packet::builder::FrameBuilder;
///
/// let f = tcp_dst_port_filter(80);
/// assert!(f.accepts(&FrameBuilder::tcp(1, 2, 999, 80).build_ethernet()));
/// assert!(!f.accepts(&FrameBuilder::udp(1, 2, 999, 80).build_ethernet()));
/// ```
///
/// the LFTA prefilter of the paper's §4 experiment — handling variable IP
/// header lengths and skipping fragments with nonzero offsets (their bytes
/// are not a TCP header).
pub fn tcp_dst_port_filter(port: u16) -> BpfProgram {
    use Insn::*;
    BpfProgram::new(vec![
        LdH(12),                        // 0: ethertype
        Jeq(0x0800, 0, 8),              // 1: not IPv4 -> reject (insn 10)
        LdB(23),                        // 2: IP protocol
        Jeq(6, 0, 6),                   // 3: not TCP -> reject
        LdH(20),                        // 4: flags+frag
        Jset(0x1fff, 4, 0),             // 5: nonzero frag offset -> reject
        LdxMshB(14),                    // 6: X = IP header length
        LdIndH(16),                     // 7: dst port at 14 + X + 2
        Jeq(u32::from(port), 0, 1),     // 8: not the port -> reject
        RetImm(u32::MAX),               // 9: accept whole packet
        RetImm(0),                      // 10: reject
    ])
    .expect("static filter verifies")
}

/// Build an "accept everything, snap to `snaplen`" program.
pub fn accept_all(snaplen: u32) -> BpfProgram {
    BpfProgram::new(vec![Insn::RetImm(snaplen)]).expect("single ret verifies")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_packet::builder::FrameBuilder;

    #[test]
    fn verifier_rejects_empty_and_overlong() {
        assert_eq!(BpfProgram::new(vec![]).unwrap_err(), BpfError::Empty);
        let long = vec![Insn::LdImm(0); MAX_INSNS + 1];
        assert!(matches!(BpfProgram::new(long), Err(BpfError::TooLong(_))));
    }

    #[test]
    fn verifier_rejects_fall_off_end() {
        let p = BpfProgram::new(vec![Insn::LdImm(1)]);
        assert!(matches!(p, Err(BpfError::FallsOffEnd { pc: 0 })));
    }

    #[test]
    fn verifier_rejects_oob_jump() {
        let p = BpfProgram::new(vec![Insn::Jeq(0, 5, 0), Insn::RetImm(0)]);
        assert!(matches!(p, Err(BpfError::JumpOutOfBounds { pc: 0 })));
        let p = BpfProgram::new(vec![Insn::Ja(1), Insn::RetImm(0)]);
        assert!(matches!(p, Err(BpfError::JumpOutOfBounds { pc: 0 })));
    }

    #[test]
    fn port_filter_matches_only_tcp_port() {
        let f = tcp_dst_port_filter(80);
        let yes = FrameBuilder::tcp(1, 2, 1000, 80).payload(b"x").build_ethernet();
        let no_port = FrameBuilder::tcp(1, 2, 1000, 81).payload(b"x").build_ethernet();
        let no_udp = FrameBuilder::udp(1, 2, 1000, 80).payload(b"x").build_ethernet();
        assert!(f.accepts(&yes));
        assert!(!f.accepts(&no_port));
        assert!(!f.accepts(&no_udp));
    }

    #[test]
    fn port_filter_rejects_fragments_and_garbage() {
        let f = tcp_dst_port_filter(80);
        let frag = FrameBuilder::tcp(1, 2, 1000, 80)
            .payload(&[0u8; 32])
            .fragment(4, false)
            .build_ethernet();
        assert!(!f.accepts(&frag));
        assert!(!f.accepts(&[0u8; 6]));
        assert!(!f.accepts(&[]));
    }

    #[test]
    fn ldxmsh_handles_ip_options() {
        // Hand-build an Ethernet+IPv4 frame with IHL=6 (24-byte header).
        let mut frame = vec![0u8; 14 + 24 + 20];
        frame[12] = 0x08; // IPv4 ethertype
        frame[14] = 0x46; // version 4, IHL 6
        frame[23] = 6; // TCP
        // dst port at 14 + 24 + 2 = 40
        frame[40] = 0;
        frame[41] = 80;
        assert!(tcp_dst_port_filter(80).accepts(&frame));
        assert!(!tcp_dst_port_filter(79).accepts(&frame));
    }

    #[test]
    fn alu_and_ret_a() {
        use Insn::*;
        let p = BpfProgram::new(vec![
            LdImm(0b1100),
            And(0b1010),
            Or(1),
            Lsh(2),
            Rsh(1),
            Add(5),
            Sub(2),
            RetA,
        ])
        .unwrap();
        // ((0b1100 & 0b1010) | 1) = 0b1001 = 9; <<2 = 36; >>1 = 18; +5-2 = 21
        assert_eq!(p.run(&[]), 21);
    }

    #[test]
    fn tax_txa_and_indexed_loads() {
        use Insn::*;
        let p = BpfProgram::new(vec![LdImm(2), Tax, LdIndB(1), RetA]).unwrap();
        assert_eq!(p.run(&[10, 20, 30, 40]), 40);
        // Out-of-bounds indexed load rejects.
        assert_eq!(p.run(&[10, 20, 30]), 0);
        let p = BpfProgram::new(vec![LdxImm(7), Txa, RetA]).unwrap();
        assert_eq!(p.run(&[]), 7);
    }

    #[test]
    fn accept_all_returns_snaplen() {
        assert_eq!(accept_all(96).run(&[1, 2, 3]), 96);
    }

    #[test]
    fn union_accepts_iff_any_member_accepts() {
        let f80 = tcp_dst_port_filter(80);
        let f25 = tcp_dst_port_filter(25);
        let u = BpfProgram::union(&[&f80, &f25], u32::MAX).unwrap();
        let p80 = FrameBuilder::tcp(1, 2, 999, 80).payload(b"x").build_ethernet();
        let p25 = FrameBuilder::tcp(1, 2, 999, 25).payload(b"x").build_ethernet();
        let p53 = FrameBuilder::tcp(1, 2, 999, 53).payload(b"x").build_ethernet();
        assert!(u.accepts(&p80));
        assert!(u.accepts(&p25));
        assert!(!u.accepts(&p53));
        // Equivalence over a spread of frames, including non-TCP and short ones.
        let udp = FrameBuilder::udp(1, 2, 999, 80).payload(b"x").build_ethernet();
        for pkt in [&p80[..], &p25, &p53, &udp, &[0u8; 6], &[]] {
            assert_eq!(u.accepts(pkt), f80.accepts(pkt) || f25.accepts(pkt));
        }
    }

    #[test]
    fn union_returns_uniform_accept_value() {
        let f80 = tcp_dst_port_filter(80);
        let u = BpfProgram::union(&[&f80, &accept_all(60)], 96).unwrap();
        let p80 = FrameBuilder::tcp(1, 2, 999, 80).payload(b"x").build_ethernet();
        assert_eq!(u.run(&p80), 96);
        // The accept-all member catches packets the port filter rejects...
        let p25 = FrameBuilder::tcp(1, 2, 999, 25).payload(b"x").build_ethernet();
        assert_eq!(u.run(&p25), 96);
        // ...but a packet too short for the first member's loads hits the
        // classic-BPF out-of-bounds reject before reaching it.
        assert_eq!(u.run(&[0u8; 6]), 0);
    }

    #[test]
    fn union_rejects_ret_a_and_empty() {
        let ra = BpfProgram::new(vec![Insn::LdImm(1), Insn::RetA]).unwrap();
        assert!(BpfProgram::union(&[&ra], 1).is_none());
        assert!(BpfProgram::union(&[], 1).is_none());
    }

    #[test]
    fn union_of_single_program_preserves_verdicts() {
        let f = tcp_dst_port_filter(80);
        let u = BpfProgram::union(&[&f], u32::MAX).unwrap();
        let yes = FrameBuilder::tcp(1, 2, 999, 80).payload(b"x").build_ethernet();
        let no = FrameBuilder::tcp(1, 2, 999, 81).payload(b"x").build_ethernet();
        assert!(u.accepts(&yes) && !u.accepts(&no));
    }

    /// A corpus of frames exercising every branch of the port filters:
    /// matching/near-miss TCP, UDP, fragments, garbage, and empty.
    fn frame_corpus() -> Vec<Vec<u8>> {
        let mut c: Vec<Vec<u8>> = [80u16, 443, 25, 53, 8080, 0, 65535]
            .iter()
            .map(|&p| FrameBuilder::tcp(1, 2, 999, p).payload(b"x").build_ethernet().to_vec())
            .collect();
        c.push(FrameBuilder::udp(1, 2, 999, 80).payload(b"x").build_ethernet().to_vec());
        c.push(
            FrameBuilder::tcp(1, 2, 999, 80)
                .payload(&[0u8; 32])
                .fragment(4, false)
                .build_ethernet()
                .to_vec(),
        );
        c.push(vec![0u8; 6]);
        c.push(Vec::new());
        c
    }

    #[test]
    fn family_factors_same_shape_port_filters() {
        let progs = [tcp_dst_port_filter(80), tcp_dst_port_filter(443), tcp_dst_port_filter(25)];
        let refs: Vec<&BpfProgram> = progs.iter().collect();
        let (families, loose) = JeqFamily::factor_all(&refs);
        assert_eq!(families.len(), 1);
        assert!(loose.is_empty());
        let (fam, members) = &families[0];
        assert_eq!(members, &[0, 1, 2]);
        for pkt in frame_corpus() {
            let probed = fam.probe(&pkt);
            for (t, &mi) in fam.tests().iter().zip(members) {
                let fast = probed.is_some_and(|a| t.verdict(a));
                assert_eq!(
                    fast,
                    progs[mi].accepts(&pkt),
                    "member {mi} diverged on {} bytes",
                    pkt.len()
                );
            }
        }
    }

    #[test]
    fn family_leaves_foreign_shapes_loose() {
        let port = tcp_dst_port_filter(80);
        let all = accept_all(96);
        let ra = BpfProgram::new(vec![Insn::LdImm(1), Insn::RetA]).unwrap();
        let refs: Vec<&BpfProgram> = vec![&port, &all, &ra];
        let (families, mut loose) = JeqFamily::factor_all(&refs);
        // One port filter alone is not worth a probe; everything is loose.
        assert!(families.is_empty());
        loose.sort_unstable();
        assert_eq!(loose, vec![0, 1, 2]);
    }

    #[test]
    fn jgt_jge_branches() {
        use Insn::*;
        let gt = |v| {
            BpfProgram::new(vec![LdImm(v), Jgt(5, 0, 1), RetImm(1), RetImm(0)]).unwrap().run(&[])
        };
        assert_eq!(gt(6), 1);
        assert_eq!(gt(5), 0);
        let ge = |v| {
            BpfProgram::new(vec![LdImm(v), Jge(5, 0, 1), RetImm(1), RetImm(0)]).unwrap().run(&[])
        };
        assert_eq!(ge(5), 1);
        assert_eq!(ge(4), 0);
    }
}
