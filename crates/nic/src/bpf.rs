//! A classic-BPF-style packet filter machine.
//!
//! The paper (§3): "Other NICs allow us to specify a bpf (berkeley packet
//! filter) preliminary filter, and to specify the number of bytes of
//! qualifying packets (the snap length) to be returned (that is, we can
//! push a simple selection/projection operator into the NIC)."
//!
//! This module defines the instruction set, a verifier enforcing the
//! classic safety rules (forward-only jumps, in-bounds targets, terminating
//! programs), and an interpreter over raw frame bytes. The GSQL optimizer
//! compiles pushable predicates to these programs (`gs-gsql::pushdown`).

use std::fmt;

/// Maximum instructions a program may contain (classic BPF limit).
pub const MAX_INSNS: usize = 4096;

/// One filter instruction. `A` is the accumulator, `X` the index register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `A = pkt[k]` (byte), reject packet if out of bounds.
    LdB(u32),
    /// `A = be16(pkt[k..])`, reject if out of bounds.
    LdH(u32),
    /// `A = be32(pkt[k..])`, reject if out of bounds.
    LdW(u32),
    /// `A = pkt[X + k]` (byte), reject if out of bounds.
    LdIndB(u32),
    /// `A = be16(pkt[X + k..])`, reject if out of bounds.
    LdIndH(u32),
    /// `A = be32(pkt[X + k..])`, reject if out of bounds.
    LdIndW(u32),
    /// `A = k`.
    LdImm(u32),
    /// `X = 4 * (pkt[k] & 0x0f)` — the classic IP-header-length idiom.
    LdxMshB(u32),
    /// `X = k`.
    LdxImm(u32),
    /// `X = A`.
    Tax,
    /// `A = X`.
    Txa,
    /// `A = A + k` (wrapping).
    Add(u32),
    /// `A = A - k` (wrapping).
    Sub(u32),
    /// `A = A & k`.
    And(u32),
    /// `A = A | k`.
    Or(u32),
    /// `A = A << k` (masked shift).
    Lsh(u32),
    /// `A = A >> k` (masked shift).
    Rsh(u32),
    /// If `A == k` jump forward `jt` insns, else `jf`.
    Jeq(u32, u8, u8),
    /// If `A > k` jump forward `jt` insns, else `jf`.
    Jgt(u32, u8, u8),
    /// If `A >= k` jump forward `jt` insns, else `jf`.
    Jge(u32, u8, u8),
    /// If `A & k != 0` jump forward `jt` insns, else `jf`.
    Jset(u32, u8, u8),
    /// Unconditional forward jump by `k` insns.
    Ja(u32),
    /// Accept the packet (classic BPF returns a snap length; we treat any
    /// nonzero return as accept and expose the value).
    RetImm(u32),
    /// Return `A`.
    RetA,
}

/// Errors from [`BpfProgram::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BpfError {
    /// Program is empty.
    Empty,
    /// Program exceeds [`MAX_INSNS`].
    TooLong(usize),
    /// A jump at `pc` lands at or beyond the end of the program.
    JumpOutOfBounds {
        /// Instruction index of the offending jump.
        pc: usize,
    },
    /// The instruction at `pc` can fall through past the end of the
    /// program (the last instruction must be a return or jump past-end is
    /// caught above).
    FallsOffEnd {
        /// Instruction index that falls through.
        pc: usize,
    },
}

impl fmt::Display for BpfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BpfError::Empty => write!(f, "empty program"),
            BpfError::TooLong(n) => write!(f, "program has {n} insns (max {MAX_INSNS})"),
            BpfError::JumpOutOfBounds { pc } => write!(f, "jump at insn {pc} out of bounds"),
            BpfError::FallsOffEnd { pc } => write!(f, "insn {pc} can fall off the end"),
        }
    }
}

impl std::error::Error for BpfError {}

/// A verified filter program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpfProgram {
    insns: Vec<Insn>,
}

impl BpfProgram {
    /// Verify and wrap a program.
    ///
    /// The verifier enforces the classic BPF safety conditions: bounded
    /// length, forward-only jumps with in-bounds targets, and no
    /// fall-through past the end — together these guarantee termination in
    /// at most `len` steps.
    pub fn new(insns: Vec<Insn>) -> Result<BpfProgram, BpfError> {
        if insns.is_empty() {
            return Err(BpfError::Empty);
        }
        if insns.len() > MAX_INSNS {
            return Err(BpfError::TooLong(insns.len()));
        }
        let n = insns.len();
        for (pc, insn) in insns.iter().enumerate() {
            match *insn {
                Insn::Jeq(_, jt, jf)
                | Insn::Jgt(_, jt, jf)
                | Insn::Jge(_, jt, jf)
                | Insn::Jset(_, jt, jf) => {
                    // Both successor targets must be real instructions.
                    if pc + 1 + jt as usize >= n || pc + 1 + jf as usize >= n {
                        return Err(BpfError::JumpOutOfBounds { pc });
                    }
                }
                Insn::Ja(k) => {
                    if pc + 1 + k as usize >= n {
                        return Err(BpfError::JumpOutOfBounds { pc });
                    }
                }
                Insn::RetImm(_) | Insn::RetA => {}
                _ => {
                    // Straight-line instruction: must not fall off the end.
                    if pc + 1 >= n {
                        return Err(BpfError::FallsOffEnd { pc });
                    }
                }
            }
        }
        Ok(BpfProgram { insns })
    }

    /// The verified instructions.
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// Run the filter over `pkt`. Returns the accept value (0 = reject;
    /// nonzero = accept, conventionally the snap length to keep).
    ///
    /// Out-of-bounds loads reject the packet, as in classic BPF.
    pub fn run(&self, pkt: &[u8]) -> u32 {
        let mut a: u32 = 0;
        let mut x: u32 = 0;
        let mut pc = 0usize;
        // The verifier guarantees forward progress; the loop bound is a
        // defensive backstop.
        for _ in 0..=self.insns.len() {
            let Some(insn) = self.insns.get(pc) else { return 0 };
            pc += 1;
            match *insn {
                Insn::LdB(k) => match pkt.get(k as usize) {
                    Some(&b) => a = u32::from(b),
                    None => return 0,
                },
                Insn::LdH(k) => match load16(pkt, k as usize) {
                    Some(v) => a = v,
                    None => return 0,
                },
                Insn::LdW(k) => match load32(pkt, k as usize) {
                    Some(v) => a = v,
                    None => return 0,
                },
                Insn::LdIndB(k) => match pkt.get((x as usize).wrapping_add(k as usize)) {
                    Some(&b) => a = u32::from(b),
                    None => return 0,
                },
                Insn::LdIndH(k) => match load16(pkt, (x as usize).wrapping_add(k as usize)) {
                    Some(v) => a = v,
                    None => return 0,
                },
                Insn::LdIndW(k) => match load32(pkt, (x as usize).wrapping_add(k as usize)) {
                    Some(v) => a = v,
                    None => return 0,
                },
                Insn::LdImm(k) => a = k,
                Insn::LdxMshB(k) => match pkt.get(k as usize) {
                    Some(&b) => x = 4 * u32::from(b & 0x0f),
                    None => return 0,
                },
                Insn::LdxImm(k) => x = k,
                Insn::Tax => x = a,
                Insn::Txa => a = x,
                Insn::Add(k) => a = a.wrapping_add(k),
                Insn::Sub(k) => a = a.wrapping_sub(k),
                Insn::And(k) => a &= k,
                Insn::Or(k) => a |= k,
                Insn::Lsh(k) => a = a.wrapping_shl(k),
                Insn::Rsh(k) => a = a.wrapping_shr(k),
                Insn::Jeq(k, jt, jf) => pc += if a == k { jt as usize } else { jf as usize },
                Insn::Jgt(k, jt, jf) => pc += if a > k { jt as usize } else { jf as usize },
                Insn::Jge(k, jt, jf) => pc += if a >= k { jt as usize } else { jf as usize },
                Insn::Jset(k, jt, jf) => pc += if a & k != 0 { jt as usize } else { jf as usize },
                Insn::Ja(k) => pc += k as usize,
                Insn::RetImm(k) => return k,
                Insn::RetA => return a,
            }
        }
        0
    }

    /// Whether the program accepts `pkt`.
    #[inline]
    pub fn accepts(&self, pkt: &[u8]) -> bool {
        self.run(pkt) != 0
    }
}

#[inline]
fn load16(pkt: &[u8], k: usize) -> Option<u32> {
    pkt.get(k..k.checked_add(2)?)
        .map(|s| u32::from(u16::from_be_bytes([s[0], s[1]])))
}

#[inline]
fn load32(pkt: &[u8], k: usize) -> Option<u32> {
    pkt.get(k..k.checked_add(4)?)
        .map(|s| u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
}

/// Build the canonical "IPv4 TCP to port `port` over Ethernet" filter —
///
/// ```
/// use gs_nic::bpf::tcp_dst_port_filter;
/// use gs_packet::builder::FrameBuilder;
///
/// let f = tcp_dst_port_filter(80);
/// assert!(f.accepts(&FrameBuilder::tcp(1, 2, 999, 80).build_ethernet()));
/// assert!(!f.accepts(&FrameBuilder::udp(1, 2, 999, 80).build_ethernet()));
/// ```
///
/// the LFTA prefilter of the paper's §4 experiment — handling variable IP
/// header lengths and skipping fragments with nonzero offsets (their bytes
/// are not a TCP header).
pub fn tcp_dst_port_filter(port: u16) -> BpfProgram {
    use Insn::*;
    BpfProgram::new(vec![
        LdH(12),                        // 0: ethertype
        Jeq(0x0800, 0, 8),              // 1: not IPv4 -> reject (insn 10)
        LdB(23),                        // 2: IP protocol
        Jeq(6, 0, 6),                   // 3: not TCP -> reject
        LdH(20),                        // 4: flags+frag
        Jset(0x1fff, 4, 0),             // 5: nonzero frag offset -> reject
        LdxMshB(14),                    // 6: X = IP header length
        LdIndH(16),                     // 7: dst port at 14 + X + 2
        Jeq(u32::from(port), 0, 1),     // 8: not the port -> reject
        RetImm(u32::MAX),               // 9: accept whole packet
        RetImm(0),                      // 10: reject
    ])
    .expect("static filter verifies")
}

/// Build an "accept everything, snap to `snaplen`" program.
pub fn accept_all(snaplen: u32) -> BpfProgram {
    BpfProgram::new(vec![Insn::RetImm(snaplen)]).expect("single ret verifies")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_packet::builder::FrameBuilder;

    #[test]
    fn verifier_rejects_empty_and_overlong() {
        assert_eq!(BpfProgram::new(vec![]).unwrap_err(), BpfError::Empty);
        let long = vec![Insn::LdImm(0); MAX_INSNS + 1];
        assert!(matches!(BpfProgram::new(long), Err(BpfError::TooLong(_))));
    }

    #[test]
    fn verifier_rejects_fall_off_end() {
        let p = BpfProgram::new(vec![Insn::LdImm(1)]);
        assert!(matches!(p, Err(BpfError::FallsOffEnd { pc: 0 })));
    }

    #[test]
    fn verifier_rejects_oob_jump() {
        let p = BpfProgram::new(vec![Insn::Jeq(0, 5, 0), Insn::RetImm(0)]);
        assert!(matches!(p, Err(BpfError::JumpOutOfBounds { pc: 0 })));
        let p = BpfProgram::new(vec![Insn::Ja(1), Insn::RetImm(0)]);
        assert!(matches!(p, Err(BpfError::JumpOutOfBounds { pc: 0 })));
    }

    #[test]
    fn port_filter_matches_only_tcp_port() {
        let f = tcp_dst_port_filter(80);
        let yes = FrameBuilder::tcp(1, 2, 1000, 80).payload(b"x").build_ethernet();
        let no_port = FrameBuilder::tcp(1, 2, 1000, 81).payload(b"x").build_ethernet();
        let no_udp = FrameBuilder::udp(1, 2, 1000, 80).payload(b"x").build_ethernet();
        assert!(f.accepts(&yes));
        assert!(!f.accepts(&no_port));
        assert!(!f.accepts(&no_udp));
    }

    #[test]
    fn port_filter_rejects_fragments_and_garbage() {
        let f = tcp_dst_port_filter(80);
        let frag = FrameBuilder::tcp(1, 2, 1000, 80)
            .payload(&[0u8; 32])
            .fragment(4, false)
            .build_ethernet();
        assert!(!f.accepts(&frag));
        assert!(!f.accepts(&[0u8; 6]));
        assert!(!f.accepts(&[]));
    }

    #[test]
    fn ldxmsh_handles_ip_options() {
        // Hand-build an Ethernet+IPv4 frame with IHL=6 (24-byte header).
        let mut frame = vec![0u8; 14 + 24 + 20];
        frame[12] = 0x08; // IPv4 ethertype
        frame[14] = 0x46; // version 4, IHL 6
        frame[23] = 6; // TCP
        // dst port at 14 + 24 + 2 = 40
        frame[40] = 0;
        frame[41] = 80;
        assert!(tcp_dst_port_filter(80).accepts(&frame));
        assert!(!tcp_dst_port_filter(79).accepts(&frame));
    }

    #[test]
    fn alu_and_ret_a() {
        use Insn::*;
        let p = BpfProgram::new(vec![
            LdImm(0b1100),
            And(0b1010),
            Or(1),
            Lsh(2),
            Rsh(1),
            Add(5),
            Sub(2),
            RetA,
        ])
        .unwrap();
        // ((0b1100 & 0b1010) | 1) = 0b1001 = 9; <<2 = 36; >>1 = 18; +5-2 = 21
        assert_eq!(p.run(&[]), 21);
    }

    #[test]
    fn tax_txa_and_indexed_loads() {
        use Insn::*;
        let p = BpfProgram::new(vec![LdImm(2), Tax, LdIndB(1), RetA]).unwrap();
        assert_eq!(p.run(&[10, 20, 30, 40]), 40);
        // Out-of-bounds indexed load rejects.
        assert_eq!(p.run(&[10, 20, 30]), 0);
        let p = BpfProgram::new(vec![LdxImm(7), Txa, RetA]).unwrap();
        assert_eq!(p.run(&[]), 7);
    }

    #[test]
    fn accept_all_returns_snaplen() {
        assert_eq!(accept_all(96).run(&[1, 2, 3]), 96);
    }

    #[test]
    fn jgt_jge_branches() {
        use Insn::*;
        let gt = |v| {
            BpfProgram::new(vec![LdImm(v), Jgt(5, 0, 1), RetImm(1), RetImm(0)]).unwrap().run(&[])
        };
        assert_eq!(gt(6), 1);
        assert_eq!(gt(5), 0);
        let ge = |v| {
            BpfProgram::new(vec![LdImm(v), Jge(5, 0, 1), RetImm(1), RetImm(0)]).unwrap().run(&[])
        };
        assert_eq!(ge(5), 1);
        assert_eq!(ge(4), 0);
    }
}
