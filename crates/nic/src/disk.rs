//! The dump-to-disk host action — the paper's option 1.
//!
//! "Touching disk kills performance not because it is slow but because it
//! generates long and unpredictable delays throughout the system." The
//! model charges a per-byte sequential write cost plus a long stall every
//! `disk_stall_every_bytes` written (filesystem flush / seek). The stalls
//! are what overflow the RX ring in bursts well before the nominal
//! sequential bandwidth is reached.

use crate::cost::CostModel;
use crate::sim::HostAction;
use gs_packet::CapPacket;

/// Host action modelling a trace dump to striped disks.
#[derive(Debug)]
pub struct DiskDumpHost {
    per_byte_ns: f64,
    stall_ns: u64,
    stall_every_bytes: u64,
    bytes_since_stall: u64,
    /// Total bytes "written".
    pub bytes_written: u64,
    /// Number of stalls incurred.
    pub stalls: u64,
}

impl DiskDumpHost {
    /// Build from the cost model's disk constants.
    pub fn new(costs: &CostModel) -> DiskDumpHost {
        DiskDumpHost {
            per_byte_ns: costs.disk_per_byte_ns,
            stall_ns: costs.disk_stall_ns,
            stall_every_bytes: costs.disk_stall_every_bytes.max(1),
            bytes_since_stall: 0,
            bytes_written: 0,
            stalls: 0,
        }
    }
}

impl HostAction for DiskDumpHost {
    fn handle(&mut self, pkt: &CapPacket) -> u64 {
        let n = pkt.data.len() as u64;
        self.bytes_written += n;
        self.bytes_since_stall += n;
        let mut cost = (self.per_byte_ns * n as f64) as u64;
        while self.bytes_since_stall >= self.stall_every_bytes {
            self.bytes_since_stall -= self.stall_every_bytes;
            self.stalls += 1;
            cost += self.stall_ns;
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{CaptureSim, DiscardHost};
    use bytes::Bytes;
    use gs_packet::capture::LinkType;

    fn arrivals(n: u64, size: usize, gap_ns: u64) -> impl Iterator<Item = CapPacket> {
        (0..n).map(move |i| {
            CapPacket::full(i * gap_ns, 0, LinkType::RawIp, Bytes::from(vec![0u8; size]))
        })
    }

    #[test]
    fn stall_accounting() {
        let costs = CostModel { disk_stall_every_bytes: 1000, ..CostModel::default() };
        let mut d = DiskDumpHost::new(&costs);
        let pkt = CapPacket::full(0, 0, LinkType::RawIp, Bytes::from(vec![0u8; 600]));
        let c1 = d.handle(&pkt);
        assert_eq!(d.stalls, 0);
        let c2 = d.handle(&pkt); // crosses 1000 bytes
        assert_eq!(d.stalls, 1);
        assert!(c2 > c1);
        assert_eq!(d.bytes_written, 1200);
    }

    #[test]
    fn disk_path_loses_before_discard_path() {
        let sim = CaptureSim::default();
        // ~220 Mbit/s at 551 B packets: gap = 551*8/220e6 s ≈ 20 µs.
        let gap = 20_000;
        let mut discard = DiscardHost::default();
        let r_discard = sim.run(arrivals(150_000, 551, gap), None, &mut discard);
        let mut disk = DiskDumpHost::new(&sim.costs);
        let r_disk = sim.run(arrivals(150_000, 551, gap), None, &mut disk);
        assert!(r_discard.loss_rate() < 0.005, "discard loss {}", r_discard.loss_rate());
        assert!(r_disk.loss_rate() > 0.02, "disk loss {}", r_disk.loss_rate());
    }

    #[test]
    fn stalls_cause_bursty_ring_occupancy() {
        let sim = CaptureSim::default();
        // Below nominal disk bandwidth, stalls still push the ring high.
        let gap = 40_000;
        let mut disk = DiskDumpHost::new(&sim.costs);
        let r = sim.run(arrivals(100_000, 551, gap), None, &mut disk);
        assert!(disk.stalls > 10);
        assert!(r.ring_high_water > 32, "high water {}", r.ring_high_water);
    }
}
