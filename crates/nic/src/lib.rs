//! Simulated NIC and host capture path.
//!
//! The paper's §4 experiment compares four capture configurations on a
//! 733 MHz host with a programmable Tigon gigabit NIC. We do not have that
//! hardware; this crate substitutes a discrete-event model of the capture
//! path whose *structure* — where per-packet work happens, and how much
//! happens before data reduction — determines the outcome, exactly as in
//! the paper (see DESIGN.md §3):
//!
//! - [`ring`]: the fixed-capacity RX ring; overflow = packet drop;
//! - [`bpf`]: a classic-BPF-style filter machine the optimizer can push
//!   selections into ("Other NICs allow us to specify a bpf preliminary
//!   filter, and ... the snap length");
//! - [`cost`]: the calibrated per-packet cost model standing in for the
//!   733 MHz host, the Tigon firmware, and the striped disks;
//! - [`sim`]: the event-driven capture simulator with an interrupt model
//!   that reproduces receive livelock;
//! - [`disk`]: the dump-to-disk host action with periodic long stalls
//!   ("Touching disk kills performance ... because it generates long and
//!   unpredictable delays");
//! - [`iface`]: functional (untimed) capture-path combinators used by the
//!   real runtime: BPF prefilter + snap length applied to a packet stream.

#![warn(missing_docs)]

pub mod bpf;
pub mod cost;
pub mod disk;
pub mod iface;
pub mod ring;
pub mod sim;

pub use bpf::{BpfError, BpfProgram, Insn};
pub use cost::CostModel;
pub use ring::RxRing;
pub use sim::{CaptureSim, HostAction, NicAction, NicVerdict, SimReport};
