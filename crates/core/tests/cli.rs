//! Integration tests of the `gsq` command-line front end, driving the
//! compiled binary exactly as an analyst would.

use std::io::Write;
use std::process::{Command, Stdio};

fn gsq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gsq"))
}

fn write_program(contents: &str) -> tempfile::TempPath {
    let mut f = tempfile::NamedTempFile::new().expect("temp file");
    f.write_all(contents.as_bytes()).expect("write");
    f.into_temp_path()
}

// A minimal temp-file helper so the test crate needs no extra deps.
mod tempfile {
    use std::path::{Path, PathBuf};

    pub struct NamedTempFile {
        path: PathBuf,
        file: std::fs::File,
    }

    pub struct TempPath(PathBuf);

    impl NamedTempFile {
        pub fn new() -> std::io::Result<NamedTempFile> {
            let path = std::env::temp_dir().join(format!(
                "gsq_test_{}_{:x}.gsql",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            Ok(NamedTempFile { file: std::fs::File::create(&path)?, path })
        }

        pub fn into_temp_path(self) -> TempPath {
            TempPath(self.path)
        }
    }

    impl std::io::Write for NamedTempFile {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.file.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.file.flush()
        }
    }

    impl std::ops::Deref for TempPath {
        type Target = Path;
        fn deref(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

const PROGRAM: &str = "INTERFACE eth0 0 ether;\n\
    DEFINE { query_name persec; }\n\
    Select time, count(*) From eth0.tcp Where destPort = 80 Group By time\n";

#[test]
fn runs_synthetic_and_prints_csv() {
    let p = write_program(PROGRAM);
    let out = gsq()
        .args(["--program", p.to_str().unwrap(), "--synthetic", "50x300", "--seed", "3"])
        .output()
        .expect("gsq runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# persec(time:uint,count:uint)"), "{stdout}");
    assert!(stdout.lines().any(|l| l.starts_with("persec,")), "{stdout}");
}

#[test]
fn explain_shows_the_split_without_running() {
    let p = write_program(PROGRAM);
    let out = gsq().args(["--program", p.to_str().unwrap(), "--explain"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("LFTA persec__lfta0"), "{stdout}");
    assert!(stdout.contains("NIC prefilter: BPF"), "{stdout}");
    assert!(stdout.contains("HFTA (stream operators):"), "{stdout}");
    assert!(!stdout.contains("persec,"), "explain must not execute the query");
}

#[test]
fn reads_program_from_stdin() {
    let mut child = gsq()
        .args(["--program", "-", "--synthetic", "30x200"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(PROGRAM.as_bytes()).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("persec,"));
}

#[test]
fn same_seed_is_deterministic() {
    let p = write_program(PROGRAM);
    let run = || {
        let out = gsq()
            .args(["--program", p.to_str().unwrap(), "--synthetic", "40x300", "--seed", "11"])
            .output()
            .unwrap();
        assert!(out.status.success());
        out.stdout
    };
    assert_eq!(run(), run(), "same seed must reproduce byte-identical output");
}

#[test]
fn parameterized_run_binds_from_flag() {
    let p = write_program(
        "INTERFACE eth0 0 ether;\n\
         DEFINE { query_name byport; } Select time From eth0.tcp Where destPort = $port\n",
    );
    let count = |port: &str| {
        let out = gsq()
            .args([
                "--program",
                p.to_str().unwrap(),
                "--synthetic",
                "40x300",
                "--param",
                &format!("byport.port={port}"),
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).lines().filter(|l| l.starts_with("byport,")).count()
    };
    assert!(count("80") > 0, "port-80 traffic exists in the default mix");
    assert_eq!(count("9"), 0, "no traffic goes to port 9");
}

#[test]
fn bad_inputs_fail_cleanly() {
    // Missing program.
    let out = gsq().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Program with a parse error.
    let p = write_program("Select FROM nothing");
    let out = gsq().args(["--program", p.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse error"));
    // Unknown subscription.
    let p = write_program(PROGRAM);
    let out = gsq()
        .args(["--program", p.to_str().unwrap(), "--subscribe", "ghost"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    // Unknown flag.
    let out = gsq().args(["--frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn trace_replay_round_trips() {
    use gs_netgen::{MixConfig, PacketMix};
    let pkts: Vec<_> = PacketMix::new(MixConfig {
        seed: 5,
        duration_ms: 300,
        ..MixConfig::default()
    })
    .collect();
    let trace = gs_packet::capture::write_trace(&pkts);
    let trace_path = std::env::temp_dir().join(format!("gsq_cli_trace_{}.gsc", std::process::id()));
    std::fs::write(&trace_path, trace).unwrap();

    let p = write_program(PROGRAM);
    let out = gsq()
        .args(["--program", p.to_str().unwrap(), "--trace", trace_path.to_str().unwrap()])
        .output()
        .unwrap();
    let _ = std::fs::remove_file(&trace_path);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let total: u64 = stdout
        .lines()
        .filter(|l| l.starts_with("persec,"))
        .map(|l| l.rsplit(',').next().unwrap().parse::<u64>().unwrap())
        .sum();
    let expected = pkts
        .iter()
        .filter(|p| {
            gs_packet::PacketView::parse((*p).clone())
                .tcp()
                .is_some_and(|t| t.dst_port == 80)
        })
        .count() as u64;
    assert_eq!(total, expected, "trace replay must count exactly the port-80 packets");
}
