//! `gsq` — run GSQL queries over packet traces or synthetic traffic from
//! the command line.
//!
//! ```text
//! gsq --program queries.gsql --subscribe tcpdest [options]
//!
//! options:
//!   --program <file>         GSQL program (required; `-` for stdin)
//!   --subscribe <a,b,...>    streams to print (default: every query)
//!   --iface <name=id[:link]> register an interface (default: eth0=0:ether)
//!                            links: ether | rawip | netflow | bgp
//!   --trace <file>           replay a .gsc capture trace
//!   --synthetic <mbps>x<ms>  generate a traffic mix instead (default 100x1000)
//!   --seed <n>               synthetic traffic seed (default 0)
//!   --param <q.name=value>   bind a query parameter
//!   --heartbeat <off|N|ondemand>  LFTA heartbeat policy (default 1 second)
//!   --explain                print the deployed plans and exit (no run)
//!   --stats                  print LFTA/engine statistics to stderr
//!
//! daemon client mode (`gsqd` wire protocol over TCP):
//!   --connect <addr>         talk to a running gsqd instead of running locally
//!   --connect-retries <n>    initial-connect attempts (default 5; a refused
//!                            connection retries with exponential backoff, so
//!                            scripted sessions don't race daemon startup)
//!   --connect-backoff-ms <n> base backoff between connect attempts, doubling
//!                            per retry up to 2 s (default 100)
//!   --epochs <n>             read n epochs of frames per subscribed stream
//!   --health                 poll per-query lifecycle health
//!   --unregister <name>      unregister a query
//!   --ping                   liveness probe
//!   --shutdown               stop the daemon after the other actions
//!   --drain                  after --shutdown, keep printing tuple frames
//!                            until the daemon closes the socket (collects
//!                            the carry-mode flush tail)
//!
//! In connect mode `--program` registers the program with the daemon,
//! `--subscribe` subscribes to its output streams, and `--stats` polls
//! the daemon's GS_STATS counters. Actions run in order: ping,
//! register, subscribe, read epochs, health, stats, unregister,
//! shutdown.
//! ```
//!
//! Output is CSV: `stream,field1,field2,...` with a header per stream.

use gigascope::{Gigascope, ParamBindings, Value};
use gs_netgen::{MixConfig, PacketMix};
use gs_packet::capture::LinkType;
use gs_packet::CapPacket;
use gs_runtime::punct::HeartbeatMode;
use std::io::Read;
use std::process::exit;

struct Args {
    program: Option<String>,
    subscribe: Vec<String>,
    ifaces: Vec<(String, u16, LinkType)>,
    trace: Option<String>,
    synthetic: (f64, u64),
    seed: u64,
    params: Vec<(String, String, String)>,
    heartbeat: HeartbeatMode,
    explain: bool,
    stats: bool,
    connect: Option<String>,
    connect_retries: u32,
    connect_backoff_ms: u64,
    epochs: u64,
    health: bool,
    unregister: Option<String>,
    ping: bool,
    shutdown: bool,
    drain: bool,
}

fn usage(msg: &str) -> ! {
    eprintln!("gsq: {msg}\n\nusage: gsq --program <file> [--subscribe a,b] [--iface name=id[:link]]");
    eprintln!("           [--trace file.gsc | --synthetic <mbps>x<ms>] [--seed n]");
    eprintln!("           [--param q.name=value] [--heartbeat off|N|ondemand] [--stats]");
    exit(2);
}

fn parse_link(s: &str) -> LinkType {
    match s {
        "ether" | "ethernet" => LinkType::Ethernet,
        "rawip" | "ip" => LinkType::RawIp,
        "netflow" => LinkType::NetflowRecord,
        "bgp" => LinkType::BgpUpdate,
        other => usage(&format!("unknown link type `{other}`")),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        program: None,
        subscribe: Vec::new(),
        ifaces: Vec::new(),
        trace: None,
        synthetic: (100.0, 1000),
        seed: 0,
        params: Vec::new(),
        heartbeat: HeartbeatMode::Periodic { interval: 1 },
        explain: false,
        stats: false,
        connect: None,
        connect_retries: 5,
        connect_backoff_ms: 100,
        epochs: 0,
        health: false,
        unregister: None,
        ping: false,
        shutdown: false,
        drain: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--program" => args.program = Some(val()),
            "--subscribe" => {
                args.subscribe = val().split(',').map(str::to_string).collect();
            }
            "--iface" => {
                let v = val();
                let (name, rest) = v.split_once('=').unwrap_or_else(|| usage("--iface name=id[:link]"));
                let (id, link) = match rest.split_once(':') {
                    Some((id, link)) => (id, parse_link(link)),
                    None => (rest, LinkType::Ethernet),
                };
                let id: u16 = id.parse().unwrap_or_else(|_| usage("interface id must be a number"));
                args.ifaces.push((name.to_string(), id, link));
            }
            "--trace" => args.trace = Some(val()),
            "--synthetic" => {
                let v = val();
                let (mbps, ms) =
                    v.split_once('x').unwrap_or_else(|| usage("--synthetic <mbps>x<ms>"));
                args.synthetic = (
                    mbps.parse().unwrap_or_else(|_| usage("bad mbps")),
                    ms.parse().unwrap_or_else(|_| usage("bad ms")),
                );
            }
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage("bad seed")),
            "--param" => {
                let v = val();
                let (qn, value) = v.split_once('=').unwrap_or_else(|| usage("--param q.name=value"));
                let (q, n) = qn.split_once('.').unwrap_or_else(|| usage("--param q.name=value"));
                args.params.push((q.to_string(), n.to_string(), value.to_string()));
            }
            "--heartbeat" => {
                let v = val();
                args.heartbeat = match v.as_str() {
                    "off" => HeartbeatMode::Off,
                    "ondemand" => HeartbeatMode::OnDemand,
                    n => HeartbeatMode::Periodic {
                        interval: n.parse().unwrap_or_else(|_| usage("bad heartbeat")),
                    },
                };
            }
            "--explain" => args.explain = true,
            "--stats" => args.stats = true,
            "--connect" => args.connect = Some(val()),
            "--connect-retries" => {
                args.connect_retries =
                    val().parse().unwrap_or_else(|_| usage("bad --connect-retries"))
            }
            "--connect-backoff-ms" => {
                args.connect_backoff_ms =
                    val().parse().unwrap_or_else(|_| usage("bad --connect-backoff-ms"))
            }
            "--epochs" => args.epochs = val().parse().unwrap_or_else(|_| usage("bad epochs")),
            "--health" => args.health = true,
            "--unregister" => args.unregister = Some(val()),
            "--ping" => args.ping = true,
            "--shutdown" => args.shutdown = true,
            "--drain" => args.drain = true,
            "--help" | "-h" => usage("help"),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    args
}

fn parse_value(s: &str) -> Value {
    if let Ok(v) = s.parse::<u64>() {
        return Value::UInt(v);
    }
    if let Ok(v) = s.parse::<f64>() {
        return Value::Float(v);
    }
    if let Some(ip) = gs_packet::ip::parse_ipv4(s) {
        return Value::Ip(ip);
    }
    match s {
        "true" | "TRUE" => Value::Bool(true),
        "false" | "FALSE" => Value::Bool(false),
        other => Value::Str(bytes::Bytes::copy_from_slice(other.as_bytes())),
    }
}

/// Daemon client mode: run the requested protocol actions in order
/// against a live `gsqd`.
fn connect_mode(args: &Args, addr: &str) {
    use gigascope::server::client::Client;
    let mut client = Client::connect_retry(
        addr,
        args.connect_retries,
        std::time::Duration::from_millis(args.connect_backoff_ms),
    )
    .unwrap_or_else(|e| {
        eprintln!("gsq: connect {addr}: {e}");
        exit(1);
    });
    let _ = client.set_timeout(Some(std::time::Duration::from_secs(120)));
    let fail = |what: &str, e: &dyn std::fmt::Display| -> ! {
        eprintln!("gsq: {what}: {e}");
        exit(1);
    };

    if args.ping {
        client.ping().unwrap_or_else(|e| fail("ping", &e));
        println!("# pong");
    }
    if let Some(path) = &args.program {
        let text = if path == "-" {
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .unwrap_or_else(|e| fail("reading stdin", &e));
            s
        } else {
            std::fs::read_to_string(path).unwrap_or_else(|e| fail(path, &e))
        };
        let names = client.register(&text).unwrap_or_else(|e| fail("register", &e));
        println!("# registered {}", names.join(","));
    }
    for stream in &args.subscribe {
        client.subscribe(stream).unwrap_or_else(|e| fail("subscribe", &e));
    }
    for _ in 0..args.epochs {
        for stream in &args.subscribe {
            let (epoch, rows) =
                client.read_epoch(stream).unwrap_or_else(|e| fail("read_epoch", &e));
            println!("# {stream} epoch {epoch}: {} rows", rows.len());
            for t in rows {
                let row: Vec<String> = t.values().iter().map(|v| v.to_string()).collect();
                println!("{stream},{}", row.join(","));
            }
        }
    }
    if args.health {
        let rows = client.health().unwrap_or_else(|e| fail("health", &e));
        for r in rows {
            println!("health,{},{:?},{},{}", r.query, r.state, r.restarts, r.reason);
        }
    }
    if args.stats {
        let rows = client.stats().unwrap_or_else(|e| fail("stats", &e));
        for (node, counter, value) in rows {
            eprintln!("stat,{node},{counter},{value}");
        }
    }
    if let Some(name) = &args.unregister {
        client.unregister(name).unwrap_or_else(|e| fail("unregister", &e));
        println!("# unregistered {name}");
    }
    if args.shutdown {
        client.shutdown().unwrap_or_else(|e| fail("shutdown", &e));
        println!("# daemon shutting down");
    }
    if args.drain {
        // Carry-state shutdown runs a flush epoch that emits the held
        // window tails before closing subscriber sockets; print those
        // final frames until the daemon hangs up.
        while let Ok(frame) = client.next_tuples() {
            println!("# {} flush: {} rows", frame.stream, frame.rows.len());
            for t in frame.rows {
                let row: Vec<String> = t.values().iter().map(|v| v.to_string()).collect();
                println!("{},{}", frame.stream, row.join(","));
            }
        }
    }
}

fn main() {
    let args = parse_args();
    if let Some(addr) = args.connect.clone() {
        connect_mode(&args, &addr);
        return;
    }
    let Some(program_path) = &args.program else { usage("--program is required") };
    let program = if program_path == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s).unwrap_or_else(|e| {
            eprintln!("gsq: reading stdin: {e}");
            exit(1);
        });
        s
    } else {
        std::fs::read_to_string(program_path).unwrap_or_else(|e| {
            eprintln!("gsq: {program_path}: {e}");
            exit(1);
        })
    };

    let mut gs = Gigascope::new();
    gs.heartbeat = args.heartbeat;
    if args.ifaces.is_empty() {
        gs.add_interface("eth0", 0, LinkType::Ethernet);
    }
    for (name, id, link) in &args.ifaces {
        gs.add_interface(name, *id, *link);
    }

    let infos = gs.add_program(&program).unwrap_or_else(|e| {
        eprintln!("gsq: {e}");
        exit(1);
    });
    for i in &infos {
        for w in &i.warnings {
            eprintln!("gsq: warning: query `{}`: {w}", i.name);
        }
    }

    if args.explain {
        print!("{}", gs.explain_all());
        // The cross-query shared prefilter plan: deduplicated atom table
        // plus each LFTA's required-atom bitmask assignment.
        match gs.explain_prefilter() {
            Ok(Some(plan)) => print!("\n{plan}"),
            Ok(None) => {}
            Err(e) => eprintln!("gsq: explain prefilter: {e}"),
        }
        return;
    }

    for (q, n, v) in &args.params {
        let mut p = gs
            .queries()
            .iter()
            .find(|d| &d.name == q)
            .map(|_| ParamBindings::new())
            .unwrap_or_else(|| {
                eprintln!("gsq: --param references unknown query `{q}`");
                exit(1);
            });
        p.set(n.clone(), parse_value(v));
        gs.set_params(q, p).unwrap();
    }

    let subscriptions: Vec<String> = if args.subscribe.is_empty() {
        // Hoisted FROM-clause subqueries are plumbing, not output the
        // user asked for.
        infos
            .iter()
            .filter(|i| !i.hoisted)
            .map(|i| i.name.clone())
            .collect()
    } else {
        args.subscribe.clone()
    };
    let sub_refs: Vec<&str> = subscriptions.iter().map(String::as_str).collect();

    let packets: Box<dyn Iterator<Item = CapPacket>> = match &args.trace {
        Some(path) => {
            let bytes = std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("gsq: {path}: {e}");
                exit(1);
            });
            let pkts = gs_packet::capture::read_trace(&bytes).unwrap_or_else(|e| {
                eprintln!("gsq: {path}: {e}");
                exit(1);
            });
            Box::new(pkts.into_iter())
        }
        None => {
            let (mbps, ms) = args.synthetic;
            Box::new(PacketMix::new(MixConfig {
                seed: args.seed,
                duration_ms: ms,
                http_rate_mbps: mbps.min(60.0),
                background_rate_mbps: (mbps - 60.0).max(0.0),
                ..MixConfig::default()
            }))
        }
    };

    let out = gs.run_capture(packets, &sub_refs).unwrap_or_else(|e| {
        eprintln!("gsq: {e}");
        exit(1);
    });

    for name in &subscriptions {
        if let Some(schema) = gs.schema(name) {
            println!(
                "# {name}({})",
                schema.iter().map(|c| format!("{}:{}", c.name, c.ty)).collect::<Vec<_>>().join(",")
            );
        }
        for t in out.stream(name) {
            let row: Vec<String> = t.values().iter().map(|v| v.to_string()).collect();
            println!("{name},{}", row.join(","));
        }
    }

    if args.stats {
        eprintln!("packets: {}", out.stats.packets);
        eprintln!("heartbeat rounds: {}", out.stats.heartbeats);
        let mut names: Vec<_> = out.stats.lfta.keys().collect();
        names.sort();
        for n in names {
            let s = &out.stats.lfta[n];
            eprintln!(
                "lfta {n}: in={} bpf_rejected={} sampled_out={} not_proto={} filtered={} out={}",
                s.packets_in, s.prefiltered, s.sampled_out, s.not_protocol, s.filtered, s.tuples_out
            );
        }
        // The full self-monitoring snapshot — the same rows the built-in
        // GS_STATS stream emits, one `stat <node> <counter> = <value>`
        // line per registry entry.
        for row in &out.stats.counters {
            eprintln!("stat {} {} = {}", row.node, row.counter, row.value);
        }
    }
}
