//! `gsqd` — the always-on Gigascope query daemon.
//!
//! ```text
//! gsqd [options]
//!
//! options:
//!   --listen <addr>          bind address (default 127.0.0.1:5123; :0 picks a port)
//!   --program <file>         GSQL program to register at startup
//!   --iface <name=id[:link]> register an interface (default: eth0=0:ether)
//!   --trace <file>           replay a .gsc capture trace every epoch
//!   --synthetic <mbps>x<ms>  synthetic mix per epoch (default 100x100)
//!   --chunked <mbps>x<ms>x<n> ONE continuous synthetic trace sliced into n
//!                            per-epoch chunks (time advances across epochs;
//!                            the shape --carry-state needs)
//!   --lead-in <n>            prepend n empty chunks to a --chunked source,
//!                            giving a client time to SUBSCRIBE before the
//!                            first real packet (CI equivalence checks)
//!   --seed <n>               base synthetic seed; epoch k uses seed+k
//!   --carry-state            carry operator state across epochs: windows
//!                            spanning epoch boundaries aggregate as one
//!                            continuous run, restarted queries resume from
//!                            their last checkpoint and replay missed epochs,
//!                            and shutdown flushes the held tails
//!   --fault-panic <node>@<batch>  arm a deterministic panic injection at the
//!                            named node's n-th batch (CI/demo)
//!   --fault-epochs <lo>..<hi>  epoch ids during which the fault is armed
//!   --epoch-gap <ms>         pacing between epochs (default 100)
//!   --restart-budget <n>     automatic restarts per query (default 3)
//!   --backoff <n>            base restart backoff in epochs (default 1)
//!   --parallelism <n>        HFTA parallelism degree (default 1)
//!   --heartbeat <off|N|ondemand>  LFTA heartbeat policy (default 1 s)
//!   --port-file <path>       write the bound address to a file, atomically
//!                            (CI uses this with --listen …:0)
//!   --state-dir <dir>        durable checkpoint directory (requires
//!                            --carry-state): every epoch boundary's cut is
//!                            persisted crash-consistently, and a restarted
//!                            daemon pointed at the same directory resumes
//!                            mid-window instead of starting empty
//!   --retain <n>             checkpoints kept by the state dir's GC
//!                            (default 3)
//! ```
//!
//! The daemon serves the `gsqd` wire protocol until a client sends
//! SHUTDOWN (see `gsq --connect`). Clients REGISTER/UNREGISTER GSQL
//! programs, SUBSCRIBE to output streams, and poll HEALTH/STATS at
//! runtime; quarantined queries are restarted automatically with
//! bounded, backed-off retries.

use gigascope::server::{self, DaemonConfig, PacketSource};
use gs_packet::capture::LinkType;
use gs_runtime::punct::HeartbeatMode;
use std::process::exit;

fn usage(msg: &str) -> ! {
    eprintln!("gsqd: {msg}\n\nusage: gsqd [--listen addr] [--program file] [--iface name=id[:link]]");
    eprintln!("            [--trace file.gsc | --synthetic <mbps>x<ms> | --chunked <mbps>x<ms>x<n>]");
    eprintln!("            [--seed n] [--lead-in n] [--carry-state] [--epoch-gap ms]");
    eprintln!("            [--fault-panic node@batch] [--fault-epochs lo..hi]");
    eprintln!("            [--restart-budget n] [--backoff n] [--parallelism n]");
    eprintln!("            [--heartbeat off|N|ondemand] [--port-file path]");
    eprintln!("            [--state-dir dir] [--retain n]");
    exit(2);
}

fn parse_link(s: &str) -> LinkType {
    match s {
        "ether" | "ethernet" => LinkType::Ethernet,
        "rawip" | "ip" => LinkType::RawIp,
        "netflow" => LinkType::NetflowRecord,
        "bgp" => LinkType::BgpUpdate,
        other => usage(&format!("unknown link type `{other}`")),
    }
}

fn main() {
    let mut config = DaemonConfig {
        listen: "127.0.0.1:5123".to_string(),
        epoch_gap_ms: 100,
        ..DaemonConfig::default()
    };
    let mut synthetic = (100.0f64, 100u64);
    let mut chunked: Option<(f64, u64, u64)> = None;
    let mut seed = 0u64;
    let mut lead_in = 0usize;
    let mut trace: Option<String> = None;
    let mut port_file: Option<String> = None;

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--listen" => config.listen = val(),
            "--program" => {
                let path = val();
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("gsqd: {path}: {e}");
                    exit(1);
                });
                config.initial_program = Some(text);
            }
            "--iface" => {
                let v = val();
                let (name, rest) =
                    v.split_once('=').unwrap_or_else(|| usage("--iface name=id[:link]"));
                let (id, link) = match rest.split_once(':') {
                    Some((id, link)) => (id, parse_link(link)),
                    None => (rest, LinkType::Ethernet),
                };
                let id: u16 = id.parse().unwrap_or_else(|_| usage("interface id must be a number"));
                config.ifaces.push((name.to_string(), id, link));
            }
            "--trace" => trace = Some(val()),
            "--synthetic" => {
                let v = val();
                let (mbps, ms) =
                    v.split_once('x').unwrap_or_else(|| usage("--synthetic <mbps>x<ms>"));
                synthetic = (
                    mbps.parse().unwrap_or_else(|_| usage("bad mbps")),
                    ms.parse().unwrap_or_else(|_| usage("bad ms")),
                );
            }
            "--chunked" => {
                let v = val();
                let mut parts = v.split('x');
                let mbps: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--chunked <mbps>x<ms>x<epochs>"));
                let ms: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--chunked <mbps>x<ms>x<epochs>"));
                let n: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--chunked <mbps>x<ms>x<epochs>"));
                chunked = Some((mbps, ms, n));
            }
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage("bad seed")),
            "--lead-in" => lead_in = val().parse().unwrap_or_else(|_| usage("bad --lead-in")),
            "--carry-state" => config.carry_state = true,
            "--fault-panic" => {
                let v = val();
                let (node, batch) =
                    v.split_once('@').unwrap_or_else(|| usage("--fault-panic node@batch"));
                let batch: u64 =
                    batch.parse().unwrap_or_else(|_| usage("bad --fault-panic batch"));
                config.faults = Some(
                    config.faults.take().unwrap_or_default().panic_at(node.to_string(), batch),
                );
            }
            "--fault-epochs" => {
                let v = val();
                let (lo, hi) =
                    v.split_once("..").unwrap_or_else(|| usage("--fault-epochs lo..hi"));
                let lo: u64 = lo.parse().unwrap_or_else(|_| usage("bad --fault-epochs"));
                let hi: u64 = hi.parse().unwrap_or_else(|_| usage("bad --fault-epochs"));
                config.fault_epochs = lo..hi;
            }
            "--epoch-gap" => {
                config.epoch_gap_ms = val().parse().unwrap_or_else(|_| usage("bad epoch gap"))
            }
            "--restart-budget" => {
                config.restart_budget = val().parse().unwrap_or_else(|_| usage("bad budget"))
            }
            "--backoff" => {
                config.backoff_base = val().parse().unwrap_or_else(|_| usage("bad backoff"))
            }
            "--parallelism" => {
                config.parallelism = val().parse().unwrap_or_else(|_| usage("bad parallelism"))
            }
            "--heartbeat" => {
                let v = val();
                config.heartbeat = match v.as_str() {
                    "off" => HeartbeatMode::Off,
                    "ondemand" => HeartbeatMode::OnDemand,
                    n => HeartbeatMode::Periodic {
                        interval: n.parse().unwrap_or_else(|_| usage("bad heartbeat")),
                    },
                };
            }
            "--port-file" => port_file = Some(val()),
            "--state-dir" => config.state_dir = Some(val().into()),
            "--retain" => {
                config.retain_checkpoints = val().parse().unwrap_or_else(|_| usage("bad --retain"))
            }
            "--help" | "-h" => usage("help"),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }

    config.source = match trace {
        Some(path) => {
            let bytes = std::fs::read(&path).unwrap_or_else(|e| {
                eprintln!("gsqd: {path}: {e}");
                exit(1);
            });
            let packets = gs_packet::capture::read_trace(&bytes).unwrap_or_else(|e| {
                eprintln!("gsqd: {path}: {e}");
                exit(1);
            });
            PacketSource::Replay(packets)
        }
        None => match chunked {
            Some((mbps, ms, n)) => PacketSource::chunked_synthetic(mbps, ms, n, seed),
            None => PacketSource::Synthetic { mbps: synthetic.0, epoch_ms: synthetic.1, seed },
        },
    };
    if lead_in > 0 {
        // Empty lead-in epochs are only meaningful for a time-continuous
        // source; for the per-epoch sources the first real epoch already
        // starts at clock zero.
        let PacketSource::Chunked(chunks) = &mut config.source else {
            usage("--lead-in requires --chunked");
        };
        let mut led = vec![Vec::new(); lead_in];
        led.append(chunks);
        *chunks = led;
    }

    let mut daemon = server::start(config).unwrap_or_else(|e| {
        eprintln!("gsqd: {e}");
        exit(1);
    });
    eprintln!("gsqd: listening on {}", daemon.addr());
    if let Some(path) = port_file {
        // Atomic publish (temp + fsync + rename): a reader polling the
        // file sees the whole address or nothing, never a prefix.
        if let Err(e) = gs_runtime::durable::atomic_write_file(&path, daemon.addr().to_string().as_bytes()) {
            eprintln!("gsqd: writing {path}: {e}");
            exit(1);
        }
    }
    daemon.wait();
    eprintln!("gsqd: shut down");
}
