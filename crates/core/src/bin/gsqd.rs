//! `gsqd` — the always-on Gigascope query daemon.
//!
//! ```text
//! gsqd [options]
//!
//! options:
//!   --listen <addr>          bind address (default 127.0.0.1:5123; :0 picks a port)
//!   --program <file>         GSQL program to register at startup
//!   --iface <name=id[:link]> register an interface (default: eth0=0:ether)
//!   --trace <file>           replay a .gsc capture trace every epoch
//!   --synthetic <mbps>x<ms>  synthetic mix per epoch (default 100x100)
//!   --seed <n>               base synthetic seed; epoch k uses seed+k
//!   --epoch-gap <ms>         pacing between epochs (default 100)
//!   --restart-budget <n>     automatic restarts per query (default 3)
//!   --backoff <n>            base restart backoff in epochs (default 1)
//!   --parallelism <n>        HFTA parallelism degree (default 1)
//!   --heartbeat <off|N|ondemand>  LFTA heartbeat policy (default 1 s)
//!   --port-file <path>       write the bound address to a file (CI uses
//!                            this with --listen …:0)
//! ```
//!
//! The daemon serves the `gsqd` wire protocol until a client sends
//! SHUTDOWN (see `gsq --connect`). Clients REGISTER/UNREGISTER GSQL
//! programs, SUBSCRIBE to output streams, and poll HEALTH/STATS at
//! runtime; quarantined queries are restarted automatically with
//! bounded, backed-off retries.

use gigascope::server::{self, DaemonConfig, PacketSource};
use gs_packet::capture::LinkType;
use gs_runtime::punct::HeartbeatMode;
use std::process::exit;

fn usage(msg: &str) -> ! {
    eprintln!("gsqd: {msg}\n\nusage: gsqd [--listen addr] [--program file] [--iface name=id[:link]]");
    eprintln!("            [--trace file.gsc | --synthetic <mbps>x<ms>] [--seed n] [--epoch-gap ms]");
    eprintln!("            [--restart-budget n] [--backoff n] [--parallelism n]");
    eprintln!("            [--heartbeat off|N|ondemand] [--port-file path]");
    exit(2);
}

fn parse_link(s: &str) -> LinkType {
    match s {
        "ether" | "ethernet" => LinkType::Ethernet,
        "rawip" | "ip" => LinkType::RawIp,
        "netflow" => LinkType::NetflowRecord,
        "bgp" => LinkType::BgpUpdate,
        other => usage(&format!("unknown link type `{other}`")),
    }
}

fn main() {
    let mut config = DaemonConfig {
        listen: "127.0.0.1:5123".to_string(),
        epoch_gap_ms: 100,
        ..DaemonConfig::default()
    };
    let mut synthetic = (100.0f64, 100u64);
    let mut seed = 0u64;
    let mut trace: Option<String> = None;
    let mut port_file: Option<String> = None;

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--listen" => config.listen = val(),
            "--program" => {
                let path = val();
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("gsqd: {path}: {e}");
                    exit(1);
                });
                config.initial_program = Some(text);
            }
            "--iface" => {
                let v = val();
                let (name, rest) =
                    v.split_once('=').unwrap_or_else(|| usage("--iface name=id[:link]"));
                let (id, link) = match rest.split_once(':') {
                    Some((id, link)) => (id, parse_link(link)),
                    None => (rest, LinkType::Ethernet),
                };
                let id: u16 = id.parse().unwrap_or_else(|_| usage("interface id must be a number"));
                config.ifaces.push((name.to_string(), id, link));
            }
            "--trace" => trace = Some(val()),
            "--synthetic" => {
                let v = val();
                let (mbps, ms) =
                    v.split_once('x').unwrap_or_else(|| usage("--synthetic <mbps>x<ms>"));
                synthetic = (
                    mbps.parse().unwrap_or_else(|_| usage("bad mbps")),
                    ms.parse().unwrap_or_else(|_| usage("bad ms")),
                );
            }
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage("bad seed")),
            "--epoch-gap" => {
                config.epoch_gap_ms = val().parse().unwrap_or_else(|_| usage("bad epoch gap"))
            }
            "--restart-budget" => {
                config.restart_budget = val().parse().unwrap_or_else(|_| usage("bad budget"))
            }
            "--backoff" => {
                config.backoff_base = val().parse().unwrap_or_else(|_| usage("bad backoff"))
            }
            "--parallelism" => {
                config.parallelism = val().parse().unwrap_or_else(|_| usage("bad parallelism"))
            }
            "--heartbeat" => {
                let v = val();
                config.heartbeat = match v.as_str() {
                    "off" => HeartbeatMode::Off,
                    "ondemand" => HeartbeatMode::OnDemand,
                    n => HeartbeatMode::Periodic {
                        interval: n.parse().unwrap_or_else(|_| usage("bad heartbeat")),
                    },
                };
            }
            "--port-file" => port_file = Some(val()),
            "--help" | "-h" => usage("help"),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }

    config.source = match trace {
        Some(path) => {
            let bytes = std::fs::read(&path).unwrap_or_else(|e| {
                eprintln!("gsqd: {path}: {e}");
                exit(1);
            });
            let packets = gs_packet::capture::read_trace(&bytes).unwrap_or_else(|e| {
                eprintln!("gsqd: {path}: {e}");
                exit(1);
            });
            PacketSource::Replay(packets)
        }
        None => PacketSource::Synthetic { mbps: synthetic.0, epoch_ms: synthetic.1, seed },
    };

    let mut daemon = server::start(config).unwrap_or_else(|e| {
        eprintln!("gsqd: {e}");
        exit(1);
    });
    eprintln!("gsqd: listening on {}", daemon.addr());
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, daemon.addr().to_string()) {
            eprintln!("gsqd: writing {path}: {e}");
            exit(1);
        }
    }
    daemon.wait();
    eprintln!("gsqd: shut down");
}
