//! The stream manager: the deployment (threaded) configuration.
//!
//! "The central component of Gigascope is a stream manager which tracks
//! the query nodes that can be activated. Query nodes ... are processes.
//! When they are started, they register themselves with the registry of
//! the stream manager. When a user application or query node needs to
//! subscribe to the output of a query, it submits the query name to the
//! registry and receives a query handle in return." (paper §3)
//!
//! Here query nodes are threads and the shared-memory channels are
//! bounded crossbeam channels (backpressure instead of unbounded growth).
//! LFTAs run inline in the capture thread, exactly as the paper links
//! them into the run time system; each HFTA runs on its own thread. This
//! is the configuration the deployment-throughput experiment (E2)
//! measures; the deterministic single-threaded engine is
//! [`crate::engine`].

use crate::{Error, Gigascope};
use crossbeam_channel::{bounded, Receiver, Select, Sender};
use gs_packet::CapPacket;
use gs_runtime::ops::build::{build_hfta, build_lfta, BuildCtx};
use gs_runtime::punct::HeartbeatMode;
use gs_runtime::tuple::{StreamItem, Tuple};
use std::collections::HashMap;
use std::thread;

/// Channel capacity between query nodes ("communication through shared
/// memory"); a bounded ring like the paper's buffers.
pub const CHANNEL_CAPACITY: usize = 8_192;

/// Result of a threaded run.
#[derive(Debug, Default)]
pub struct ThreadedOutput {
    /// Collected tuples per subscribed stream.
    pub streams: HashMap<String, Vec<Tuple>>,
    /// Packets consumed by the capture loop.
    pub packets: u64,
}

impl ThreadedOutput {
    /// Tuples of one subscribed stream (empty if absent).
    pub fn stream(&self, name: &str) -> &[Tuple] {
        self.streams.get(name).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Run all deployed queries over `packets` with one thread per HFTA.
///
/// Packets must be time-ordered; subscriptions are collected in the
/// calling thread after all nodes drain.
pub fn run_threaded<I>(
    gs: &Gigascope,
    packets: I,
    subscriptions: &[&str],
) -> Result<ThreadedOutput, Error>
where
    I: Iterator<Item = CapPacket>,
{
    // ---- Wire the graph -------------------------------------------------
    struct NodeSpec {
        node: gs_runtime::ops::build::HftaNode,
        out_name: String,
    }
    let mut lftas = Vec::new();
    let mut nodes: Vec<NodeSpec> = Vec::new();
    for dq in gs.queries() {
        let params = gs.params_for(&dq.name);
        params.validate(&dq.params).map_err(Error::Runtime)?;
        let ctx = BuildCtx {
            catalog: gs.catalog(),
            params: &params,
            registry: gs.registry(),
            resolver: gs.resolver(),
            lfta_table_size: gs.lfta_table_size,
        };
        for spec in &dq.lftas {
            let lfta = build_lfta(spec, &ctx)?;
            let iface_id = crate::engine::lfta_iface_id(gs, spec)?;
            lftas.push((lfta, iface_id));
        }
        if let Some(hplan) = &dq.hfta {
            nodes.push(NodeSpec { node: build_hfta(hplan, &ctx)?, out_name: dq.name.clone() });
        }
    }

    // Senders per stream name (fan-out to every consumer).
    let mut producers: HashMap<String, Vec<Sender<StreamItem>>> = HashMap::new();
    // Receivers per node, in port order.
    let mut node_inputs: Vec<Vec<Receiver<StreamItem>>> = Vec::new();
    for spec in &nodes {
        let mut ports = Vec::new();
        for input in &spec.node.inputs {
            let (tx, rx) = bounded(CHANNEL_CAPACITY);
            producers.entry(input.clone()).or_default().push(tx);
            ports.push(rx);
        }
        node_inputs.push(ports);
    }
    // Subscription collectors.
    let mut collectors: HashMap<String, Receiver<StreamItem>> = HashMap::new();
    for name in subscriptions {
        let (tx, rx) = bounded(CHANNEL_CAPACITY);
        producers.entry((*name).to_string()).or_default().push(tx);
        collectors.insert((*name).to_string(), rx);
    }

    // ---- Spawn node threads ---------------------------------------------
    let mut handles = Vec::new();
    for (spec, inputs) in nodes.into_iter().zip(node_inputs) {
        let out_senders: Vec<Sender<StreamItem>> =
            producers.get(&spec.out_name).cloned().unwrap_or_default();
        let NodeSpec { mut node, .. } = spec;
        handles.push(thread::spawn(move || {
            let send_all = |items: Vec<StreamItem>| {
                for item in items {
                    for (i, tx) in out_senders.iter().enumerate() {
                        // Last consumer takes the original; others clone.
                        if i + 1 == out_senders.len() {
                            let _ = tx.send(item);
                            break;
                        }
                        let _ = tx.send(item.clone());
                    }
                }
            };
            let mut open: Vec<bool> = vec![true; inputs.len()];
            let mut out = Vec::new();
            while open.iter().any(|&o| o) {
                let mut sel = Select::new();
                let mut ports = Vec::new();
                for (p, rx) in inputs.iter().enumerate() {
                    if open[p] {
                        sel.recv(rx);
                        ports.push(p);
                    }
                }
                let op = sel.select();
                let p = ports[op.index()];
                match op.recv(&inputs[p]) {
                    Ok(item) => {
                        out.clear();
                        node.push(p, item, &mut out);
                        send_all(std::mem::take(&mut out));
                    }
                    Err(_) => {
                        open[p] = false;
                        out.clear();
                        node.finish_input(p, &mut out);
                        send_all(std::mem::take(&mut out));
                    }
                }
            }
            out.clear();
            node.finish(&mut out);
            send_all(out);
            // Dropping `out_senders` closes downstream channels.
        }));
    }

    // ---- Capture loop (this thread) --------------------------------------
    let lfta_senders: Vec<Vec<Sender<StreamItem>>> = lftas
        .iter()
        .map(|(l, _)| producers.get(&l.name).cloned().unwrap_or_default())
        .collect();
    // Drop the producer map so node threads hold the only remaining
    // senders for their output streams.
    drop(producers);

    let heartbeat = gs.heartbeat;
    let mut last_hb: Option<u64> = None;
    let mut n_packets = 0u64;
    let mut out = Vec::new();
    for pkt in packets {
        n_packets += 1;
        let clock = u64::from(pkt.time_sec());
        for (i, (lfta, iface)) in lftas.iter_mut().enumerate() {
            if *iface != pkt.iface {
                continue;
            }
            out.clear();
            lfta.push_packet(&pkt, &mut out);
            send_to(&lfta_senders[i], &mut out);
        }
        if let HeartbeatMode::Periodic { interval } = heartbeat {
            if last_hb.is_none_or(|l| clock >= l + interval.max(1)) {
                last_hb = Some(clock);
                for (i, (lfta, _)) in lftas.iter_mut().enumerate() {
                    out.clear();
                    lfta.heartbeat(clock, &mut out);
                    send_to(&lfta_senders[i], &mut out);
                }
            }
        }
    }
    for (i, (lfta, _)) in lftas.iter_mut().enumerate() {
        out.clear();
        lfta.finish(&mut out);
        send_to(&lfta_senders[i], &mut out);
    }
    drop(lfta_senders); // close LFTA output streams

    // ---- Drain ------------------------------------------------------------
    let mut streams: HashMap<String, Vec<Tuple>> = HashMap::new();
    for (name, rx) in collectors {
        let bucket: &mut Vec<Tuple> = streams.entry(name).or_default();
        while let Ok(item) = rx.recv() {
            if let StreamItem::Tuple(t) = item {
                bucket.push(t);
            }
        }
    }
    for h in handles {
        h.join().map_err(|_| Error::Config("query node thread panicked".to_string()))?;
    }
    Ok(ThreadedOutput { streams, packets: n_packets })
}

fn send_to(senders: &[Sender<StreamItem>], items: &mut Vec<StreamItem>) {
    for item in items.drain(..) {
        for (i, tx) in senders.iter().enumerate() {
            if i + 1 == senders.len() {
                let _ = tx.send(item);
                break;
            }
            let _ = tx.send(item.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_packet::builder::FrameBuilder;
    use gs_packet::capture::LinkType;

    fn pkt(ts_sec: u64, dport: u16, pay: &[u8]) -> CapPacket {
        let f = FrameBuilder::tcp(1, 2, 999, dport).payload(pay).build_ethernet();
        CapPacket::full(ts_sec * 1_000_000_000, 0, LinkType::Ethernet, f)
    }

    #[test]
    fn threaded_matches_synchronous() {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.add_program(
            "DEFINE { query_name persec; } \
             Select time, count(*) From eth0.tcp Where destPort = 80 Group By time",
        )
        .unwrap();
        let mk = || {
            (0..200u64)
                .map(|i| pkt(i / 40, if i % 3 == 0 { 80 } else { 25 }, b"x"))
                .collect::<Vec<_>>()
        };
        let sync_out = gs.run_capture(mk().into_iter(), &["persec"]).unwrap();
        let thr_out = run_threaded(&gs, mk().into_iter(), &["persec"]).unwrap();
        let norm = |ts: &[Tuple]| {
            let mut v: Vec<(u64, u64)> = ts
                .iter()
                .map(|t| (t.get(0).as_uint().unwrap(), t.get(1).as_uint().unwrap()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(sync_out.stream("persec")), norm(thr_out.stream("persec")));
        assert_eq!(thr_out.packets, 200);
    }

    #[test]
    fn threaded_merge_pipeline() {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.add_interface("eth1", 1, LinkType::Ethernet);
        gs.add_program(
            "DEFINE { query_name a; } Select time From eth0.tcp; \
             DEFINE { query_name b; } Select time From eth1.tcp; \
             DEFINE { query_name m; } Merge a.time : b.time From a, b",
        )
        .unwrap();
        let mut pkts = Vec::new();
        for s in 0..50u64 {
            let f = FrameBuilder::tcp(1, 2, 9, 80).build_ethernet();
            pkts.push(CapPacket::full(s * 1_000_000_000, (s % 2) as u16, LinkType::Ethernet, f));
        }
        let out = run_threaded(&gs, pkts.into_iter(), &["m"]).unwrap();
        let times: Vec<u64> = out.stream("m").iter().map(|t| t.get(0).as_uint().unwrap()).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted, "merge output stays ordered under threading");
        assert_eq!(times.len(), 50);
    }
}
