//! The stream manager: the deployment (threaded) configuration.
//!
//! "The central component of Gigascope is a stream manager which tracks
//! the query nodes that can be activated. Query nodes ... are processes.
//! When they are started, they register themselves with the registry of
//! the stream manager. When a user application or query node needs to
//! subscribe to the output of a query, it submits the query name to the
//! registry and receives a query handle in return." (paper §3)
//!
//! Here query nodes are threads and the shared-memory channels are
//! bounded std `mpsc` channels (backpressure instead of unbounded
//! growth). LFTAs run inline in the capture thread, exactly as the paper
//! links them into the run time system; each HFTA runs on its own
//! thread. This is the configuration the deployment-throughput
//! experiment (E2) measures; the deterministic single-threaded engine is
//! [`crate::engine`].
//!
//! Fan-in without `select`: every node owns ONE bounded ready-queue; each
//! upstream producer holds a clone of its `SyncSender` and tags messages
//! with the destination port, so a node just blocks on `recv()` and
//! multiplexes by tag. End-of-stream is an explicit `Close(port)` message
//! (std channels only signal disconnect when *all* senders drop, which a
//! shared queue can't use per-port). Per-producer FIFO order is
//! preserved, which is all the merge/join watermark logic requires.

use crate::{Error, Gigascope};
use gs_packet::CapPacket;
use gs_runtime::ops::build::{build_hfta, build_lfta, BuildCtx};
use gs_runtime::punct::HeartbeatMode;
use gs_runtime::tuple::{StreamItem, Tuple};
use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread;

/// Ready-queue capacity per query node ("communication through shared
/// memory"); a bounded ring like the paper's buffers.
pub const CHANNEL_CAPACITY: usize = 8_192;

/// A tagged message on a node's shared ready-queue.
enum Msg {
    /// Payload for one input port.
    Item(usize, StreamItem),
    /// The producer feeding this port is done; no more items will come.
    Close(usize),
}

/// One consumer endpoint: the consumer's shared queue plus the input
/// port this producer feeds.
#[derive(Clone)]
struct PortSender {
    tx: SyncSender<Msg>,
    port: usize,
}

impl PortSender {
    fn send(&self, item: StreamItem) {
        let _ = self.tx.send(Msg::Item(self.port, item));
    }

    fn close(&self) {
        let _ = self.tx.send(Msg::Close(self.port));
    }
}

/// Result of a threaded run.
#[derive(Debug, Default)]
pub struct ThreadedOutput {
    /// Collected tuples per subscribed stream.
    pub streams: HashMap<String, Vec<Tuple>>,
    /// Packets consumed by the capture loop.
    pub packets: u64,
}

impl ThreadedOutput {
    /// Tuples of one subscribed stream (empty if absent).
    pub fn stream(&self, name: &str) -> &[Tuple] {
        self.streams.get(name).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Run all deployed queries over `packets` with one thread per HFTA.
///
/// Packets must be time-ordered; subscriptions are collected in the
/// calling thread after all nodes drain.
pub fn run_threaded<I>(
    gs: &Gigascope,
    packets: I,
    subscriptions: &[&str],
) -> Result<ThreadedOutput, Error>
where
    I: Iterator<Item = CapPacket>,
{
    // ---- Wire the graph -------------------------------------------------
    struct NodeSpec {
        node: gs_runtime::ops::build::HftaNode,
        out_name: String,
    }
    let mut lftas = Vec::new();
    let mut nodes: Vec<NodeSpec> = Vec::new();
    for dq in gs.queries() {
        let params = gs.params_for(&dq.name);
        params.validate(&dq.params).map_err(Error::Runtime)?;
        let ctx = BuildCtx {
            catalog: gs.catalog(),
            params: &params,
            registry: gs.registry(),
            resolver: gs.resolver(),
            lfta_table_size: gs.lfta_table_size,
        };
        for spec in &dq.lftas {
            let lfta = build_lfta(spec, &ctx)?;
            let iface_id = crate::engine::lfta_iface_id(gs, spec)?;
            lftas.push((lfta, iface_id));
        }
        if let Some(hplan) = &dq.hfta {
            nodes.push(NodeSpec { node: build_hfta(hplan, &ctx)?, out_name: dq.name.clone() });
        }
    }

    // Consumer endpoints per stream name (fan-out to every consumer).
    let mut producers: HashMap<String, Vec<PortSender>> = HashMap::new();
    // One shared ready-queue per node; every input port sends into it.
    let mut node_inputs: Vec<(Receiver<Msg>, usize)> = Vec::new();
    for spec in &nodes {
        let (tx, rx) = sync_channel(CHANNEL_CAPACITY);
        for (port, input) in spec.node.inputs.iter().enumerate() {
            producers
                .entry(input.clone())
                .or_default()
                .push(PortSender { tx: tx.clone(), port });
        }
        node_inputs.push((rx, spec.node.inputs.len()));
    }
    // Subscription collectors (single-port queues). Each gets its own
    // drainer thread: a subscribed stream can emit far more than
    // CHANNEL_CAPACITY tuples while the capture loop is still feeding
    // packets, and a full collector queue would back-pressure the node
    // graph into a deadlock if nothing consumed it until after capture.
    let mut collectors: Vec<(String, thread::JoinHandle<Vec<Tuple>>)> = Vec::new();
    for name in subscriptions {
        let (tx, rx) = sync_channel::<Msg>(CHANNEL_CAPACITY);
        producers.entry((*name).to_string()).or_default().push(PortSender { tx, port: 0 });
        let drainer = thread::spawn(move || {
            let mut bucket = Vec::new();
            while let Ok(msg) = rx.recv() {
                match msg {
                    Msg::Item(_, StreamItem::Tuple(t)) => bucket.push(t),
                    Msg::Item(..) => {}
                    Msg::Close(_) => break,
                }
            }
            bucket
        });
        collectors.push(((*name).to_string(), drainer));
    }

    // ---- Spawn node threads ---------------------------------------------
    let mut handles = Vec::new();
    for (spec, (rx, n_ports)) in nodes.into_iter().zip(node_inputs) {
        let out_senders: Vec<PortSender> =
            producers.get(&spec.out_name).cloned().unwrap_or_default();
        let NodeSpec { mut node, .. } = spec;
        handles.push(thread::spawn(move || {
            let send_all = |items: Vec<StreamItem>| {
                for item in items {
                    for (i, tx) in out_senders.iter().enumerate() {
                        // Last consumer takes the original; others clone.
                        if i + 1 == out_senders.len() {
                            tx.send(item);
                            break;
                        }
                        tx.send(item.clone());
                    }
                }
            };
            let mut open: Vec<bool> = vec![true; n_ports];
            let mut open_count = n_ports;
            let mut out = Vec::new();
            while open_count > 0 {
                match rx.recv() {
                    Ok(Msg::Item(p, item)) => {
                        out.clear();
                        node.push(p, item, &mut out);
                        send_all(std::mem::take(&mut out));
                    }
                    Ok(Msg::Close(p)) if open[p] => {
                        open[p] = false;
                        open_count -= 1;
                        out.clear();
                        node.finish_input(p, &mut out);
                        send_all(std::mem::take(&mut out));
                    }
                    Ok(Msg::Close(_)) => {}
                    Err(_) => {
                        // Every producer dropped without a Close (a panic
                        // upstream); flush what the still-open ports hold.
                        for (p, o) in open.iter_mut().enumerate() {
                            if std::mem::take(o) {
                                out.clear();
                                node.finish_input(p, &mut out);
                                send_all(std::mem::take(&mut out));
                            }
                        }
                        open_count = 0;
                    }
                }
            }
            out.clear();
            node.finish(&mut out);
            send_all(out);
            // This node's streams end: close every consumer port.
            for tx in &out_senders {
                tx.close();
            }
        }));
    }

    // ---- Capture loop (this thread) --------------------------------------
    let lfta_senders: Vec<Vec<PortSender>> = lftas
        .iter()
        .map(|(l, _)| producers.get(&l.name).cloned().unwrap_or_default())
        .collect();
    // Drop the producer map so node threads hold the only remaining
    // senders for their output streams.
    drop(producers);

    let heartbeat = gs.heartbeat;
    let mut last_hb: Option<u64> = None;
    let mut n_packets = 0u64;
    let mut out = Vec::new();
    for pkt in packets {
        n_packets += 1;
        let clock = u64::from(pkt.time_sec());
        for (i, (lfta, iface)) in lftas.iter_mut().enumerate() {
            if *iface != pkt.iface {
                continue;
            }
            out.clear();
            lfta.push_packet(&pkt, &mut out);
            send_to(&lfta_senders[i], &mut out);
        }
        if let HeartbeatMode::Periodic { interval } = heartbeat {
            if last_hb.is_none_or(|l| clock >= l + interval.max(1)) {
                last_hb = Some(clock);
                for (i, (lfta, _)) in lftas.iter_mut().enumerate() {
                    out.clear();
                    lfta.heartbeat(clock, &mut out);
                    send_to(&lfta_senders[i], &mut out);
                }
            }
        }
    }
    for (i, (lfta, _)) in lftas.iter_mut().enumerate() {
        out.clear();
        lfta.finish(&mut out);
        send_to(&lfta_senders[i], &mut out);
    }
    // Close LFTA output streams port by port.
    for senders in &lfta_senders {
        for tx in senders {
            tx.close();
        }
    }
    drop(lfta_senders);

    // ---- Drain ------------------------------------------------------------
    let mut streams: HashMap<String, Vec<Tuple>> = HashMap::new();
    for (name, drainer) in collectors {
        let bucket = drainer
            .join()
            .map_err(|_| Error::Config("subscription collector thread panicked".to_string()))?;
        streams.insert(name, bucket);
    }
    for h in handles {
        h.join().map_err(|_| Error::Config("query node thread panicked".to_string()))?;
    }
    Ok(ThreadedOutput { streams, packets: n_packets })
}

fn send_to(senders: &[PortSender], items: &mut Vec<StreamItem>) {
    for item in items.drain(..) {
        for (i, tx) in senders.iter().enumerate() {
            if i + 1 == senders.len() {
                tx.send(item);
                break;
            }
            tx.send(item.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_packet::builder::FrameBuilder;
    use gs_packet::capture::LinkType;

    fn pkt(ts_sec: u64, dport: u16, pay: &[u8]) -> CapPacket {
        let f = FrameBuilder::tcp(1, 2, 999, dport).payload(pay).build_ethernet();
        CapPacket::full(ts_sec * 1_000_000_000, 0, LinkType::Ethernet, f)
    }

    #[test]
    fn threaded_matches_synchronous() {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.add_program(
            "DEFINE { query_name persec; } \
             Select time, count(*) From eth0.tcp Where destPort = 80 Group By time",
        )
        .unwrap();
        let mk = || {
            (0..200u64)
                .map(|i| pkt(i / 40, if i % 3 == 0 { 80 } else { 25 }, b"x"))
                .collect::<Vec<_>>()
        };
        let sync_out = gs.run_capture(mk().into_iter(), &["persec"]).unwrap();
        let thr_out = run_threaded(&gs, mk().into_iter(), &["persec"]).unwrap();
        let norm = |ts: &[Tuple]| {
            let mut v: Vec<(u64, u64)> = ts
                .iter()
                .map(|t| (t.get(0).as_uint().unwrap(), t.get(1).as_uint().unwrap()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(sync_out.stream("persec")), norm(thr_out.stream("persec")));
        assert_eq!(thr_out.packets, 200);
    }

    #[test]
    fn threaded_merge_pipeline() {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.add_interface("eth1", 1, LinkType::Ethernet);
        gs.add_program(
            "DEFINE { query_name a; } Select time From eth0.tcp; \
             DEFINE { query_name b; } Select time From eth1.tcp; \
             DEFINE { query_name m; } Merge a.time : b.time From a, b",
        )
        .unwrap();
        let mut pkts = Vec::new();
        for s in 0..50u64 {
            let f = FrameBuilder::tcp(1, 2, 9, 80).build_ethernet();
            pkts.push(CapPacket::full(s * 1_000_000_000, (s % 2) as u16, LinkType::Ethernet, f));
        }
        let out = run_threaded(&gs, pkts.into_iter(), &["m"]).unwrap();
        let times: Vec<u64> = out.stream("m").iter().map(|t| t.get(0).as_uint().unwrap()).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted, "merge output stays ordered under threading");
        assert_eq!(times.len(), 50);
    }

    /// A subscribed stream emitting far more than CHANNEL_CAPACITY tuples
    /// must not deadlock: without a live drainer per collector the node
    /// blocks on the full subscription queue, back-pressure reaches the
    /// capture loop, and the post-capture drain never starts.
    #[test]
    fn threaded_subscription_exceeding_channel_capacity() {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.add_program(
            "DEFINE { query_name a; } Select time From eth0.tcp; \
             DEFINE { query_name m; } Merge a.time : a.time From a, a",
        )
        .unwrap();
        let n = (CHANNEL_CAPACITY * 2 + 100) as u64;
        let pkts = (0..n).map(|s| {
            let f = FrameBuilder::tcp(1, 2, 9, 80).build_ethernet();
            CapPacket::full(s * 1_000_000, 0, LinkType::Ethernet, f)
        });
        let out = run_threaded(&gs, pkts, &["m"]).unwrap();
        // The self-merge sees every tuple on both ports.
        assert_eq!(out.stream("m").len(), 2 * n as usize);
    }
}
